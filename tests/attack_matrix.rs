//! The security matrix: every attack channel against every mode, checked
//! against the defense claims (Sections 2.4, 3.5, 4, 6.1).

use cleanupspec::modes::SecurityMode;
use cleanupspec_suite::workloads::attacks::{
    coherence_probe, prime_probe_l1, run_meltdown, run_spectre_v1,
};

#[test]
fn spectre_v1_matrix() {
    for mode in SecurityMode::ALL {
        // The Table-1 ablations use the non-secure scheme; skip the ones
        // whose purpose is performance, keeping the security-relevant set.
        if matches!(
            mode,
            SecurityMode::L1RandomOnly | SecurityMode::L2RandomOnly | SecurityMode::BothRandomOnly
        ) {
            continue;
        }
        let r = run_spectre_v1(mode, 3, 0xbead);
        assert_eq!(
            r.leaked(),
            !mode.defends_install_channel(),
            "mode {mode}: leaked={} fast={:?}",
            r.leaked(),
            r.fast_indices
        );
        // Every mode must preserve correct-path caching of the benign
        // indices — that is the paper's "no overhead on the correct path"
        // argument in Figure 11.
        for benign in 1..=5usize {
            assert!(
                r.fast_indices.contains(&benign),
                "mode {mode}: benign index {benign} not cached"
            );
        }
    }
}

#[test]
fn meltdown_matrix() {
    // Exception-based transient execution: same transmission channel, so
    // the same defense matrix applies (paper Section 7.1).
    for mode in [
        SecurityMode::NonSecure,
        SecurityMode::CleanupSpec,
        SecurityMode::NaiveInvalidate,
        SecurityMode::InvisiSpecInitial,
        SecurityMode::DelayOnMiss,
    ] {
        let r = run_meltdown(mode, 3, 0xfee1);
        assert!(r.handler_ran, "mode {mode}: fault handler must run");
        assert_eq!(
            r.leaked(),
            !mode.defends_install_channel(),
            "mode {mode}: leaked={} fast={:?}",
            r.leaked(),
            r.fast_indices
        );
    }
}

#[test]
fn randomization_alone_does_not_stop_spectre() {
    // The Table-1 ablations randomize but never undo: the Flush+Reload
    // install channel stays wide open.
    let r = run_spectre_v1(SecurityMode::BothRandomOnly, 3, 0xbead);
    assert!(r.leaked(), "randomization without undo must still leak");
}

#[test]
fn prime_probe_matrix() {
    // Eviction channel: only restore-based or invisible designs close it.
    let cases = [
        (SecurityMode::NonSecure, false),
        (SecurityMode::CleanupSpec, true),
        (SecurityMode::NaiveInvalidate, false),
        (SecurityMode::InvisiSpecInitial, true),
    ];
    for (mode, defended) in cases {
        let r = prime_probe_l1(mode, 11);
        if defended {
            assert_eq!(
                r.evicted_primes, 0,
                "mode {mode} leaked via eviction: {:?}",
                r.probe_latencies
            );
        } else {
            assert!(
                r.evicted_primes >= 1,
                "mode {mode} unexpectedly hid the eviction"
            );
        }
    }
}

#[test]
fn coherence_matrix() {
    for mode in [
        SecurityMode::CleanupSpec,
        SecurityMode::NaiveInvalidate,
        SecurityMode::InvisiSpecInitial,
        SecurityMode::InvisiSpecRevised,
        SecurityMode::DelaySpeculativeLoads,
    ] {
        let r = coherence_probe(mode, 21);
        assert!(
            r.owner_kept_writable,
            "mode {mode}: transient load downgraded a remote M line"
        );
    }
    let ns = coherence_probe(SecurityMode::NonSecure, 21);
    assert!(!ns.owner_kept_writable, "baseline should downgrade");
}
