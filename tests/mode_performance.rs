//! Cross-crate performance-ordering tests: the qualitative claims of
//! Figures 4/12 and Table 6 must hold on the calibrated workloads.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, SimReport};
use cleanupspec_suite::workloads::spec::spec_workload;

fn run(mode: SecurityMode, name: &str, insts: u64) -> SimReport {
    let w = spec_workload(name).expect("known workload");
    let mut sim = SimBuilder::new(mode).program(w.build(99)).seed(3).build();
    sim.run_with_warmup(insts / 4, insts);
    sim.report()
}

fn cpi(r: &SimReport) -> f64 {
    r.cycles as f64 / r.total_insts().max(1) as f64
}

#[test]
fn invisispec_initial_is_much_slower_than_cleanupspec() {
    // Pick a memory-lively workload where the Redo cost shows clearly.
    let insts = 60_000;
    let base = run(SecurityMode::NonSecure, "sphinx3", insts);
    let cusp = run(SecurityMode::CleanupSpec, "sphinx3", insts);
    let invi = run(SecurityMode::InvisiSpecInitial, "sphinx3", insts);
    let s_cusp = cpi(&cusp) / cpi(&base);
    let s_invi = cpi(&invi) / cpi(&base);
    assert!(
        s_invi > s_cusp + 0.05,
        "Redo ({s_invi:.3}) must cost far more than Undo ({s_cusp:.3})"
    );
    assert!(s_invi > 1.15, "InvisiSpec-initial should exceed 15% here");
}

#[test]
fn cleanupspec_is_cheap_on_predictable_workloads() {
    let insts = 60_000;
    for name in ["libq", "milc", "gcc"] {
        let base = run(SecurityMode::NonSecure, name, insts);
        let cusp = run(SecurityMode::CleanupSpec, name, insts);
        let s = cpi(&cusp) / cpi(&base);
        assert!(
            s < 1.06,
            "{name}: CleanupSpec should be nearly free on low-squash \
             workloads, got {s:.3}"
        );
    }
}

#[test]
fn cleanupspec_costs_most_on_mispredict_heavy_workloads() {
    let insts = 60_000;
    let astar_b = run(SecurityMode::NonSecure, "astar", insts);
    let astar_c = run(SecurityMode::CleanupSpec, "astar", insts);
    let libq_b = run(SecurityMode::NonSecure, "libq", insts);
    let libq_c = run(SecurityMode::CleanupSpec, "libq", insts);
    let s_astar = cpi(&astar_c) / cpi(&astar_b);
    let s_libq = cpi(&libq_c) / cpi(&libq_b);
    assert!(
        s_astar > s_libq,
        "slowdown must track squash frequency: astar {s_astar:.3} vs libq {s_libq:.3}"
    );
}

#[test]
fn invisispec_doubles_memory_traffic_share() {
    use cleanupspec_mem::stats::MsgClass;
    let insts = 60_000;
    let base = run(SecurityMode::NonSecure, "soplex", insts);
    let invi = run(SecurityMode::InvisiSpecInitial, "soplex", insts);
    assert!(
        invi.traffic_vs(&base) > 1.3,
        "Redo must add traffic, got {:.2}",
        invi.traffic_vs(&base)
    );
    let spec_share =
        invi.traffic_share(MsgClass::SpecLoad) + invi.traffic_share(MsgClass::UpdateLoad);
    assert!(
        spec_share > 0.3,
        "invisible+update loads should dominate extra traffic, got {spec_share:.2}"
    );
}

#[test]
fn cleanupspec_adds_little_traffic() {
    let insts = 60_000;
    let base = run(SecurityMode::NonSecure, "soplex", insts);
    let cusp = run(SecurityMode::CleanupSpec, "soplex", insts);
    let t = cusp.traffic_vs(&base);
    assert!(
        t < 1.15,
        "CleanupSpec's extra accesses are <2% per the paper; traffic ratio {t:.2}"
    );
}

#[test]
fn window_extension_messages_are_rare() {
    let insts = 60_000;
    let cusp = run(SecurityMode::CleanupSpec, "lbm", insts);
    let msgs = cusp.cores[0].window_extend_msgs;
    let loads = cusp.cores[0].committed_loads.max(1);
    assert!(
        (msgs as f64) < 0.05 * loads as f64,
        ">98% of loads commit within one window interval; got {msgs} msgs / {loads} loads"
    );
}
