//! Warm-up reset completeness (regression).
//!
//! `Sim::run_with_warmup` calls `System::reset_stats` at the end of the
//! warm-up region. That reset used to clear only core and memory stats;
//! scheme counters (cleanups, restores, ...) survived into the measured
//! region and inflated every per-squash metric. These tests pin down the
//! contract: after the reset, *every* stat group — core stats, memory
//! stats, traffic counters, latency/occupancy histograms, and scheme
//! counters — reads zero, while architectural and microarchitectural
//! state stays warm.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec::Simulator;
use cleanupspec_suite::workloads::smith::{assemble_plan, plan};

/// A squash-heavy multi-op fuzzer program: mispredicted branches guarding
/// loads guarantee nonzero cleanup-scheme activity during warm-up.
fn squashy_sim(seed: u64) -> Simulator {
    let p = plan(seed);
    let mut b = SimBuilder::new(SecurityMode::CleanupSpec).seed(seed);
    for prog in assemble_plan(&p) {
        b = b.program(prog);
    }
    b.build()
}

#[test]
fn reset_clears_every_stat_group() {
    let mut sim = squashy_sim(3);
    sim.run_insts(5_000);

    // Preconditions: the warm-up region exercised every stat group, so a
    // zero after the reset means "cleared", not "never touched".
    {
        let sys = sim.system();
        let c = sys.core_stats(0);
        assert!(c.committed_insts > 0, "warm-up committed nothing");
        assert!(c.squashes > 0, "warm-up never squashed (seed too tame)");
        let m = sys.mem().stats();
        assert!(
            m.l1_hits + m.l2_hits + m.remote_hits + m.mem_loads > 0,
            "warm-up issued no demand loads"
        );
        assert!(
            m.load_latency.iter().map(|h| h.count()).sum::<u64>() > 0,
            "warm-up recorded no load-latency samples"
        );
        assert!(m.sefe_occupancy.count() > 0, "no speculative allocations");
        assert!(
            sys.mem().traffic().total() > 0,
            "warm-up produced no traffic"
        );
        let scheme_total: u64 = (0..1)
            .flat_map(|i| sys.scheme(i).stat_counters())
            .map(|(_, v)| v)
            .sum();
        assert!(scheme_total > 0, "warm-up never drove the cleanup engine");
    }

    sim.system_mut().reset_stats();

    let sys = sim.system();
    let c = sys.core_stats(0);
    assert_eq!(c.cycles, 0, "core cycles survived the reset");
    assert_eq!(c.committed_insts, 0, "committed_insts survived the reset");
    assert_eq!(c.committed_loads + c.committed_stores, 0);
    assert_eq!(c.squashes, 0, "squash count survived the reset");
    assert_eq!(c.squashed_insts, 0);
    assert_eq!(c.spec_issued_loads, 0);
    assert_eq!(c.squash_cleanup_cycles, 0);
    assert_eq!(
        c.cleanup_duration.count(),
        0,
        "cleanup-duration histogram survived the reset"
    );
    assert_eq!(
        c.episode_duration.count() + c.episode_loads.count(),
        0,
        "episode histograms survived the reset"
    );

    let m = sys.mem().stats();
    assert_eq!(
        m.l1_hits + m.l2_hits + m.remote_hits + m.mem_loads + m.dummy_misses,
        0,
        "demand-load path counters survived the reset"
    );
    assert_eq!(m.stores + m.store_upgrades, 0);
    assert_eq!(m.l1_evictions + m.l2_evictions + m.back_invals, 0);
    assert_eq!(m.cleanup_invals + m.cleanup_restores, 0);
    assert_eq!(m.dropped_fills + m.orphan_fills, 0);
    assert_eq!(
        m.load_latency.iter().map(|h| h.count()).sum::<u64>(),
        0,
        "load-latency histograms survived the reset"
    );
    assert_eq!(m.mshr_occupancy.count(), 0, "MSHR histogram survived");
    assert_eq!(m.sefe_occupancy.count(), 0, "SEFE histogram survived");

    assert_eq!(
        sys.mem().traffic().total(),
        0,
        "traffic counters survived the reset"
    );

    for (name, v) in sys.scheme(0).stat_counters() {
        assert_eq!(v, 0, "scheme counter `{name}` survived the reset");
    }
}

#[test]
fn measured_region_excludes_warmup_commits() {
    // End-to-end through `run_with_warmup`: the measured instruction count
    // must not include the warm-up commits.
    let mut sim = squashy_sim(3);
    sim.run_with_warmup(1_000, 1_500);
    let c = sim.core_stats(0);
    assert!(
        c.committed_insts <= 1_500,
        "measured region counted warm-up commits ({} > 1500)",
        c.committed_insts
    );
}
