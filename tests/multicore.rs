//! Multi-core integration tests: coherence invariants, Figure-9
//! classification plumbing, and determinism across the 4-core sharing
//! workloads.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_suite::workloads::sharing::{sharing_workload, SHARING_WORKLOADS};

fn run_sharing(
    name: &str,
    mode: SecurityMode,
    insts: u64,
    seed: u64,
) -> cleanupspec::sim::Simulator {
    let w = sharing_workload(name).expect("known workload");
    let mut b = SimBuilder::new(mode).seed(seed);
    for p in w.build_all(4, seed) {
        b = b.program(p);
    }
    let mut sim = b.build();
    // Warm up past the cold-sharing phase (first cross-core touches of the
    // read-only region are legitimate remote-E hits), then measure.
    sim.run_with_warmup(insts / 2, insts);
    sim
}

#[test]
fn invariants_hold_across_sharing_workloads() {
    for w in ["barnes", "fluidanimate", "streamcluster", "fft"] {
        for mode in [SecurityMode::NonSecure, SecurityMode::CleanupSpec] {
            let sim = run_sharing(w, mode, 20_000, 5);
            sim.mem().check_invariants().unwrap_or_else(|e| {
                panic!("{w} under {mode}: {e}");
            });
        }
    }
}

#[test]
fn lock_transfer_workloads_show_remote_em_loads() {
    let sim = run_sharing("radiosity", SecurityMode::NonSecure, 40_000, 5);
    let m = sim.mem().stats();
    assert!(
        m.class_remote_em > 0,
        "lock transfers must surface as remote-E/M loads"
    );
    let total = (m.class_safe_cache + m.class_remote_em + m.class_dram) as f64;
    let frac = m.class_remote_em as f64 / total;
    assert!(
        frac < 0.15,
        "remote-E/M loads stay a small fraction ({frac:.3}) as in Fig. 9"
    );
}

#[test]
fn lockless_workload_has_fewer_remote_em_than_lock_heavy() {
    // Even without lock transfers a little remote-E shows up from L2
    // capacity churn re-creating Exclusive lines; but it must stay small
    // and well below a lock-heavy kernel's rate.
    let frac = |name: &str| {
        let sim = run_sharing(name, SecurityMode::NonSecure, 30_000, 5);
        let m = sim.mem().stats().clone();
        let total = (m.class_safe_cache + m.class_remote_em + m.class_dram).max(1) as f64;
        m.class_remote_em as f64 / total
    };
    let lockless = frac("blackscholes");
    let locky = frac("radiosity");
    assert!(
        lockless < 0.02,
        "lockless remote-E/M share too high: {lockless:.4}"
    );
    assert!(
        locky > 2.0 * lockless.max(1e-4),
        "lock transfers must dominate: locky={locky:.4} lockless={lockless:.4}"
    );
}

#[test]
fn cleanupspec_defers_instead_of_downgrading_in_sharing_runs() {
    let ns = run_sharing("radiosity", SecurityMode::NonSecure, 40_000, 5);
    let cs = run_sharing("radiosity", SecurityMode::CleanupSpec, 40_000, 5);
    // CleanupSpec converts speculative remote-M touches into GetS-Safe
    // refusals followed by non-speculative retries.
    assert!(
        cs.mem().stats().gets_safe_refusals > 0,
        "expected GetS-Safe refusals under CleanupSpec"
    );
    assert!(ns.mem().stats().gets_safe_refusals == 0);
    // Both still make forward progress on all cores.
    for i in 0..4 {
        assert!(cs.core_stats(i).committed_insts >= 20_000);
    }
}

#[test]
fn all_sharing_workloads_build_and_run_briefly() {
    for w in SHARING_WORKLOADS {
        let mut b = SimBuilder::new(SecurityMode::NonSecure).seed(1);
        for p in w.build_all(4, 1) {
            b = b.program(p);
        }
        let mut sim = b.build();
        sim.run_insts(2_000);
        for i in 0..4 {
            assert!(
                sim.core_stats(i).committed_insts >= 2_000,
                "{} core {i} stalled",
                w.name
            );
        }
        sim.mem().check_invariants().unwrap();
    }
}

#[test]
fn sharing_runs_are_deterministic() {
    let a = run_sharing("water.nsq", SecurityMode::CleanupSpec, 10_000, 9);
    let b = run_sharing("water.nsq", SecurityMode::CleanupSpec, 10_000, 9);
    assert_eq!(a.report().cycles, b.report().cycles);
    assert_eq!(
        a.mem().stats().class_remote_em,
        b.mem().stats().class_remote_em
    );
}
