//! Cycle-accounting invariant tests: every simulated cycle is attributed
//! to exactly one [`StallCause`] bucket per core, so each core's CPI
//! stack must sum to the report's total cycles — across schemes, seeds,
//! early stop reasons (cycle limit, livelock), and the attack-harness
//! phases (probe loads, flushes, drains) that advance time outside the
//! pipeline.

use cleanupspec::prelude::*;
use cleanupspec::sim::SimReport;
use cleanupspec_asm::assemble;
use cleanupspec_core::stats::StallCause;
use cleanupspec_core::system::{RunLimits, StopReason};
use cleanupspec_mem::fault::{FaultKind, FaultPlan};
use cleanupspec_mem::hierarchy::MemConfig;
use cleanupspec_workloads::spec::spec_workload;

fn assert_stacks_sum(r: &SimReport, what: &str) {
    for (i, c) in r.cores.iter().enumerate() {
        assert_eq!(
            c.cpi_stack.total(),
            r.cycles,
            "{what}: core {i} stack sums to {} but the run took {} cycles\n{:?}",
            c.cpi_stack.total(),
            r.cycles,
            c.cpi_stack
        );
    }
}

#[test]
fn stacks_sum_to_cycles_across_schemes_and_seeds() {
    // SplitMix64-style seed scramble so the seeds exercise different
    // program shapes without a hand-picked list.
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for workload in ["gcc", "mcf", "astar"] {
        let w = spec_workload(workload).unwrap();
        for mode in SecurityMode::MAIN {
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
            let seed = x;
            let mut sim = SimBuilder::new(mode)
                .program(w.build(seed))
                .seed(seed)
                .build();
            sim.run_with_warmup(3_000, 10_000);
            let r = sim.report();
            assert_stacks_sum(&r, &format!("{workload}/{}/seed {seed:#x}", mode.name()));
            assert!(
                r.cores[0].cpi_stack.get(StallCause::Commit) > 0,
                "{workload}/{}: a committing run must charge commit cycles",
                mode.name()
            );
        }
    }
}

#[test]
fn stack_sums_hold_when_the_cycle_limit_cuts_the_run_short() {
    let w = spec_workload("mcf").unwrap();
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(w.build(7))
        .seed(7)
        .build();
    let stop = sim.run(RunLimits {
        max_cycles: 2_500,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    assert_eq!(stop, StopReason::CycleLimit);
    assert_stacks_sum(&sim.report(), "cycle-limit");
}

#[test]
fn stack_sums_hold_through_a_livelock() {
    // The watchdog recipe: every completed miss leaks its MSHR entry, so
    // a cache-missing loop exhausts a 4-entry MSHR file and the head load
    // retries forever. Even that pathological run must account for every
    // cycle.
    let program = assemble(
        "miss-loop",
        r"
        .reg r1 = 0x40000
        .reg r2 = 200
    loop:
        ld r3, [r1]
        clflush [r1]
        sub r2, r2, 1
        bne r2, loop
        halt
        ",
    )
    .unwrap();
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(program)
        .mem_config(MemConfig {
            mshrs_per_core: 4,
            ..MemConfig::default()
        })
        .fault_plan(FaultPlan::single(FaultKind::LeakMshrSlot))
        .build();
    let stop = sim.run(RunLimits {
        max_cycles: 2_000_000,
        max_insts_per_core: u64::MAX,
        watchdog: Some(5_000),
    });
    assert!(
        matches!(stop, StopReason::Livelock(_)),
        "expected livelock, got {stop:?}"
    );
    assert_stacks_sum(&sim.report(), "livelock");
}

#[test]
fn stack_sums_hold_through_harness_phases() {
    // probe_load / flush_line / drain advance simulated time without
    // ticking the pipelines; those cycles land in the harness bucket and
    // the invariant must survive them.
    let w = spec_workload("gcc").unwrap();
    let mut sim = SimBuilder::new(SecurityMode::NonSecure)
        .program(w.build(3))
        .seed(3)
        .build();
    sim.run_insts(5_000);
    for i in 0..8u64 {
        sim.probe_load(CoreId(0), Addr::new(0x40000 + i * 64));
        sim.flush_line(CoreId(0), Addr::new(0x40000 + i * 64));
    }
    sim.drain(1_000);
    let r = sim.report();
    assert_stacks_sum(&r, "harness phases");
    assert!(
        r.cores[0].cpi_stack.get(StallCause::Harness) > 0,
        "harness-driven cycles must be charged to the harness bucket"
    );
}

#[test]
fn cleanupspec_slowdown_is_attributed_to_nonzero_scheme_buckets() {
    // The "where does the slowdown go" acceptance check: under
    // CleanupSpec a squash-heavy workload must show its overhead in the
    // scheme-specific buckets, and the top-3 overhead causes vs NonSecure
    // must carry nonzero cycle counts.
    let w = spec_workload("astar").unwrap();
    let run = |mode: SecurityMode| {
        let mut sim = SimBuilder::new(mode).program(w.build(11)).seed(11).build();
        sim.run_with_warmup(5_000, 25_000);
        sim.report()
    };
    let base = run(SecurityMode::NonSecure);
    let secure = run(SecurityMode::CleanupSpec);
    assert!(secure.slowdown_vs(&base) > 1.0, "astar must pay for safety");

    let bs = base.cpi_stack();
    let ss = secure.cpi_stack();
    let scheme_cycles: u64 = StallCause::ALL
        .iter()
        .filter(|c| c.is_scheme_overhead())
        .map(|&c| ss.get(c))
        .sum();
    assert!(
        scheme_cycles > 0,
        "cleanupspec run charged no scheme-overhead cycles: {ss:?}"
    );

    let bi = base.total_insts();
    let si = secure.total_insts();
    let mut deltas: Vec<(StallCause, f64)> = StallCause::ALL
        .iter()
        .map(|&c| (c, ss.cpki(c, si) - bs.cpki(c, bi)))
        .collect();
    deltas.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top: Vec<_> = deltas.iter().take(3).filter(|(_, d)| *d > 0.0).collect();
    assert!(!top.is_empty(), "slowdown must be attributed somewhere");
    for (cause, delta) in &top {
        assert!(
            ss.get(*cause) > 0,
            "top overhead cause {cause} ({delta:+.2} CPKI) has zero cycles"
        );
    }
}
