//! Architectural-correctness property test: random programs must compute
//! identical final register and memory state on a simple in-order
//! reference interpreter and on the out-of-order pipeline — under **every
//! security mode**. Security schemes change timing and cache state, never
//! architectural results; wrong-path execution must be invisible to the
//! architecture.

//!
//! The always-on test drives 20 random programs from the workspace's
//! deterministic `SplitMix64` (hermetic build); the original
//! shrinking-capable proptest version sits behind the off-by-default
//! `proptest` feature.

use cleanupspec::prelude::*;
use cleanupspec_mem::rng::SplitMix64;
use cleanupspec_suite::core_sim::isa::{AluOp, BranchCond, Operand, Pc, NUM_REGS};
use cleanupspec_suite::core_sim::reference;

/// Final architectural registers from the shared in-order reference
/// interpreter (`cleanupspec_core::reference`, also the ground truth for
/// the `cs-smith` differential fuzzer).
fn interpret(p: &Program, max_steps: usize) -> [u64; NUM_REGS] {
    let r = reference::interpret(p, max_steps);
    assert!(r.halted, "reference interpreter exceeded {max_steps} steps");
    r.regs
}

/// A random but guaranteed-terminating program: a counted loop whose body
/// is a random mix of ALU ops, loads, stores, and a forward skip branch.
#[derive(Clone, Debug)]
enum BodyOp {
    Alu(u8, AluOp, u8, i64),
    Load(u8, u64),
    Store(u8, u64),
    SkipIf(u8, bool, u8), // (cond reg, on_zero, ops to skip)
}

/// Draws one body operation; mirrors the original proptest strategy
/// (four equally-weighted forms over data registers r2..r11).
fn gen_body_op(rng: &mut SplitMix64) -> BodyOp {
    let reg = |rng: &mut SplitMix64| (2 + rng.below(10)) as u8;
    match rng.below(4) {
        0 => {
            const OPS: [AluOp; 8] = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Mul,
                AluOp::Xor,
                AluOp::And,
                AluOp::Or,
                AluOp::Shl,
                AluOp::Shr,
            ];
            BodyOp::Alu(
                reg(rng),
                OPS[rng.below(8) as usize],
                reg(rng),
                rng.below(128) as i64 - 64,
            )
        }
        1 => BodyOp::Load(reg(rng), rng.below(64)),
        2 => BodyOp::Store(reg(rng), rng.below(64)),
        _ => BodyOp::SkipIf(reg(rng), rng.below(2) == 1, (1 + rng.below(4)) as u8),
    }
}

fn build(ops: &[BodyOp], iters: u64) -> Program {
    let mut b = ProgramBuilder::new("random");
    let r_i = Reg(1);
    let region = 0x5_0000u64;
    b.init_reg(r_i, iters);
    for k in 2..12u8 {
        b.init_reg(Reg(k), 0x1111 * k as u64);
    }
    let top = b.here();
    let mut pending_skips: Vec<(Pc, usize)> = Vec::new(); // (branch pc, ops left)
    for op in ops {
        // Resolve expired skips.
        let here = b.here();
        pending_skips.retain_mut(|(bpc, left)| {
            if *left == 0 {
                b.patch_branch(*bpc, here);
                false
            } else {
                *left -= 1;
                true
            }
        });
        match op {
            BodyOp::Alu(d, aop, s, imm) => {
                b.alu(Reg(*d), *aop, Operand::Reg(Reg(*s)), Operand::Imm(*imm));
            }
            BodyOp::Load(d, slot) => {
                b.movi(Reg(31), region + slot * 8);
                b.load(Reg(*d), Reg(31), 0);
            }
            BodyOp::Store(s, slot) => {
                b.movi(Reg(31), region + slot * 8);
                b.store(Reg(*s), Reg(31), 0);
            }
            BodyOp::SkipIf(r, on_zero, n) => {
                let cond = if *on_zero {
                    BranchCond::Zero
                } else {
                    BranchCond::NotZero
                };
                let at = b.branch(Reg(*r), cond, 0);
                pending_skips.push((at, *n as usize));
            }
        }
    }
    let end = b.here();
    for (bpc, _) in &pending_skips {
        b.patch_branch(*bpc, end);
    }
    b.alu(r_i, AluOp::Sub, Operand::Reg(r_i), Operand::Imm(1));
    b.branch(r_i, BranchCond::NotZero, top);
    b.halt();
    b.build()
}

fn pipeline_regs(p: &Program, mode: SecurityMode) -> Vec<u64> {
    let mut sim = SimBuilder::new(mode).program(p.clone()).build();
    let reason = sim.run(RunLimits {
        max_cycles: 3_000_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    assert_eq!(
        reason,
        StopReason::AllHalted,
        "program must halt under {mode}"
    );
    (0..30).map(|r| sim.system().core(0).reg(Reg(r))).collect()
}

#[test]
fn pipeline_matches_reference_interpreter() {
    for case in 0..20u64 {
        let mut rng = SplitMix64::new(0x9EF9_EFC0_DE01 ^ case);
        let n = 3 + rng.below(15) as usize;
        let ops: Vec<BodyOp> = (0..n).map(|_| gen_body_op(&mut rng)).collect();
        let iters = 2 + rng.below(10);
        let p = build(&ops, iters);
        let ref_regs = interpret(&p, 2_000_000);
        // Registers 0..30: r31 is the builder's scratch address register
        // and the link register, both still architectural — include it via
        // the reference too. We compare r0..r29 (the data registers).
        for mode in [
            SecurityMode::NonSecure,
            SecurityMode::CleanupSpec,
            SecurityMode::InvisiSpecInitial,
            SecurityMode::InvisiSpecRevised,
            SecurityMode::DelaySpeculativeLoads,
        ] {
            let got = pipeline_regs(&p, mode);
            for r in 0..30usize {
                assert_eq!(
                    got[r], ref_regs[r],
                    "case {case}: r{r} differs under {mode} (ops {ops:?}, iters {iters})"
                );
            }
        }
    }
}

// The original shrinking property test. Enabling this feature requires
// restoring the `proptest` dev-dependency (removed so the workspace
// builds with no registry access).
#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    fn body_op() -> impl Strategy<Value = BodyOp> {
        prop_oneof![
            (
                2u8..12,
                prop_oneof![
                    Just(AluOp::Add),
                    Just(AluOp::Sub),
                    Just(AluOp::Mul),
                    Just(AluOp::Xor),
                    Just(AluOp::And),
                    Just(AluOp::Or),
                    Just(AluOp::Shl),
                    Just(AluOp::Shr)
                ],
                2u8..12,
                -64i64..64
            )
                .prop_map(|(d, op, s, imm)| BodyOp::Alu(d, op, s, imm)),
            (2u8..12, 0u64..64).prop_map(|(d, slot)| BodyOp::Load(d, slot)),
            (2u8..12, 0u64..64).prop_map(|(s, slot)| BodyOp::Store(s, slot)),
            (2u8..12, any::<bool>(), 1u8..5).prop_map(|(r, z, n)| BodyOp::SkipIf(r, z, n)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn prop_pipeline_matches_reference_interpreter(
            ops in proptest::collection::vec(body_op(), 3..18),
            iters in 2u64..12,
        ) {
            let p = build(&ops, iters);
            let ref_regs = interpret(&p, 2_000_000);
            for mode in [
                SecurityMode::NonSecure,
                SecurityMode::CleanupSpec,
                SecurityMode::InvisiSpecInitial,
                SecurityMode::InvisiSpecRevised,
                SecurityMode::DelaySpeculativeLoads,
            ] {
                let got = pipeline_regs(&p, mode);
                for r in 0..30usize {
                    prop_assert_eq!(
                        got[r],
                        ref_regs[r],
                        "r{} differs under {} (ops {:?}, iters {})",
                        r, mode, &ops, iters
                    );
                }
            }
        }
    }
}

#[test]
fn reference_and_pipeline_agree_on_fixed_kernel() {
    // A deterministic spot check with heavy store/load aliasing.
    let ops = vec![
        BodyOp::Store(3, 5),
        BodyOp::Load(4, 5),
        BodyOp::Alu(3, AluOp::Add, 4, 17),
        BodyOp::SkipIf(3, false, 2),
        BodyOp::Store(3, 6),
        BodyOp::Load(5, 6),
        BodyOp::Alu(6, AluOp::Xor, 5, 3),
    ];
    let p = build(&ops, 10);
    let ref_regs = interpret(&p, 100_000);
    let got = pipeline_regs(&p, SecurityMode::CleanupSpec);
    for r in 0..30usize {
        assert_eq!(got[r], ref_regs[r], "r{r}");
    }
}
