//! End-to-end tests of speculation-window protection (Section 3.6): while
//! a transiently installed line is still speculative, another core's
//! access must be serviced as a dummy miss — revealing nothing — and after
//! retirement the same access behaves normally.

use cleanupspec::prelude::*;
use cleanupspec_suite::core_sim::isa::{AluOp, BranchCond, Operand};

/// Victim program: legitimately (correct path, but speculatively at issue)
/// loads `target`, then spins long enough for the attacker to probe while
/// the load is still in the speculation window, then halts.
fn victim(target: u64, spin: u64) -> Program {
    let mut b = ProgramBuilder::new("victim");
    let r_t = Reg(2);
    let r_s = Reg(3);
    let r_i = Reg(4);
    b.movi(r_t, target);
    b.load(r_s, r_t, 0);
    b.movi(r_i, spin);
    let top = b.here();
    b.alu(r_i, AluOp::Sub, Operand::Reg(r_i), Operand::Imm(1));
    b.branch(r_i, BranchCond::NotZero, top);
    b.halt();
    b.build()
}

fn idle() -> Program {
    let mut b = ProgramBuilder::new("idle");
    b.halt();
    b.build()
}

#[test]
fn cross_core_probe_during_window_gets_dummy_miss() {
    let target = 0x0123_4000u64;
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(victim(target, 5_000))
        .program(idle())
        .seed(9)
        .build();
    // Run until the victim's load has installed (it completes within a few
    // hundred cycles) but is far from retiring... actually it retires
    // quickly; instead install transiently via the hierarchy directly:
    // issue a speculative load from core 0 and probe from core 1 before
    // retirement.
    use cleanupspec_mem::hierarchy::{LoadKind, LoadReq};
    use cleanupspec_mem::types::LoadId;
    let line = Addr::new(target).line();
    let now = sim.system().now();
    let out = sim
        .system_mut()
        .mem_mut()
        .load(
            CoreId(0),
            line,
            now,
            LoadReq {
                load: LoadId(1),
                spec: true,
                allow_downgrade: false,
                kind: LoadKind::Demand,
                tag_spec_install: true,
            },
        )
        .expect("MSHR free");
    sim.drain(out.complete_at - now + 1);
    if let Some(t) = out.token {
        let _ = sim.system_mut().mem_mut().collect(t);
    }
    // Core 1 probes while the install is still speculative.
    let lat_during = sim.probe_load(CoreId(1), Addr::new(target));
    let cfg = sim.mem().config();
    assert_eq!(
        lat_during,
        cfg.l2_effective_rt() + cfg.dram_rt,
        "window protection must service the probe as a full dummy miss"
    );
    assert!(
        sim.mem().l1(CoreId(1)).probe(line).is_none(),
        "a dummy miss leaves no state for the prober"
    );
    // The victim retires the load: the line becomes safe.
    sim.system_mut().mem_mut().retire_load(CoreId(0), line);
    let lat_after = sim.probe_load(CoreId(1), Addr::new(target));
    assert!(
        lat_after < lat_during,
        "after retirement the line is served normally ({lat_after} vs {lat_during})"
    );
}

#[test]
fn same_core_hits_its_own_speculative_line() {
    // The installing core itself must NOT be penalized (Section 3.6 only
    // protects against OTHER threads/cores).
    let target = 0x0222_8000u64;
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(idle())
        .program(idle())
        .seed(9)
        .build();
    use cleanupspec_mem::hierarchy::{LoadKind, LoadReq};
    use cleanupspec_mem::types::LoadId;
    let line = Addr::new(target).line();
    let now = sim.system().now();
    let out = sim
        .system_mut()
        .mem_mut()
        .load(
            CoreId(0),
            line,
            now,
            LoadReq {
                load: LoadId(1),
                spec: true,
                allow_downgrade: false,
                kind: LoadKind::Demand,
                tag_spec_install: true,
            },
        )
        .expect("MSHR free");
    sim.drain(out.complete_at - now + 1);
    if let Some(t) = out.token {
        let _ = sim.system_mut().mem_mut().collect(t);
    }
    let lat = sim.probe_load(CoreId(0), Addr::new(target));
    assert_eq!(lat, 1, "own speculative line is a normal L1 hit");
}

#[test]
fn window_protection_disabled_on_nonsecure() {
    let target = 0x0333_4000u64;
    let mut sim = SimBuilder::new(SecurityMode::NonSecure)
        .program(victim(target, 200))
        .program(idle())
        .seed(9)
        .build();
    sim.run(RunLimits {
        max_cycles: 100_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    sim.drain(500);
    // On the baseline, core 1 sees the line in the shared L2 immediately.
    let lat = sim.probe_load(CoreId(1), Addr::new(target));
    let cfg = sim.mem().config();
    assert!(
        lat <= cfg.l2_effective_rt() + cfg.remote_penalty,
        "baseline probe is served from the hierarchy ({lat})"
    );
}
