//! Integration tests for CleanupSpec's core guarantee: after a squash and
//! cleanup, the cache state is as if the wrong path never ran
//! (Section 4c), across the whole simulator stack.

//!
//! The always-on randomized tests below derive their cases from the
//! workspace's deterministic `SplitMix64` (hermetic build); the original
//! shrinking-capable proptest versions sit behind the off-by-default
//! `proptest` feature.

use cleanupspec::prelude::*;
use cleanupspec_mem::rng::SplitMix64;
use cleanupspec_suite::core_sim::isa::{AluOp, BranchCond, Operand};

/// Builds a gadget with `wrong_path_loads` transient loads to the given
/// line numbers, architecturally skipped by an actually-taken branch that a
/// cold predictor mispredicts as not-taken.
fn gadget(wrong_path_lines: &[u64], trigger_line: u64) -> Program {
    let mut b = ProgramBuilder::new("gadget");
    let r_trig = Reg(2);
    let r_cond = Reg(3);
    let r_sink = Reg(5);
    let r_addr = Reg(6);
    b.movi(r_trig, trigger_line * 64);
    b.load(r_cond, r_trig, 0); // slow cold load delays resolution
    b.alu(r_cond, AluOp::Mul, Operand::Reg(r_cond), Operand::Imm(0));
    b.alu(r_cond, AluOp::Add, Operand::Reg(r_cond), Operand::Imm(1));
    let br = b.branch(r_cond, BranchCond::NotZero, 0);
    for &line in wrong_path_lines {
        b.movi(r_addr, line * 64);
        b.load(r_sink, r_addr, 0);
    }
    let skip = b.here();
    b.patch_branch(br, skip);
    b.halt();
    b.build()
}

/// A cache snapshot: (line, dirty) pairs.
type Snapshot = Vec<(LineAddr, bool)>;

/// Runs the gadget under `mode` and returns (l1 snapshot, l2 snapshot)
/// after the squash settled, excluding lines the correct path touches.
fn run_gadget(
    mode: SecurityMode,
    wrong_path_lines: &[u64],
    trigger_line: u64,
    pre_touched: &[u64],
) -> (Snapshot, Snapshot) {
    let mut sim = SimBuilder::new(mode)
        .program(gadget(wrong_path_lines, trigger_line))
        .seed(0x5eed)
        .build();
    // Pre-populate victim lines so wrong-path installs cause evictions
    // that must be restored.
    for &l in pre_touched {
        sim.probe_load(CoreId(0), Addr::new(l * 64));
    }
    sim.run(RunLimits {
        max_cycles: 200_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    sim.drain(2_000);
    let correct_path: std::collections::HashSet<u64> = [trigger_line].into();
    let l1 = sim
        .mem()
        .l1_snapshot(CoreId(0))
        .into_iter()
        .filter(|(l, _, _)| !correct_path.contains(&l.raw()))
        .map(|(l, _, d)| (l, d))
        .collect();
    let l2 = sim
        .mem()
        .l2_snapshot()
        .into_iter()
        .filter(|(l, _, _)| !correct_path.contains(&l.raw()))
        .map(|(l, _, d)| (l, d))
        .collect();
    (l1, l2)
}

#[test]
fn wrong_path_lines_absent_after_cleanup() {
    let wrong: Vec<u64> = vec![0x9000, 0x9100, 0x9200];
    let (l1, l2) = run_gadget(SecurityMode::CleanupSpec, &wrong, 0x8001, &[]);
    for w in &wrong {
        assert!(
            !l1.iter().any(|(l, _)| l.raw() == *w),
            "transient line {w:#x} survived in L1"
        );
        assert!(
            !l2.iter().any(|(l, _)| l.raw() == *w),
            "transient line {w:#x} survived in L2"
        );
    }
}

#[test]
fn wrong_path_lines_present_without_cleanup() {
    let wrong: Vec<u64> = vec![0x9000, 0x9100];
    let (l1, l2) = run_gadget(SecurityMode::NonSecure, &wrong, 0x8001, &[]);
    let survived = wrong
        .iter()
        .filter(|w| {
            l1.iter().any(|(l, _)| l.raw() == **w) || l2.iter().any(|(l, _)| l.raw() == **w)
        })
        .count();
    assert!(
        survived > 0,
        "non-secure baseline must retain wrong-path installs"
    );
}

#[test]
fn evicted_victims_are_restored() {
    // Fill one L1 set with 8 victims, then a wrong-path load into the same
    // set; after cleanup every victim must still be L1-resident.
    let set = 5u64;
    let victims: Vec<u64> = (1..=8).map(|k| 0x2_0000 + set + k * 128).collect();
    let wrong = vec![0x7_0000 + set];
    let (l1, _) = run_gadget(SecurityMode::CleanupSpec, &wrong, 0x8001, &victims);
    for v in &victims {
        assert!(
            l1.iter().any(|(l, _)| l.raw() == *v),
            "victim {v:#x} was not restored"
        );
    }
}

#[test]
fn no_spec_tags_survive_a_completed_run() {
    let wrong: Vec<u64> = (0..6).map(|i| 0xA000 + i * 0x101).collect();
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(gadget(&wrong, 0x8001))
        .build();
    sim.run(RunLimits {
        max_cycles: 200_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    sim.drain(2_000);
    for l in sim.mem().l1(CoreId(0)).iter_valid() {
        assert!(l.spec.is_none(), "dangling spec tag on {} in L1", l.line);
    }
    for l in sim.mem().l2().iter_valid() {
        assert!(l.spec.is_none(), "dangling spec tag on {} in L2", l.line);
    }
    sim.mem().check_invariants().unwrap();
}

/// For arbitrary wrong-path target sets, cleanup removes every transient
/// line and the hierarchy invariants hold.
#[test]
fn cleanup_removes_all_transient_lines() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0xC1EA_4B4C ^ case);
        let n = 1 + rng.below(7) as usize;
        let lines: Vec<u64> = (0..n)
            .map(|_| 0x9000 + rng.below(0xF000 - 0x9000))
            .collect();
        let (l1, l2) = run_gadget(SecurityMode::CleanupSpec, &lines, 0x8001, &[]);
        for w in &lines {
            assert!(
                !l1.iter().any(|(l, _)| l.raw() == *w),
                "case {case}: {w:#x} survived in L1"
            );
            assert!(
                !l2.iter().any(|(l, _)| l.raw() == *w),
                "case {case}: {w:#x} survived in L2"
            );
        }
    }
}

/// Several wrong-path loads aliasing into the SAME full set create
/// eviction chains (a transient install can evict an earlier transient
/// install's line, or a victim another load must restore); reverse
/// LoadID-ordered cleanup must still recover every original line
/// (Section 3.4, "Squashing Re-ordered Loads").
#[test]
fn same_set_eviction_chains_unwind() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x5E7C_4A17 ^ case);
        let set = rng.below(128);
        let n_wrong = 1 + rng.below(5) as usize;
        let keys: Vec<u64> = (0..6).map(|_| 64 + rng.below(56)).collect();
        let victims: Vec<u64> = (1..=8).map(|k| 0x2_0000 + set + k * 128).collect();
        let wrong: Vec<u64> = keys
            .iter()
            .take(n_wrong)
            .map(|k| 0x7_0000 + set + k * 128)
            .collect();
        let trigger = 0x8001 + ((set + 1) % 128);
        let (l1, l2) = run_gadget(SecurityMode::CleanupSpec, &wrong, trigger, &victims);
        for v in &victims {
            assert!(
                l1.iter().any(|(l, _)| l.raw() == *v),
                "case {case}: victim {v:#x} missing after chained cleanup"
            );
        }
        for w in &wrong {
            assert!(!l1.iter().any(|(l, _)| l.raw() == *w), "case {case}");
            assert!(!l2.iter().any(|(l, _)| l.raw() == *w), "case {case}");
        }
    }
}

/// Pre-touched victim lines survive arbitrary transient episodes.
#[test]
fn victims_restored() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::new(0x71C7_135A ^ case);
        let set = rng.below(128);
        let way_keys: Vec<u64> = (0..8).map(|_| 1 + rng.below(59)).collect();
        let wrong_off = rng.below(16);
        let victims: Vec<u64> = way_keys
            .iter()
            .enumerate()
            .map(|(i, k)| 0x2_0000 + set + (k + i as u64 * 61) * 128)
            .collect();
        let wrong = vec![0x7_0000 + set + wrong_off * 128];
        let trigger = 0x8001 + ((set + 1) % 128); // different set
        let (l1, _) = run_gadget(SecurityMode::CleanupSpec, &wrong, trigger, &victims);
        for v in &victims {
            assert!(
                l1.iter().any(|(l, _)| l.raw() == *v),
                "case {case}: victim {v:#x} missing after cleanup"
            );
        }
    }
}

// The original shrinking property tests. Enabling this feature requires
// restoring the `proptest` dev-dependency (removed so the workspace
// builds with no registry access).
#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_cleanup_removes_all_transient_lines(
            lines in proptest::collection::vec(0x9000u64..0xF000, 1..8),
        ) {
            let (l1, l2) = run_gadget(SecurityMode::CleanupSpec, &lines, 0x8001, &[]);
            for w in &lines {
                prop_assert!(!l1.iter().any(|(l, _)| l.raw() == *w));
                prop_assert!(!l2.iter().any(|(l, _)| l.raw() == *w));
            }
        }

        #[test]
        fn prop_same_set_eviction_chains_unwind(
            set in 0u64..128,
            n_wrong in 1usize..6,
            keys in proptest::collection::vec(64u64..120, 6),
        ) {
            let victims: Vec<u64> = (1..=8).map(|k| 0x2_0000 + set + k * 128).collect();
            let wrong: Vec<u64> = keys
                .iter()
                .take(n_wrong)
                .map(|k| 0x7_0000 + set + k * 128)
                .collect();
            let trigger = 0x8001 + ((set + 1) % 128);
            let (l1, l2) = run_gadget(SecurityMode::CleanupSpec, &wrong, trigger, &victims);
            for v in &victims {
                prop_assert!(
                    l1.iter().any(|(l, _)| l.raw() == *v),
                    "victim {v:#x} missing after chained cleanup"
                );
            }
            for w in &wrong {
                prop_assert!(!l1.iter().any(|(l, _)| l.raw() == *w));
                prop_assert!(!l2.iter().any(|(l, _)| l.raw() == *w));
            }
        }

        #[test]
        fn prop_victims_restored(
            set in 0u64..128,
            way_keys in proptest::collection::vec(1u64..60, 8),
            wrong_off in 0u64..16,
        ) {
            let victims: Vec<u64> = way_keys
                .iter()
                .enumerate()
                .map(|(i, k)| 0x2_0000 + set + (k + i as u64 * 61) * 128)
                .collect();
            let wrong = vec![0x7_0000 + set + wrong_off * 128];
            let trigger = 0x8001 + ((set + 1) % 128); // different set
            let (l1, _) = run_gadget(SecurityMode::CleanupSpec, &wrong, trigger, &victims);
            for v in &victims {
                prop_assert!(
                    l1.iter().any(|(l, _)| l.raw() == *v),
                    "victim {v:#x} missing after cleanup"
                );
            }
        }
    }
}
