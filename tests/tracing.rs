//! Tests of the pipeline's event-trace infrastructure against a known
//! attack timeline.

use cleanupspec::prelude::*;
use cleanupspec_suite::core_sim::trace::TraceEvent;
use cleanupspec_suite::workloads::attacks::{meltdown_program, MeltdownConfig};

#[test]
fn trace_captures_meltdown_timeline() {
    let cfg = MeltdownConfig::default();
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(meltdown_program(&cfg))
        .build();
    sim.system_mut().core_mut(0).enable_trace(4096);
    sim.run(RunLimits {
        max_cycles: 200_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    let trace = sim.system().core(0).trace().expect("tracing enabled");
    let events: Vec<_> = trace.events().map(|r| r.event).collect();
    // The secret load and the transient transmission both issued...
    let loads: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::LoadIssue { .. }))
        .collect();
    assert!(loads.len() >= 2, "secret + transmission loads: {loads:?}");
    // ...a fault was raised...
    assert!(events.iter().any(|e| matches!(e, TraceEvent::Fault { .. })));
    // ...and the timeline is cycle-monotonic.
    let cycles: Vec<_> = trace.events().map(|r| r.cycle).collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    // The dump is renderable and mentions the fault.
    let dump = trace.dump();
    assert!(dump.contains("FAULT"));
    assert!(dump.contains("dispatch"));
}

#[test]
fn trace_disabled_by_default_and_bounded_when_on() {
    let cfg = MeltdownConfig::default();
    let mut sim = SimBuilder::new(SecurityMode::NonSecure)
        .program(meltdown_program(&cfg))
        .build();
    assert!(sim.system().core(0).trace().is_none());
    sim.system_mut().core_mut(0).enable_trace(4);
    sim.run(RunLimits {
        max_cycles: 200_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    let t = sim.system().core(0).trace().unwrap();
    assert!(t.events().count() <= 4, "ring buffer bound respected");
    assert!(t.total_recorded() > 4, "more events happened than retained");
}
