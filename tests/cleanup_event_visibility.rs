//! End-to-end event-bus test: a Spectre-style transient episode must be
//! fully visible on the event stream — the squash, then cleanup actions
//! whose line addresses match the transiently filled lines — and the
//! leakage audit must pass under CleanupSpec and fail under NonSecure.

use cleanupspec::prelude::*;
use cleanupspec_obs::{LeakageAuditSink, RingSink, Shared, SimEvent};
use cleanupspec_suite::core_sim::isa::{AluOp, BranchCond, Operand};
use std::collections::HashSet;

/// Spectre-style gadget: a slow cold load delays branch resolution long
/// enough for the wrong-path loads to fill the caches before the squash.
fn gadget(wrong_path_lines: &[u64], trigger_line: u64) -> Program {
    let mut b = ProgramBuilder::new("spectre_gadget");
    let r_trig = Reg(2);
    let r_cond = Reg(3);
    let r_sink = Reg(5);
    let r_addr = Reg(6);
    b.movi(r_trig, trigger_line * 64);
    b.load(r_cond, r_trig, 0); // slow cold load delays resolution
    b.alu(r_cond, AluOp::Mul, Operand::Reg(r_cond), Operand::Imm(0));
    b.alu(r_cond, AluOp::Add, Operand::Reg(r_cond), Operand::Imm(1));
    let br = b.branch(r_cond, BranchCond::NotZero, 0);
    for &line in wrong_path_lines {
        b.movi(r_addr, line * 64);
        b.load(r_sink, r_addr, 0);
    }
    let skip = b.here();
    b.patch_branch(br, skip);
    b.halt();
    b.build()
}

/// Runs the gadget under `mode` with a ring and an audit sink attached;
/// returns (event records, audit report).
fn run_traced(
    mode: SecurityMode,
    wrong: &[u64],
) -> (
    Vec<cleanupspec_obs::EventRecord>,
    cleanupspec_obs::AuditReport,
) {
    let ring = Shared::new(RingSink::new(100_000));
    let audit = Shared::new(LeakageAuditSink::new());
    let mut sim = SimBuilder::new(mode)
        .program(gadget(wrong, 0x8001))
        .seed(0x5eed)
        .sink(Box::new(ring.clone()))
        .sink(Box::new(audit.clone()))
        .build();
    sim.run(RunLimits {
        max_cycles: 200_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    sim.drain(2_000);
    sim.finish_observer();
    (ring.with(|s| s.to_vec()), audit.with(|a| a.report()))
}

#[test]
fn squash_is_followed_by_matching_cleanup_events() {
    let wrong: Vec<u64> = vec![0x9000, 0x9100, 0x9200];
    let (records, report) = run_traced(SecurityMode::CleanupSpec, &wrong);

    // The mispredicted branch must surface as a squash event.
    let squash_at = records
        .iter()
        .position(|r| matches!(r.event, SimEvent::Squash { .. }))
        .expect("event stream must contain a squash");

    // The wrong-path loads fill the caches speculatively...
    let spec_fills: HashSet<u64> = records
        .iter()
        .filter_map(|r| match r.event {
            SimEvent::Fill {
                line, spec: true, ..
            } => Some(line),
            _ => None,
        })
        .collect();
    for w in &wrong {
        assert!(
            spec_fills.contains(w),
            "transient line {w:#x} never filled speculatively; \
             the gadget's delay chain is too short"
        );
    }

    // ...and after the squash, CleanupSpec must undo exactly those lines:
    // every cleanup-inval targets a transiently filled line, and every
    // transient line is cleaned up (invalidated, restored over, or its
    // fill dropped in flight).
    let mut cleaned: HashSet<u64> = HashSet::new();
    for r in &records[squash_at..] {
        match r.event {
            SimEvent::CleanupInval { line, .. } => {
                assert!(
                    spec_fills.contains(&line),
                    "cleanup-inval of {line:#x}, which was never \
                     speculatively filled"
                );
                cleaned.insert(line);
            }
            SimEvent::CleanupRestore { line, .. } => {
                cleaned.insert(line);
            }
            SimEvent::DroppedFill { line, .. } | SimEvent::SquashedLoad { line, .. } => {
                cleaned.insert(line);
            }
            _ => {}
        }
    }
    for w in &wrong {
        assert!(
            cleaned.contains(w),
            "transient line {w:#x} saw no cleanup action after the squash"
        );
    }

    // The trace must span the simulator's layers, not just one component.
    let layers: HashSet<&str> = records.iter().map(|r| r.event.layer().as_str()).collect();
    assert!(
        layers.len() >= 3,
        "expected events from >= 3 layers, got {layers:?}"
    );

    assert!(
        report.clean(),
        "CleanupSpec run must leave no auditable residue: {report}"
    );
}

#[test]
fn audit_flags_nonsecure_residue() {
    let wrong: Vec<u64> = vec![0x9000, 0x9100, 0x9200];
    let (records, report) = run_traced(SecurityMode::NonSecure, &wrong);
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, SimEvent::Squash { .. })),
        "baseline run must still squash the wrong path"
    );
    assert!(
        !report.clean(),
        "NonSecure leaves transient fills in the cache; the audit must \
         flag them"
    );
    // The residue it reports must be wrong-path lines.
    for residue in &report.residue {
        assert!(
            wrong.contains(&residue.line),
            "audit flagged {:#x}, which is not a wrong-path line",
            residue.line
        );
    }
}
