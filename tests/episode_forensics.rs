//! Episode-reconstruction integration tests: the [`EpisodeBuilder`] must
//! produce faithful, internally consistent episode records from *real*
//! simulator runs — including the awkward timelines: back-to-back
//! squashes, runs truncated mid-cleanup by `max_cycles`, livelocked runs,
//! and snapshot/restore forks that rewind through an open episode.
//!
//! The unit tests in `crates/obs/src/episode.rs` pin the ledger rules on
//! hand-written event sequences; these tests pin that the full pipeline →
//! hierarchy → scheme event stream actually satisfies those rules.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, Simulator};
use cleanupspec_core::isa::{AluOp, BranchCond, Operand, Program, ProgramBuilder, Reg};
use cleanupspec_core::system::{RunLimits, StopReason};
use cleanupspec_mem::fault::{FaultKind, FaultPlan};
use cleanupspec_mem::hierarchy::MemConfig;
use cleanupspec_obs::{EpisodeBuilder, EpisodeReport, EventSink, RingSink, Shared, SimEvent};
use cleanupspec_workloads::micro::mispredict_storm;

const LIMITS: RunLimits = RunLimits {
    max_cycles: 500_000,
    max_insts_per_core: u64::MAX,
    watchdog: None,
};

/// Spectre-style gadget: a slow cold load delays branch resolution long
/// enough for the wrong-path loads to fill the caches before the squash.
fn gadget(wrong_path_lines: &[u64], trigger_line: u64) -> Program {
    let mut b = ProgramBuilder::new("episode_gadget");
    let r_trig = Reg(2);
    let r_cond = Reg(3);
    let r_sink = Reg(5);
    let r_addr = Reg(6);
    b.movi(r_trig, trigger_line * 64);
    b.load(r_cond, r_trig, 0);
    b.alu(r_cond, AluOp::Mul, Operand::Reg(r_cond), Operand::Imm(0));
    b.alu(r_cond, AluOp::Add, Operand::Reg(r_cond), Operand::Imm(1));
    let br = b.branch(r_cond, BranchCond::NotZero, 0);
    for &line in wrong_path_lines {
        b.movi(r_addr, line * 64);
        b.load(r_sink, r_addr, 0);
    }
    let skip = b.here();
    b.patch_branch(br, skip);
    b.halt();
    b.build()
}

/// Builds a CleanupSpec sim for `prog` with an episode builder (and ring)
/// attached.
fn instrumented(prog: Program, seed: u64) -> (Simulator, Shared<EpisodeBuilder>, Shared<RingSink>) {
    let episodes = Shared::new(EpisodeBuilder::new());
    let ring = Shared::new(RingSink::new(200_000));
    let sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(prog)
        .seed(seed)
        .sink(Box::new(episodes.clone()))
        .sink(Box::new(ring.clone()))
        .build();
    (sim, episodes, ring)
}

/// Structural invariants every honest report satisfies, whatever the
/// timeline looked like: closed episodes span forward in time, counters
/// imply their prerequisites, and every attributed leak points at a
/// reconstructed episode.
fn check_consistency(r: &EpisodeReport) {
    for e in &r.episodes {
        assert!(e.squashes >= 1, "episode with no squash: {e:?}");
        if e.closed {
            assert!(e.end >= e.start, "closed episode runs backwards: {e:?}");
        }
        assert!(
            e.loads_issued <= e.loads,
            "more issued squashed loads than squashed loads: {e:?}"
        );
    }
    for l in &r.leaks {
        if l.episode != 0 {
            assert!(
                r.episodes
                    .iter()
                    .any(|e| e.core == l.core && e.id == l.episode),
                "leak attributed to an episode that was never reconstructed: {l}"
            );
        }
    }
}

#[test]
fn spectre_gadget_yields_one_balanced_episode() {
    let wrong = [0x9000, 0x9100, 0x9200];
    let (mut sim, episodes, ring) = instrumented(gadget(&wrong, 0x8001), 0x5eed);
    let stop = sim.run(LIMITS);
    assert_eq!(stop, StopReason::AllHalted);
    sim.drain(2_000);
    sim.finish_observer();

    let report = episodes.with(|e| e.report());
    check_consistency(&report);
    assert!(
        report.clean(),
        "CleanupSpec gadget run must balance: {report}"
    );
    assert_eq!(report.open_episodes(), 0);
    assert!(
        !report.episodes.is_empty(),
        "the squash must open an episode"
    );
    let e = &report.episodes[0];
    assert!(
        e.loads >= wrong.len() as u64,
        "all wrong-path loads recorded"
    );
    assert!(e.duration() > 0);
    assert!(
        e.invals + e.dropped_fills > 0,
        "cleanup must have undone the transient fills somehow: {e:?}"
    );

    // Live reconstruction == offline replay of the same event stream:
    // cs-report's trace-vs-direct byte-identity rests on this.
    let mut offline = EpisodeBuilder::new();
    ring.with(|r| {
        for rec in r.to_vec() {
            offline.record(rec.cycle, &rec.event);
        }
    });
    assert_eq!(offline.report(), report);

    // Every cleanup-related event in the trace is episode-tagged, and the
    // tag resolves to a reconstructed episode.
    ring.with(|r| {
        for rec in r.to_vec() {
            if let Some(id) = rec.event.episode() {
                if matches!(
                    rec.event,
                    SimEvent::Squash { .. }
                        | SimEvent::CleanupStart { .. }
                        | SimEvent::CleanupEnd { .. }
                        | SimEvent::CleanupInval { .. }
                        | SimEvent::CleanupRestore { .. }
                ) {
                    assert!(
                        report.episodes.iter().any(|e| e.id == id),
                        "event {:?} tagged with unreconstructed episode {id}",
                        rec.event
                    );
                }
            }
        }
    });
}

#[test]
fn back_to_back_squashes_reconstruct_disjoint_episodes() {
    let (mut sim, episodes, _ring) = instrumented(mispredict_storm(400, 3, 7), 0xA11);
    let stop = sim.run(LIMITS);
    assert_eq!(stop, StopReason::AllHalted);
    sim.drain(2_000);
    sim.finish_observer();

    let report = episodes.with(|e| e.report());
    check_consistency(&report);
    assert!(report.clean(), "storm run must balance: {report}");
    assert_eq!(report.open_episodes(), 0);
    assert!(
        report.episodes.len() >= 10,
        "a 400-iteration mispredict storm must squash repeatedly, got {}",
        report.episodes.len()
    );
    // Episode ids are per-core strictly monotonic, and their spans are
    // ordered: a later episode never *opens* before an earlier one did.
    for w in report.episodes.windows(2) {
        if w[0].core == w[1].core {
            assert!(w[0].id < w[1].id);
            assert!(w[0].start <= w[1].start);
        }
    }
}

/// Variant whose squash enters CleanupSpec's wait-for-inflight phase: an
/// older *correct-path* cold load is still outstanding when an
/// ALU-resolved branch mispredicts, so the squash (cycle ~20) and the
/// cleanup (cycle ~113, when the older load lands) are separated by a
/// wide window in which the episode is genuinely open.
fn wait_gadget(wrong: &[u64]) -> Program {
    let mut b = ProgramBuilder::new("wait_gadget");
    let (r_old, r_junk, r_cond, r_sink, r_addr) = (Reg(1), Reg(2), Reg(3), Reg(5), Reg(6));
    b.movi(r_old, 0x8002 * 64);
    b.load(r_junk, r_old, 0);
    b.movi(r_cond, 1);
    for _ in 0..16 {
        b.alu(r_cond, AluOp::Add, Operand::Reg(r_cond), Operand::Imm(0));
    }
    let br = b.branch(r_cond, BranchCond::NotZero, 0);
    for &line in wrong {
        b.movi(r_addr, line * 64);
        b.load(r_sink, r_addr, 0);
    }
    let skip = b.here();
    b.patch_branch(br, skip);
    b.halt();
    b.build()
}

/// Truncation: rerun the wait-phase gadget with `max_cycles` landing
/// strictly between the squash and its deferred cleanup. The report must
/// show the episode open — not closed, not dropped — with no invented
/// leaks for the still-in-flight undo.
#[test]
fn max_cycles_truncation_leaves_the_episode_open() {
    let wrong = [0x9000, 0x9100, 0x9200];
    // Discovery pass: find the squash→cleanup window of the episode.
    let (mut sim, episodes, _ring) = instrumented(wait_gadget(&wrong), 0x5eed);
    sim.run(LIMITS);
    sim.drain(2_000);
    sim.finish_observer();
    let full = episodes.with(|e| e.report());
    let first = full.episodes.first().expect("gadget produces an episode");
    assert!(
        first.cleanup_start > first.start + 2,
        "no wait-for-inflight window to truncate in: {first:?}"
    );
    let cut = (first.start + first.cleanup_start) / 2;

    // Truncated pass: same program, same seed, cycle budget mid-wait.
    let (mut sim, episodes, _ring) = instrumented(wait_gadget(&wrong), 0x5eed);
    let stop = sim.run(RunLimits {
        max_cycles: cut,
        ..LIMITS
    });
    assert_eq!(stop, StopReason::CycleLimit);
    sim.finish_observer();
    let report = episodes.with(|e| e.report());
    check_consistency(&report);
    assert!(
        report.open_episodes() >= 1,
        "the pending cleanup must surface as an open episode: {report}"
    );
    let open = report.episodes.iter().find(|e| !e.closed).unwrap();
    assert_eq!(open.duration(), 0, "open episodes report no duration");
    assert_eq!(open.start, first.start, "same squash as the full run");
    assert!(
        report.clean(),
        "in-flight undo state at the cycle limit is not residue: {report}"
    );
}

/// Livelock: the `leak-mshr-slot` fault wedges the core mid-run. The
/// builder must return a consistent report for the half-finished
/// timeline instead of panicking or inventing closed episodes.
#[test]
fn livelocked_run_reports_consistently() {
    let prog = cleanupspec_asm::assemble(
        "miss-loop",
        r"
        .reg r1 = 0x40000
        .reg r2 = 200
    loop:
        ld r3, [r1]
        clflush [r1]
        sub r2, r2, 1
        bne r2, loop
        halt
        ",
    )
    .unwrap();
    let episodes = Shared::new(EpisodeBuilder::new());
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(prog)
        .mem_config(MemConfig {
            mshrs_per_core: 4,
            ..MemConfig::default()
        })
        .fault_plan(FaultPlan::single(FaultKind::LeakMshrSlot))
        .sink(Box::new(episodes.clone()))
        .build();
    let stop = sim.run(RunLimits {
        watchdog: Some(5_000),
        ..LIMITS
    });
    assert!(matches!(stop, StopReason::Livelock(_)), "got {stop:?}");
    sim.finish_observer();
    check_consistency(&episodes.with(|e| e.report()));
}

/// Two gadgets back to back with a long arithmetic lull in between, so
/// there is a quiet window (episode 1 fully unwound, episode 2 not yet
/// speculating) to snapshot in.
fn double_gadget() -> Program {
    let mut b = ProgramBuilder::new("double_gadget");
    let (r_trig, r_cond, r_sink, r_addr) = (Reg(2), Reg(3), Reg(5), Reg(6));
    for (trigger, wrong) in [
        (0x8001u64, [0x9000u64, 0x9100, 0x9200]),
        (0x8003, [0xA000, 0xA100, 0xA200]),
    ] {
        b.movi(r_trig, trigger * 64);
        b.load(r_cond, r_trig, 0);
        b.alu(r_cond, AluOp::Mul, Operand::Reg(r_cond), Operand::Imm(0));
        b.alu(r_cond, AluOp::Add, Operand::Reg(r_cond), Operand::Imm(1));
        let br = b.branch(r_cond, BranchCond::NotZero, 0);
        for &line in &wrong {
            b.movi(r_addr, line * 64);
            b.load(r_sink, r_addr, 0);
        }
        let skip = b.here();
        b.patch_branch(br, skip);
        // The lull separating the episodes (and trailing the second one).
        for _ in 0..200 {
            b.alu(r_cond, AluOp::Add, Operand::Reg(r_cond), Operand::Imm(0));
        }
    }
    b.halt();
    b.build()
}

/// Snapshot/restore between episodes: fork the run in the quiet window
/// after episode 1, finish the original, rewind, and re-run the tail. The
/// builder sees both timelines plus the `SnapshotRestored` marker and
/// must converge on exactly the report of an uninterrupted run — episode
/// 1 kept once (not double-counted), episode 2 re-reconstructed from the
/// resumed timeline, no findings carried over from the abandoned fork.
#[test]
fn snapshot_restore_between_episodes_converges_on_the_straight_run() {
    // Straight run: the reference report.
    let (mut sim, episodes, _ring) = instrumented(double_gadget(), 0x5eed);
    sim.run(LIMITS);
    sim.drain(2_000);
    sim.finish_observer();
    let straight = episodes.with(|e| e.report());
    assert_eq!(straight.episodes.len(), 2, "{straight}");
    let (e1, e2) = (&straight.episodes[0], &straight.episodes[1]);
    assert!(
        e2.start > e1.end + 4,
        "no quiet window between the episodes: {e1:?} / {e2:?}"
    );
    let cut = (e1.end + e2.start) / 2;

    // Forked run: pause in the window, snapshot, finish, rewind, re-finish.
    let (mut sim, episodes, _ring) = instrumented(double_gadget(), 0x5eed);
    sim.run(RunLimits {
        max_cycles: cut,
        ..LIMITS
    });
    let snap = sim.snapshot();
    sim.run(LIMITS);
    sim.drain(2_000);
    sim.restore(&snap);
    sim.run(LIMITS);
    sim.drain(2_000);
    sim.finish_observer();
    let forked = episodes.with(|e| e.report());
    check_consistency(&forked);
    assert_eq!(
        forked, straight,
        "the post-restore timeline must reproduce the straight run"
    );
}
