//! Forward-progress watchdog regression tests.
//!
//! The watchdog turns a hung simulation into a diagnosable
//! [`StopReason::Livelock`]. The positive test manufactures a genuine
//! livelock with the `leak-mshr-slot` chaos fault (every completed miss
//! leaks its MSHR entry, so a cache-missing loop exhausts a small MSHR
//! file and the core retries a load forever); the negative test runs the
//! same program cleanly and must finish without tripping the watchdog.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_asm::assemble;
use cleanupspec_core::isa::Program;
use cleanupspec_core::system::{RunLimits, StopReason};
use cleanupspec_mem::fault::{FaultKind, FaultPlan};
use cleanupspec_mem::hierarchy::MemConfig;

const MSHRS: usize = 4;
const WATCHDOG: u64 = 5_000;

/// A loop whose every iteration misses the caches: load, flush, repeat.
/// Each miss allocates (and, under `leak-mshr-slot`, permanently loses)
/// one MSHR entry.
fn miss_loop() -> Program {
    assemble(
        "miss-loop",
        r"
        .reg r1 = 0x40000
        .reg r2 = 200
    loop:
        ld r3, [r1]
        clflush [r1]
        sub r2, r2, 1
        bne r2, loop
        halt
        ",
    )
    .unwrap()
}

fn mem_cfg() -> MemConfig {
    MemConfig {
        mshrs_per_core: MSHRS,
        ..MemConfig::default()
    }
}

fn limits() -> RunLimits {
    RunLimits {
        max_cycles: 2_000_000,
        max_insts_per_core: u64::MAX,
        watchdog: Some(WATCHDOG),
    }
}

#[test]
fn leaked_mshr_slots_trip_the_watchdog_with_a_diagnostic_dump() {
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(miss_loop())
        .mem_config(mem_cfg())
        .fault_plan(FaultPlan::single(FaultKind::LeakMshrSlot))
        .build();
    let stop = sim.run(limits());
    let StopReason::Livelock(dump) = stop else {
        panic!("expected livelock, got {stop:?}");
    };
    assert!(!dump.cores.is_empty(), "dump must carry per-core state");
    let c = &dump.cores[0];
    assert!(!c.halted, "the stuck core cannot have halted");
    assert_eq!(
        c.mshr_occupancy, MSHRS,
        "every MSHR entry should be leaked: {dump}"
    );
    assert!(c.rob_len > 0, "the core is stuck behind a ROB head: {dump}");
    assert!(
        c.rob_head.is_some(),
        "a non-empty ROB reports its head: {dump}"
    );
    assert!(
        dump.at - dump.last_commit_at >= WATCHDOG,
        "watchdog fired before its threshold: at={} last_commit={}",
        dump.at,
        dump.last_commit_at
    );
    // The livelock is an explicit failure in the report, too.
    let r = sim.report();
    let stop = r.stop.expect("report carries the stop reason");
    assert_eq!(stop.label(), "livelock");
    assert!(!stop.is_success());
}

#[test]
fn watchdog_does_not_false_positive_on_a_slow_but_live_run() {
    // Same memory-bound program, no fault: every iteration takes a DRAM
    // round trip but commits keep flowing, so the run must complete.
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(miss_loop())
        .mem_config(mem_cfg())
        .build();
    let stop = sim.run(limits());
    assert_eq!(stop, StopReason::AllHalted, "clean run must finish");
    let r = sim.report();
    assert!(r.stop.expect("stop recorded").is_success());
}
