//! Quickstart: build a small program, run it under the non-secure baseline
//! and under CleanupSpec, and compare the reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cleanupspec::prelude::*;

/// A little loop with a data-dependent branch and a streaming load — enough
/// to produce mispredictions, wrong-path loads, and cleanups.
fn demo_program() -> Program {
    use cleanupspec_suite::core_sim::isa::{AluOp, BranchCond, Operand};
    let mut b = ProgramBuilder::new("quickstart");
    let r_i = Reg(1);
    let r_lcg = Reg(2);
    let r_addr = Reg(3);
    let r_val = Reg(4);
    let r_stream = Reg(5);
    b.init_reg(r_i, 20_000);
    b.init_reg(r_lcg, 0x1234_5678_9abc_def1);
    let top = b.here();
    // Pseudo-random value drives a hard-to-predict branch.
    b.alu(
        r_lcg,
        AluOp::Mul,
        Operand::Reg(r_lcg),
        Operand::Imm(6364136223846793005u64 as i64),
    );
    b.alu(
        r_lcg,
        AluOp::Add,
        Operand::Reg(r_lcg),
        Operand::Imm(1442695040888963407u64 as i64),
    );
    b.alu(r_val, AluOp::Shr, Operand::Reg(r_lcg), Operand::Imm(61));
    let br = b.branch(r_val, BranchCond::NotZero, 0);
    // Fall-through block: a slowly streaming load (crosses into a new,
    // missing line every 8th execution), squashed when the branch above
    // mispredicts.
    b.alu(
        r_stream,
        AluOp::Add,
        Operand::Reg(r_stream),
        Operand::Imm(8),
    );
    b.alu(
        r_addr,
        AluOp::Add,
        Operand::Reg(r_stream),
        Operand::Imm(0x1000_0000),
    );
    b.load(r_val, r_addr, 0);
    let skip = b.here();
    b.patch_branch(br, skip);
    // Common path: two hot loads that always hit.
    b.alu(
        r_addr,
        AluOp::And,
        Operand::Reg(r_lcg),
        Operand::Imm(0x1FF8),
    );
    b.alu(
        r_addr,
        AluOp::Add,
        Operand::Reg(r_addr),
        Operand::Imm(0x10_0000),
    );
    b.load(r_val, r_addr, 0);
    b.alu(r_addr, AluOp::Shr, Operand::Reg(r_lcg), Operand::Imm(17));
    b.alu(
        r_addr,
        AluOp::And,
        Operand::Reg(r_addr),
        Operand::Imm(0x1FF8),
    );
    b.alu(
        r_addr,
        AluOp::Add,
        Operand::Reg(r_addr),
        Operand::Imm(0x20_0000),
    );
    b.load(r_val, r_addr, 0);
    b.alu(r_i, AluOp::Sub, Operand::Reg(r_i), Operand::Imm(1));
    b.branch(r_i, BranchCond::NotZero, top);
    b.halt();
    b.build()
}

fn main() {
    for mode in [SecurityMode::NonSecure, SecurityMode::CleanupSpec] {
        let mut sim = SimBuilder::new(mode).program(demo_program()).build();
        sim.run_to_completion();
        let r = sim.report();
        let s = &r.cores[0];
        println!("== {} ==", mode);
        println!("  cycles            : {}", r.cycles);
        println!("  instructions      : {}", s.committed_insts);
        println!("  IPC               : {:.2}", r.ipc());
        println!("  branch mispredicts: {}", s.mispredicts);
        println!("  squashes          : {}", s.squashes);
        println!("  squashed loads    : {}", s.squashed_loads());
        println!("  L1 miss rate      : {:.2}%", r.mem.l1_miss_rate() * 100.0);
        println!("  cleanup invals    : {}", r.mem.cleanup_invals);
        println!("  cleanup restores  : {}", r.mem.cleanup_restores);
        println!("  dropped fills     : {}", r.mem.dropped_fills);
        println!();
    }
    println!("CleanupSpec pays only on mis-speculation: the cycle gap is the");
    println!("squash-time stall (waiting out inflight correct-path loads, then");
    println!("dropping or undoing the wrong-path ones). This demo mispredicts");
    println!("~12x per kilo-instruction — astar-like, near the paper's worst case.");
}
