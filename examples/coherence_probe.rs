//! The coherence-downgrade side channel (Section 3.5) on a multi-core
//! system: core 0 keeps a line Modified; core 1 transiently loads it on the
//! wrong path. Without protection the load downgrades core 0's line
//! (observable); with CleanupSpec the speculative GetS-Safe is refused and
//! retried only if the load turns out to be on the correct path.
//!
//! ```sh
//! cargo run --release --example coherence_probe
//! ```

use cleanupspec::modes::SecurityMode;
use cleanupspec_suite::workloads::attacks::coherence_probe;

fn main() {
    println!("Transient cross-core load of a remote Modified line:\n");
    println!(
        "{:<20} {:>18} {:>16} {:>14}",
        "mode", "owner keeps M/E?", "GetS-Safe NACKs", "downgrades"
    );
    println!("{}", "-".repeat(72));
    for mode in [
        SecurityMode::NonSecure,
        SecurityMode::CleanupSpec,
        SecurityMode::NaiveInvalidate,
        SecurityMode::InvisiSpecInitial,
    ] {
        let r = coherence_probe(mode, 42);
        println!(
            "{:<20} {:>18} {:>16} {:>14}",
            mode.name(),
            if r.owner_kept_writable {
                "yes (safe)"
            } else {
                "NO (leak)"
            },
            r.gets_safe_refusals,
            r.remote_hits,
        );
    }
    println!();
    println!("A downgraded owner answers its next store with an upgrade request");
    println!("— a latency difference the paper cites from Yao et al. (HPCA'18).");
    println!("CleanupSpec's GetS-Safe refuses the transient downgrade outright;");
    println!("InvisiSpec's invisible loads never touch coherence state either.");
}
