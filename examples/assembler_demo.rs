//! Write a transient-execution gadget in assembly, run it under CleanupSpec
//! with event tracing enabled, and print both the trace timeline and the
//! JSON report — the full observability surface in one example.
//!
//! ```sh
//! cargo run --release --example assembler_demo
//! ```

use cleanupspec::json::report_to_json;
use cleanupspec::prelude::*;
use cleanupspec_suite::asm::{assemble, disassemble};

const GADGET: &str = r"
    ; a single-shot wrong-path load: the branch is actually taken (skipping
    ; the load) but a cold predictor falls through into it transiently.
    .reg r4 = 0x123400          ; transient target
    movi r2, 0x777040           ; cold trigger line
    ld r3, [r2]                 ; slow: delays branch resolution
    mul r3, r3, 0
    add r3, r3, 1
    bne r3, skip                ; actually taken; predicted not-taken
    ld r5, [r4]                 ; transient install -> undone by CleanupSpec
skip:
    halt
";

fn main() {
    let program = assemble("gadget.s", GADGET).expect("valid assembly");
    println!(
        "== disassembly (round-tripped) ==\n{}",
        disassemble(&program)
    );

    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(program)
        .build();
    sim.system_mut().core_mut(0).enable_trace(256);
    sim.run(RunLimits {
        max_cycles: 100_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    sim.drain(1_000);

    println!("== pipeline trace ==");
    print!("{}", sim.system().core(0).trace().expect("enabled").dump());

    let line = Addr::new(0x123400).line();
    println!(
        "\ntransient line in L1 after cleanup: {}",
        sim.mem().l1(CoreId(0)).probe(line).is_some()
    );
    println!(
        "transient line in L2 after cleanup: {}",
        sim.mem().l2().probe(line).is_some()
    );

    println!("\n== JSON report ==");
    println!("{}", report_to_json(&sim.report()));
}
