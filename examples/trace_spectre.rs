//! Attach the event bus to a Spectre-V1 run: dump the transient episode
//! from the ring buffer, audit it for speculative residue, and print the
//! load-latency histograms — under CleanupSpec and the insecure baseline.
//!
//! ```sh
//! cargo run --release --example trace_spectre
//! ```
//!
//! For Perfetto/JSONL export and arbitrary programs, use the CLI instead:
//! `cargo run --release -p cleanupspec-bench --bin cs-trace -- --help`.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_obs::{LeakageAuditSink, PathKind, RingSink, Shared};
use cleanupspec_suite::core_sim::system::RunLimits;
use cleanupspec_suite::workloads::attacks::{spectre_v1_program, SpectreConfig};

fn main() {
    for mode in [SecurityMode::CleanupSpec, SecurityMode::NonSecure] {
        println!("=== {} ===", mode.name());

        // Keep handles to the sinks so we can inspect them afterwards.
        let ring = Shared::new(RingSink::new(10_000));
        let audit = Shared::new(LeakageAuditSink::new());
        let mut sim = SimBuilder::new(mode)
            .program(spectre_v1_program(&SpectreConfig::default()))
            .sink(Box::new(ring.clone()))
            .sink(Box::new(audit.clone()))
            .build();
        sim.run(RunLimits {
            max_cycles: 2_000_000,
            max_insts_per_core: 50_000,
            ..RunLimits::default()
        });
        sim.drain(2_000); // let in-flight fills land before auditing
        sim.finish_observer();

        // The speculation-relevant slice of the event stream.
        println!("-- squash/cleanup events --");
        for r in ring.with(|s| s.to_vec()) {
            if matches!(r.event.layer().as_str(), "cleanup") || r.event.kind().starts_with("squash")
            {
                println!("c{:>7} {}", r.cycle, r.event);
            }
        }

        // Latency histograms recorded by the memory hierarchy.
        let report = sim.report();
        println!("-- load latency by path --");
        for path in PathKind::ALL {
            let h = &report.mem.load_latency[path.index()];
            if h.count() > 0 {
                println!(
                    "  {:<10} n={:<6} mean={:>6.1}  p50={:>4}  p99={:>4}  max={:>4}",
                    path.as_str(),
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max()
                );
            }
        }

        // The undo invariant, checked from events alone.
        println!("{}\n", audit.with(|a| a.report()));
    }
}
