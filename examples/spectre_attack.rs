//! End-to-end Spectre Variant-1 attack under every security mode: trains
//! the bounds check, transiently reads a secret, transmits it through the
//! cache, and tries to infer it with Flush+Reload-style timed probes.
//!
//! ```sh
//! cargo run --release --example spectre_attack
//! ```

use cleanupspec::modes::SecurityMode;
use cleanupspec_suite::workloads::attacks::run_spectre_v1;

fn main() {
    let iters = 10;
    println!("Spectre V1 PoC, {iters} attack iterations per mode\n");
    println!(
        "{:<20} {:>8} {:>14} {:>22}",
        "mode", "leaked?", "secret lat.", "benign(1..5) lat."
    );
    println!("{}", "-".repeat(68));
    for mode in [
        SecurityMode::NonSecure,
        SecurityMode::CleanupSpec,
        SecurityMode::NaiveInvalidate,
        SecurityMode::InvisiSpecInitial,
        SecurityMode::InvisiSpecRevised,
        SecurityMode::DelaySpeculativeLoads,
    ] {
        let r = run_spectre_v1(mode, iters, 0xdead);
        let benign_avg: f64 = (1..=5).map(|i| r.avg_latency[i]).sum::<f64>() / 5.0;
        println!(
            "{:<20} {:>8} {:>11.1}cyc {:>19.1}cyc",
            mode.name(),
            if r.leaked() { "LEAKED" } else { "safe" },
            r.avg_latency[r.secret as usize],
            benign_avg,
        );
    }
    println!();
    println!("The secret index reloads fast (cache hit) only on the insecure");
    println!("baseline. Defenses keep the benign, correctly-speculated indices");
    println!("cached — CleanupSpec costs nothing on the correct path.");
}
