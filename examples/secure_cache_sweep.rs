//! Sensitivity sweep: how does CleanupSpec's slowdown scale with the two
//! workload characteristics the paper identifies — branch misprediction
//! rate and L1 miss rate? Prints a slowdown grid (CleanupSpec vs
//! non-secure) over a parameter plane of synthetic workloads.
//!
//! ```sh
//! cargo run --release --example secure_cache_sweep
//! ```

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_suite::workloads::spec::SpecWorkload;

fn run(mode: SecurityMode, w: &SpecWorkload, insts: u64) -> f64 {
    let mut sim = SimBuilder::new(mode).program(w.build(7)).build();
    sim.run_with_warmup(insts / 4, insts);
    let r = sim.report();
    r.cycles as f64 / r.total_insts().max(1) as f64
}

fn main() {
    let insts: u64 = 120_000;
    let mispredicts = [0.0, 0.02, 0.05, 0.10, 0.15];
    let misses = [0.002, 0.01, 0.03, 0.08];
    println!("CleanupSpec slowdown (%) over (mispredict rate x L1 miss rate)");
    println!("rows: branch mispredict target; cols: L1 miss target\n");
    print!("{:>10}", "");
    for m in misses {
        print!("{:>9.1}%", m * 100.0);
    }
    println!();
    for bp in mispredicts {
        print!("{:>9.1}%", bp * 100.0);
        for m in misses {
            let w = SpecWorkload {
                name: "sweep",
                paper_mispredict: bp,
                paper_l1_miss: m,
                dram_share: 0.3,
                mul_chain: 2,
                alu_pad: 4,
            };
            let base = run(SecurityMode::NonSecure, &w, insts);
            let cusp = run(SecurityMode::CleanupSpec, &w, insts);
            print!("{:>9.1}%", (cusp / base - 1.0) * 100.0);
        }
        println!();
    }
    println!();
    println!("Slowdown grows along BOTH axes — squash frequency sets how often");
    println!("cleanup runs, and the miss rate sets how much there is to undo —");
    println!("reproducing the Figure 12 discussion (astar vs sphinx3 vs libq).");
}
