//! Umbrella crate for the CleanupSpec reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the [`cleanupspec`] crate for the main API.

pub use cleanupspec;
pub use cleanupspec_asm as asm;
pub use cleanupspec_core as core_sim;
pub use cleanupspec_mem as mem;
pub use cleanupspec_workloads as workloads;
