//! `cs-smith`: seeded random micro-ISA program generation for the
//! differential fuzzing harness.
//!
//! A [`SmithPlan`] is a structured, shrinkable description of a workload:
//! a counted loop over a list of [`SmithOp`]s, optionally paired with a
//! second-core sharer program. [`plan`] draws one deterministically from a
//! seed; [`assemble_plan`] lowers it to [`Program`]s. The split matters:
//! the shrinker in `cleanupspec-bench` minimizes failing seeds by deleting
//! plan-level ops (never raw instructions), so every shrunk candidate is
//! still a well-formed loop with patched branch targets.
//!
//! The generator is biased toward the cases where undo-style schemes
//! break: **guaranteed-mispredicted branches guarding loads** (a cold
//! trigger load feeding an always-taken branch, predicted not-taken on the
//! first encounter), **store-to-load forwarding across squashes**,
//! **clflush**, **aliasing loads** that gang up on one L1 set, and
//! **cross-core sharing** where a wrong path reads another core's lines.
//!
//! Determinism rules baked into every plan:
//! * each core writes only its private region, so multi-core runs have
//!   architecturally deterministic memory regardless of interleaving;
//! * shared and cross-core lines are only *read* on correct paths, and
//!   wrong-path bodies may do anything (they never commit);
//! * only assembler-round-trippable instruction forms are emitted (`movi`
//!   and register-first ALU ops), so shrunk repros can be written out as
//!   `.s` files and replayed exactly.

use cleanupspec_core::isa::{AluOp, BranchCond, Operand, Pc, Program, ProgramBuilder, Reg};
use cleanupspec_mem::rng::{mix64, SplitMix64};

/// Base address of a core's private read-write region.
pub fn priv_base(core: usize) -> u64 {
    0x5_0000 + core as u64 * 0x1_0000
}

/// Base address of the shared read-only region.
pub const SHARED_BASE: u64 = 0x8_0000;

/// Base address of the per-block branch-trigger lines (read once, cold).
pub const TRIG_BASE: u64 = 0xA_0000;

/// Base address of the L1-set-aliasing region. Consecutive ways are
/// `ALIAS_STRIDE` apart: with 64-byte lines that is 128 lines, which lands
/// in the same set for any power-of-two L1 with at most 128 sets (the
/// paper's 64 KB / 8-way L1 included).
pub const ALIAS_BASE: u64 = 0x20_0000;
/// Byte stride between aliasing ways.
pub const ALIAS_STRIDE: u64 = 0x2000;

/// Word slots per private region.
pub const PRIV_SLOTS: u64 = 256;
/// Word slots in the shared region.
pub const SHARED_SLOTS: u64 = 64;

/// One operation inside a guaranteed-wrong-path block. These execute
/// transiently and are squashed, so they may be adversarial: read other
/// cores' lines, thrash an aliasing set, flush, forward.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WrongOp {
    /// Load a private slot of the running core (transient install).
    LoadPriv {
        /// Destination register index.
        dst: u8,
        /// Word slot in the private region.
        slot: u64,
    },
    /// Load a shared-region slot.
    LoadShared {
        /// Destination register index.
        dst: u8,
        /// Word slot in the shared region.
        slot: u64,
    },
    /// Load the *other* core's private region (cross-core transient read;
    /// lowered to a shared-region load in single-core plans).
    LoadOther {
        /// Destination register index.
        dst: u8,
        /// Word slot in the other core's private region.
        slot: u64,
    },
    /// Load one way of the aliasing set (same L1 set, distinct tags).
    LoadAlias {
        /// Destination register index.
        dst: u8,
        /// Aliasing way (multiplies [`ALIAS_STRIDE`]).
        way: u64,
    },
    /// Store then immediately load the same private word: store-to-load
    /// forwarding inside a to-be-squashed window. The store never commits.
    StoreFwd {
        /// Word slot in the private region.
        slot: u64,
    },
    /// Wrong-path `clflush` of a private line (must be delayed past the
    /// squash and then dropped, per Section 3.5).
    Flush {
        /// Word slot in the private region.
        slot: u64,
    },
}

/// One top-level (correct-path) operation of the loop body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SmithOp {
    /// Register-first ALU op `dst = dst <op> (src or imm)`.
    Alu {
        /// Destination (and first source) register index.
        dst: u8,
        /// Operation.
        op: AluOp,
        /// Second-source register index.
        src: u8,
        /// Immediate mixed in via the second source when `use_imm`.
        imm: i64,
        /// Whether the second source is `imm` instead of `src`.
        use_imm: bool,
    },
    /// Load a private slot.
    LoadPriv {
        /// Destination register index.
        dst: u8,
        /// Word slot.
        slot: u64,
    },
    /// Store a register to a private slot.
    StorePriv {
        /// Source register index.
        src: u8,
        /// Word slot.
        slot: u64,
    },
    /// Load a shared-region slot (read-only on correct paths).
    LoadShared {
        /// Destination register index.
        dst: u8,
        /// Word slot.
        slot: u64,
    },
    /// Store then load the same private word (committed forwarding pair).
    StoreLoadFwd {
        /// Stored register index.
        src: u8,
        /// Destination register index of the load-back.
        dst: u8,
        /// Word slot.
        slot: u64,
    },
    /// Data-dependent forward branch over the next `skip` ops — the
    /// classic mispredicted-branch-guards-loads shape.
    SkipIf {
        /// Condition register index.
        reg: u8,
        /// Branch when zero (else when non-zero).
        on_zero: bool,
        /// Number of following top-level ops to skip.
        skip: u8,
    },
    /// Committed `clflush` of a private line.
    Flush {
        /// Word slot.
        slot: u64,
    },
    /// Memory fence.
    Fence,
    /// A guaranteed-mispredicted block: a cold trigger load feeds an
    /// always-taken branch, so the body below it executes exactly once as
    /// a wrong path and is squashed.
    WrongPath {
        /// Transient body.
        body: Vec<WrongOp>,
        /// Re-flush the trigger line afterwards so the guard load misses
        /// again on the next loop iteration.
        reflush_trigger: bool,
    },
}

/// A complete shrinkable workload description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SmithPlan {
    /// Generating seed (kept for labeling; the ops are already drawn).
    pub seed: u64,
    /// Loop iterations of core 0's body.
    pub iters: u64,
    /// Number of cores (1 or 2).
    pub cores: usize,
    /// Core 0's loop body.
    pub ops: Vec<SmithOp>,
}

const DATA_REGS: std::ops::Range<u64> = 2..12; // r2..r11 hold live data
const WRONG_REGS: std::ops::Range<u64> = 12..16; // r12..r15: wrong-path dsts
const R_COUNT: Reg = Reg(1); // loop counter
const R_ADDR: Reg = Reg(30); // address scratch
const R_TRIG: Reg = Reg(29); // trigger-gadget condition

fn data_reg(rng: &mut SplitMix64) -> u8 {
    (DATA_REGS.start + rng.below(DATA_REGS.end - DATA_REGS.start)) as u8
}

fn wrong_reg(rng: &mut SplitMix64) -> u8 {
    (WRONG_REGS.start + rng.below(WRONG_REGS.end - WRONG_REGS.start)) as u8
}

fn gen_wrong_op(rng: &mut SplitMix64) -> WrongOp {
    match rng.below(8) {
        0 | 1 => WrongOp::LoadPriv {
            dst: wrong_reg(rng),
            slot: rng.below(PRIV_SLOTS),
        },
        2 => WrongOp::LoadShared {
            dst: wrong_reg(rng),
            slot: rng.below(SHARED_SLOTS),
        },
        3 => WrongOp::LoadOther {
            dst: wrong_reg(rng),
            slot: rng.below(PRIV_SLOTS),
        },
        4 | 5 => WrongOp::LoadAlias {
            dst: wrong_reg(rng),
            way: rng.below(12),
        },
        6 => WrongOp::StoreFwd {
            slot: rng.below(PRIV_SLOTS),
        },
        _ => WrongOp::Flush {
            slot: rng.below(PRIV_SLOTS),
        },
    }
}

const ALU_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Shl,
    AluOp::Shr,
];

fn gen_op(rng: &mut SplitMix64) -> SmithOp {
    match rng.below(20) {
        0..=3 => SmithOp::Alu {
            dst: data_reg(rng),
            op: ALU_OPS[rng.below(8) as usize],
            src: data_reg(rng),
            imm: rng.below(64) as i64 + 1,
            use_imm: rng.below(2) == 0,
        },
        4..=6 => SmithOp::LoadPriv {
            dst: data_reg(rng),
            slot: rng.below(PRIV_SLOTS),
        },
        7 | 8 => SmithOp::StorePriv {
            src: data_reg(rng),
            slot: rng.below(PRIV_SLOTS),
        },
        9 => SmithOp::LoadShared {
            dst: data_reg(rng),
            slot: rng.below(SHARED_SLOTS),
        },
        10 | 11 => SmithOp::StoreLoadFwd {
            src: data_reg(rng),
            dst: data_reg(rng),
            slot: rng.below(PRIV_SLOTS),
        },
        12..=14 => SmithOp::SkipIf {
            reg: data_reg(rng),
            on_zero: rng.below(2) == 0,
            skip: (1 + rng.below(4)) as u8,
        },
        15 => SmithOp::Flush {
            slot: rng.below(PRIV_SLOTS),
        },
        16 => SmithOp::Fence,
        _ => SmithOp::WrongPath {
            body: (0..1 + rng.below(4)).map(|_| gen_wrong_op(rng)).collect(),
            reflush_trigger: rng.below(2) == 0,
        },
    }
}

/// Draws the plan for `seed`. Same seed, same plan, forever — the plan is
/// the unit of replay and shrinking.
pub fn plan(seed: u64) -> SmithPlan {
    let mut rng = SplitMix64::new(mix64(seed ^ 0x5111_7400_0000_0001));
    let n = 4 + rng.below(14) as usize;
    let ops = (0..n).map(|_| gen_op(&mut rng)).collect();
    SmithPlan {
        seed,
        iters: 2 + rng.below(5),
        cores: if rng.below(4) == 0 { 2 } else { 1 },
        ops,
    }
}

fn emit_addr(b: &mut ProgramBuilder, addr: u64) {
    b.movi(R_ADDR, addr);
}

fn emit_wrong_op(b: &mut ProgramBuilder, core: usize, cores: usize, op: &WrongOp) {
    match *op {
        WrongOp::LoadPriv { dst, slot } => {
            emit_addr(b, priv_base(core) + slot * 8);
            b.load(Reg(dst), R_ADDR, 0);
        }
        WrongOp::LoadShared { dst, slot } => {
            emit_addr(b, SHARED_BASE + slot * 8);
            b.load(Reg(dst), R_ADDR, 0);
        }
        WrongOp::LoadOther { dst, slot } => {
            // In a single-core plan there is no other core; read shared.
            let base = if cores > 1 {
                priv_base(1 - core)
            } else {
                SHARED_BASE
            };
            let slot = if cores > 1 { slot } else { slot % SHARED_SLOTS };
            emit_addr(b, base + slot * 8);
            b.load(Reg(dst), R_ADDR, 0);
        }
        WrongOp::LoadAlias { dst, way } => {
            emit_addr(b, ALIAS_BASE + way * ALIAS_STRIDE);
            b.load(Reg(dst), R_ADDR, 0);
        }
        WrongOp::StoreFwd { slot } => {
            emit_addr(b, priv_base(core) + slot * 8);
            b.store(Reg(2), R_ADDR, 0);
            b.load(Reg(13), R_ADDR, 0);
        }
        WrongOp::Flush { slot } => {
            emit_addr(b, priv_base(core) + slot * 8);
            b.clflush(R_ADDR, 0);
        }
    }
}

/// Emits one top-level op. `trig_idx` numbers wrong-path blocks so each
/// gets its own cold trigger line.
fn emit_op(b: &mut ProgramBuilder, p: &SmithPlan, op: &SmithOp, trig_idx: &mut u64) {
    match op {
        SmithOp::Alu {
            dst,
            op,
            src,
            imm,
            use_imm,
        } => {
            let second = if *use_imm {
                Operand::Imm(*imm)
            } else {
                Operand::Reg(Reg(*src))
            };
            b.alu(Reg(*dst), *op, Operand::Reg(Reg(*dst)), second);
        }
        SmithOp::LoadPriv { dst, slot } => {
            emit_addr(b, priv_base(0) + slot * 8);
            b.load(Reg(*dst), R_ADDR, 0);
        }
        SmithOp::StorePriv { src, slot } => {
            emit_addr(b, priv_base(0) + slot * 8);
            b.store(Reg(*src), R_ADDR, 0);
        }
        SmithOp::LoadShared { dst, slot } => {
            emit_addr(b, SHARED_BASE + slot * 8);
            b.load(Reg(*dst), R_ADDR, 0);
        }
        SmithOp::StoreLoadFwd { src, dst, slot } => {
            emit_addr(b, priv_base(0) + slot * 8);
            b.store(Reg(*src), R_ADDR, 0);
            b.load(Reg(*dst), R_ADDR, 0);
        }
        SmithOp::SkipIf { .. } => unreachable!("SkipIf handled by the body loop"),
        SmithOp::Flush { slot } => {
            emit_addr(b, priv_base(0) + slot * 8);
            b.clflush(R_ADDR, 0);
        }
        SmithOp::Fence => {
            b.fence();
        }
        SmithOp::WrongPath {
            body,
            reflush_trigger,
        } => {
            let trig = TRIG_BASE + *trig_idx * 64;
            *trig_idx += 1;
            // Cold load -> x0 -> +1 -> always-taken branch, predicted
            // not-taken on first sight: the body below runs transiently.
            emit_addr(b, trig);
            b.load(R_TRIG, R_ADDR, 0);
            b.alu(R_TRIG, AluOp::Mul, Operand::Reg(R_TRIG), Operand::Imm(0));
            b.alu(R_TRIG, AluOp::Add, Operand::Reg(R_TRIG), Operand::Imm(1));
            let guard = b.branch(R_TRIG, BranchCond::NotZero, 0);
            for w in body {
                emit_wrong_op(b, 0, p.cores, w);
            }
            let after = b.here();
            b.patch_branch(guard, after);
            if *reflush_trigger {
                emit_addr(b, trig);
                b.clflush(R_ADDR, 0);
            }
        }
    }
}

/// Lowers a plan to one program per core.
pub fn assemble_plan(p: &SmithPlan) -> Vec<Program> {
    let mut b = ProgramBuilder::new("smith");
    b.init_reg(R_COUNT, p.iters);
    for r in DATA_REGS {
        b.init_reg(Reg(r as u8), mix64(p.seed ^ r) | 1);
    }
    let top = b.here();
    // (branch pc, ops left before the skip target) — reference_model.rs's
    // forward-skip patching, at op granularity so targets never land
    // inside a wrong-path body.
    let mut pending: Vec<(Pc, usize)> = Vec::new();
    let mut trig_idx = 0u64;
    for op in &p.ops {
        let here = b.here();
        pending.retain_mut(|(bpc, left)| {
            if *left == 0 {
                b.patch_branch(*bpc, here);
                false
            } else {
                *left -= 1;
                true
            }
        });
        if let SmithOp::SkipIf { reg, on_zero, skip } = op {
            let cond = if *on_zero {
                BranchCond::Zero
            } else {
                BranchCond::NotZero
            };
            let at = b.branch(Reg(*reg), cond, 0);
            pending.push((at, *skip as usize));
        } else {
            emit_op(&mut b, p, op, &mut trig_idx);
        }
    }
    let end = b.here();
    for (bpc, _) in &pending {
        b.patch_branch(*bpc, end);
    }
    b.alu(R_COUNT, AluOp::Sub, Operand::Reg(R_COUNT), Operand::Imm(1));
    b.branch(R_COUNT, BranchCond::NotZero, top);
    b.halt();
    let mut progs = vec![b.build()];
    if p.cores == 2 {
        progs.push(sharer_program(p.seed));
    }
    progs
}

/// The second core's program: a small loop that reads the shared region
/// and reads/writes its own private region, giving core 0's wrong paths
/// remotely-owned lines to poke at.
fn sharer_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(mix64(seed ^ 0x54A4_E400_0000_0002));
    let mut b = ProgramBuilder::new("smith-sharer");
    b.init_reg(R_COUNT, 3 + rng.below(4));
    b.init_reg(Reg(2), mix64(seed) | 1);
    let top = b.here();
    for _ in 0..2 + rng.below(4) {
        match rng.below(3) {
            0 => {
                b.movi(R_ADDR, SHARED_BASE + rng.below(SHARED_SLOTS) * 8);
                b.load(Reg(3), R_ADDR, 0);
                b.alu(
                    Reg(2),
                    AluOp::Add,
                    Operand::Reg(Reg(2)),
                    Operand::Reg(Reg(3)),
                );
            }
            1 => {
                b.movi(R_ADDR, priv_base(1) + rng.below(PRIV_SLOTS) * 8);
                b.store(Reg(2), R_ADDR, 0);
            }
            _ => {
                b.movi(R_ADDR, priv_base(1) + rng.below(PRIV_SLOTS) * 8);
                b.load(Reg(4), R_ADDR, 0);
                b.alu(
                    Reg(2),
                    AluOp::Xor,
                    Operand::Reg(Reg(2)),
                    Operand::Reg(Reg(4)),
                );
            }
        }
    }
    b.alu(R_COUNT, AluOp::Sub, Operand::Reg(R_COUNT), Operand::Imm(1));
    b.branch(R_COUNT, BranchCond::NotZero, top);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanupspec_core::reference::interpret;

    #[test]
    fn plans_are_deterministic() {
        for s in 0..50 {
            assert_eq!(plan(s), plan(s));
            let a = assemble_plan(&plan(s));
            let b = assemble_plan(&plan(s));
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.insts(), y.insts());
            }
        }
    }

    #[test]
    fn generated_programs_terminate_on_the_reference() {
        for s in 0..200 {
            let p = plan(s);
            for prog in assemble_plan(&p) {
                let r = interpret(&prog, 500_000);
                assert!(r.halted, "seed {s} must halt");
            }
        }
    }

    #[test]
    fn generator_hits_the_hard_cases() {
        let (mut wrong, mut fwd, mut flush, mut multi) = (0, 0, 0, 0);
        for s in 0..100 {
            let p = plan(s);
            if p.cores == 2 {
                multi += 1;
            }
            for op in &p.ops {
                match op {
                    SmithOp::WrongPath { .. } => wrong += 1,
                    SmithOp::StoreLoadFwd { .. } => fwd += 1,
                    SmithOp::Flush { .. } => flush += 1,
                    _ => {}
                }
            }
        }
        assert!(wrong > 20, "wrong-path blocks are the point: {wrong}");
        assert!(fwd > 10, "forwarding pairs: {fwd}");
        assert!(flush > 0, "clflush ops: {flush}");
        assert!(multi > 5, "two-core plans: {multi}");
    }

    #[test]
    fn programs_roundtrip_through_the_assembler() {
        for s in 0..50 {
            for prog in assemble_plan(&plan(s)) {
                let text = cleanupspec_asm::disassemble(&prog);
                let back = cleanupspec_asm::assemble("rt", &text).expect("reassembles");
                assert_eq!(prog.insts(), back.insts(), "seed {s}");
                assert_eq!(prog.init_regs, back.init_regs, "seed {s}");
            }
        }
    }
}
