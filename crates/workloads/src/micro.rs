//! Deterministic microbenchmark kernels used by tests, ablation benches,
//! and the quickstart example.

use cleanupspec_core::isa::{AluOp, BranchCond, Operand, Program, ProgramBuilder, Reg};

/// A program issuing `n` independent loads with `stride` bytes between
/// them, starting at `base`.
pub fn load_stream(base: u64, stride: u64, n: usize) -> Program {
    let mut b = ProgramBuilder::new("load-stream");
    let r_a = Reg(1);
    let r_s = Reg(2);
    b.init_reg(r_a, base);
    for _ in 0..n {
        b.load(r_s, r_a, 0);
        b.alu(
            r_a,
            AluOp::Add,
            Operand::Reg(r_a),
            Operand::Imm(stride as i64),
        );
    }
    b.halt();
    b.build()
}

/// A pointer-chase: each load's address depends on the previous load's
/// value. `init_mem` is pre-linked so the chain walks `n` nodes spaced
/// `stride` bytes apart from `base`. Fully serializing — useful for
/// latency measurement.
pub fn pointer_chase(base: u64, stride: u64, n: usize) -> Program {
    let mut b = ProgramBuilder::new("pointer-chase");
    let r_p = Reg(1);
    let r_n = Reg(2);
    b.init_reg(r_p, base);
    for i in 0..n {
        let here = base + i as u64 * stride;
        let next = base + ((i + 1) % n) as u64 * stride;
        b.init_mem(cleanupspec_mem::types::Addr::new(here), next);
    }
    b.init_reg(r_n, n as u64);
    let top = b.here();
    b.load(r_p, r_p, 0);
    b.alu(r_n, AluOp::Sub, Operand::Reg(r_n), Operand::Imm(1));
    b.branch(r_n, BranchCond::NotZero, top);
    b.halt();
    b.build()
}

/// A mispredict storm: a loop whose conditional branch outcome alternates
/// with a period the predictor cannot learn (outcomes from a planted
/// random table), each mispredict squashing a block with `block_loads`
/// wrong-path loads.
pub fn mispredict_storm(iters: u64, block_loads: usize, seed: u64) -> Program {
    use cleanupspec_mem::rng::mix64;
    let outcome_base = 0x0070_0000u64;
    let words = 1024u64;
    let mut b = ProgramBuilder::new("mispredict-storm");
    for i in 0..words {
        b.init_mem(
            cleanupspec_mem::types::Addr::new(outcome_base + i * 8),
            mix64(seed ^ i) & 1,
        );
    }
    let r_i = Reg(1);
    let r_ptr = Reg(2);
    let r_out = Reg(3);
    let r_a = Reg(4);
    let r_s = Reg(5);
    b.init_reg(r_i, iters);
    b.init_reg(r_ptr, outcome_base);
    b.init_reg(r_a, 0x2000_0000);
    let top = b.here();
    b.load(r_out, r_ptr, 0);
    b.alu(r_out, AluOp::Mul, Operand::Reg(r_out), Operand::Imm(1));
    let br = b.branch(r_out, BranchCond::NotZero, 0);
    for _ in 0..block_loads {
        b.load(r_s, r_a, 0);
        b.alu(r_a, AluOp::Add, Operand::Reg(r_a), Operand::Imm(64));
    }
    let skip = b.here();
    b.patch_branch(br, skip);
    b.alu(r_ptr, AluOp::Add, Operand::Reg(r_ptr), Operand::Imm(8));
    b.alu(
        r_ptr,
        AluOp::And,
        Operand::Reg(r_ptr),
        Operand::Imm((outcome_base + (words - 1) * 8) as i64),
    );
    b.alu(r_i, AluOp::Sub, Operand::Reg(r_i), Operand::Imm(1));
    b.branch(r_i, BranchCond::NotZero, top);
    b.halt();
    b.build()
}

/// A pure-ALU loop (no memory): the squash-free control case.
pub fn alu_loop(iters: u64) -> Program {
    let mut b = ProgramBuilder::new("alu-loop");
    let r_i = Reg(1);
    let r_x = Reg(2);
    b.init_reg(r_i, iters);
    let top = b.here();
    b.alu(r_x, AluOp::Add, Operand::Reg(r_x), Operand::Imm(3));
    b.alu(r_x, AluOp::Xor, Operand::Reg(r_x), Operand::Imm(7));
    b.alu(r_i, AluOp::Sub, Operand::Reg(r_i), Operand::Imm(1));
    b.branch(r_i, BranchCond::NotZero, top);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanupspec::modes::SecurityMode;
    use cleanupspec::sim::SimBuilder;

    #[test]
    fn load_stream_counts_loads() {
        let mut sim = SimBuilder::new(SecurityMode::NonSecure)
            .program(load_stream(0x1_0000, 64, 20))
            .build();
        sim.run_to_completion();
        assert_eq!(sim.core_stats(0).committed_loads, 20);
        assert!(sim.mem().stats().mem_loads >= 19, "distinct lines miss");
    }

    #[test]
    fn pointer_chase_serializes() {
        let n = 16;
        let mut sim = SimBuilder::new(SecurityMode::NonSecure)
            .program(pointer_chase(0x2_0000, 4096, n))
            .build();
        sim.run_to_completion();
        let r = sim.report();
        // Each chased miss costs ~ full memory latency; IPC must be tiny.
        assert!(
            r.ipc() < 0.5,
            "chase should be latency-bound, ipc={}",
            r.ipc()
        );
    }

    #[test]
    fn mispredict_storm_squashes() {
        let mut sim = SimBuilder::new(SecurityMode::NonSecure)
            .program(mispredict_storm(400, 3, 7))
            .build();
        sim.run_to_completion();
        let s = sim.core_stats(0);
        assert!(
            s.squashes > 50,
            "storm must squash often, got {}",
            s.squashes
        );
        assert!(s.squashed_loads() > 0);
    }

    #[test]
    fn alu_loop_squash_free_after_warmup() {
        let mut sim = SimBuilder::new(SecurityMode::NonSecure)
            .program(alu_loop(2_000))
            .build();
        sim.run_to_completion();
        let s = sim.core_stats(0);
        // Only warm-up mispredicts (until the 13-bit global history
        // saturates) plus the final loop fall-out.
        assert!(s.squashes <= 20, "got {}", s.squashes);
    }
}
