//! Attack kernels and end-to-end attack harnesses (Section 6.1):
//!
//! * [`spectre_v1_program`] — the Spectre Variant-1 PoC in the micro-ISA:
//!   train a bounds check, transiently read a secret past the bound, and
//!   transmit it through a secret-indexed `array2` access; the harness then
//!   infers the secret with Flush+Reload-style timed probes (Figure 11).
//! * [`transient_load_program`] — a minimal single-shot gadget that
//!   executes exactly one wrong-path load (used by the Prime+Probe and
//!   coherence experiments).
//! * [`prime_probe_l1`] — the Section 2.4.1 eviction-channel experiment
//!   showing why invalidation alone is insufficient.
//! * [`coherence_probe`] — the Section 3.5 experiment: a transient load
//!   must not downgrade a remote Modified line.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_core::isa::{AluOp, BranchCond, Operand, Program, ProgramBuilder, Reg};
use cleanupspec_core::system::RunLimits;
use cleanupspec_mem::types::{Addr, CoreId, Cycle};

/// Memory layout of the Spectre-V1 PoC.
#[derive(Clone, Copy, Debug)]
pub struct SpectreConfig {
    /// Base of `array1` (the bounds-checked array).
    pub array1_base: u64,
    /// Address of `array1_bound` (flushed each round to delay resolution).
    pub bound_addr: u64,
    /// Base of `array2` (the transmission array; 512-byte stride).
    pub array2_base: u64,
    /// Base of the attacker-controlled index sequence `xs`.
    pub xs_base: u64,
    /// Bound value stored at `bound_addr`.
    pub bound: u64,
    /// Out-of-bounds index whose `array1` slot holds the secret.
    pub malicious_x: u64,
    /// The secret byte value (paper uses 50).
    pub secret: u64,
    /// Training accesses before the malicious one.
    pub train_rounds: usize,
}

impl Default for SpectreConfig {
    fn default() -> Self {
        SpectreConfig {
            array1_base: 0x0001_0000,
            bound_addr: 0x0002_0000,
            array2_base: 0x0010_0000,
            xs_base: 0x0003_0000,
            bound: 16,
            malicious_x: 0x1_0000, // secret at array1_base + 0x80000
            secret: 50,
            train_rounds: 40,
        }
    }
}

impl SpectreConfig {
    /// Address holding the secret (reachable as `array1[malicious_x]`).
    pub fn secret_addr(&self) -> u64 {
        self.array1_base + self.malicious_x * 8
    }

    /// `array2` entry encoding value `v`.
    pub fn array2_entry(&self, v: u64) -> Addr {
        Addr::new(self.array2_base + v * 512)
    }
}

/// Builds the Spectre Variant-1 victim/attacker program.
///
/// Per round `i` the program flushes the bound, loads `x = xs[i]`, performs
/// the bounds check `if x < bound`, and on the taken (in-bounds) path
/// accesses `array2[array1[x] * 512]`. Training rounds use `x in 1..=5`;
/// the last round uses the malicious out-of-bounds index, so the access
/// runs only transiently.
pub fn spectre_v1_program(cfg: &SpectreConfig) -> Program {
    let mut b = ProgramBuilder::new("spectre-v1");
    let rounds = cfg.train_rounds + 1;
    // xs = [1, 2, ..., train_rounds, malicious_x]
    for i in 0..cfg.train_rounds {
        b.init_mem(Addr::new(cfg.xs_base + i as u64 * 8), (i as u64 % 5) + 1);
    }
    b.init_mem(
        Addr::new(cfg.xs_base + cfg.train_rounds as u64 * 8),
        cfg.malicious_x,
    );
    b.init_mem(Addr::new(cfg.bound_addr), cfg.bound);
    // array1[1..=5] hold their own index (benign "secrets" 1..5).
    for v in 1..=5u64 {
        b.init_mem(Addr::new(cfg.array1_base + v * 8), v);
    }
    b.init_mem(Addr::new(cfg.secret_addr()), cfg.secret);

    let r_i = Reg(1); // round counter (counts down)
    let r_xp = Reg(2); // xs pointer
    let r_x = Reg(3);
    let r_bound = Reg(4);
    let r_cmp = Reg(5);
    let r_a1 = Reg(6);
    let r_sec = Reg(7);
    let r_a2 = Reg(8);
    let r_sink = Reg(9);
    let r_baddr = Reg(10);
    let r_warm = Reg(12);

    b.init_reg(r_i, rounds as u64);
    b.init_reg(r_xp, cfg.xs_base);
    b.init_reg(r_baddr, cfg.bound_addr);
    // The victim legitimately touches the secret's line once (so the
    // transient read of it is an L1 hit, maximizing the transient window).
    b.movi(r_warm, cfg.secret_addr());
    b.load(r_sink, r_warm, 0);
    b.fence();

    let loop_top = b.here();
    // Flush the bound so the bounds check resolves slowly.
    b.clflush(r_baddr, 0);
    b.fence();
    b.load(r_x, r_xp, 0);
    b.load(r_bound, r_baddr, 0); // DRAM miss: slow
                                 // Lengthen the dependence chain so even a slow transient access
                                 // completes inside the speculation window.
    b.alu(r_bound, AluOp::Mul, Operand::Reg(r_bound), Operand::Imm(1));
    b.alu(r_bound, AluOp::Mul, Operand::Reg(r_bound), Operand::Imm(1));
    b.alu(r_bound, AluOp::Mul, Operand::Reg(r_bound), Operand::Imm(1));
    b.alu(r_cmp, AluOp::Sub, Operand::Reg(r_x), Operand::Reg(r_bound));
    // if x < bound (negative) -> in-bounds access path.
    let check = b.branch(r_cmp, BranchCond::Negative, 0);
    let out_of_bounds = b.jump(0); // skip the access
    let access = b.here();
    b.patch_branch(check, access);
    b.alu(r_a1, AluOp::Shl, Operand::Reg(r_x), Operand::Imm(3));
    b.alu(
        r_a1,
        AluOp::Add,
        Operand::Reg(r_a1),
        Operand::Imm(cfg.array1_base as i64),
    );
    b.load(r_sec, r_a1, 0); // array1[x] — the secret, transiently
    b.alu(r_a2, AluOp::Mul, Operand::Reg(r_sec), Operand::Imm(512));
    b.alu(
        r_a2,
        AluOp::Add,
        Operand::Reg(r_a2),
        Operand::Imm(cfg.array2_base as i64),
    );
    b.load(r_sink, r_a2, 0); // array2[secret * 512] — the transmission
    let next = b.here();
    b.patch_branch(out_of_bounds, next);
    b.alu(r_xp, AluOp::Add, Operand::Reg(r_xp), Operand::Imm(8));
    b.alu(r_i, AluOp::Sub, Operand::Reg(r_i), Operand::Imm(1));
    b.branch(r_i, BranchCond::NotZero, loop_top);
    b.halt();
    b.build()
}

/// Result of one Figure-11 experiment.
#[derive(Clone, Debug)]
pub struct SpectreResult {
    /// Average reload latency per `array2` index (0..64), in cycles.
    pub avg_latency: Vec<f64>,
    /// The secret value planted by the configuration.
    pub secret: u64,
    /// Indices whose reload was "fast" (below the hit/miss midpoint).
    pub fast_indices: Vec<usize>,
}

impl SpectreResult {
    /// Whether the attack recovered the secret: the secret index reloads
    /// fast while not being one of the benign training indices.
    pub fn leaked(&self) -> bool {
        self.fast_indices.contains(&(self.secret as usize))
    }
}

/// Runs the full Spectre-V1 attack `iters` times under `mode` and averages
/// the reload latencies (Figure 11).
pub fn run_spectre_v1(mode: SecurityMode, iters: usize, seed: u64) -> SpectreResult {
    let cfg = SpectreConfig::default();
    let entries = 64usize;
    let mut sums = vec![0f64; entries];
    for it in 0..iters {
        let mut sim = SimBuilder::new(mode)
            .program(spectre_v1_program(&cfg))
            .seed(seed ^ (it as u64).wrapping_mul(0x9E37_79B9))
            .build();
        sim.run(RunLimits {
            max_cycles: 2_000_000,
            max_insts_per_core: u64::MAX,
            ..RunLimits::default()
        });
        // Let any orphaned wrong-path fill land (the non-secure leak).
        sim.drain(500);
        for (g, sum) in sums.iter_mut().enumerate() {
            *sum += sim.probe_load(CoreId(0), cfg.array2_entry(g as u64)) as f64;
        }
    }
    let avg: Vec<f64> = sums.iter().map(|s| s / iters as f64).collect();
    // Midpoint threshold between L1 hit and memory latency.
    let threshold = 55.0;
    let fast = avg
        .iter()
        .enumerate()
        .filter(|(_, l)| **l < threshold)
        .map(|(i, _)| i)
        .collect();
    SpectreResult {
        avg_latency: avg,
        secret: cfg.secret,
        fast_indices: fast,
    }
}

/// Memory layout of the Meltdown-style PoC (exception-based transient
/// execution: the permission check races the dependent access).
#[derive(Clone, Copy, Debug)]
pub struct MeltdownConfig {
    /// Protected (kernel-like) address holding the secret.
    pub secret_addr: u64,
    /// Base of the transmission array (512-byte stride).
    pub array2_base: u64,
    /// The secret value planted at `secret_addr`.
    pub secret: u64,
}

impl Default for MeltdownConfig {
    fn default() -> Self {
        MeltdownConfig {
            secret_addr: 0x00F0_0000,
            array2_base: 0x0020_0000,
            secret: 42,
        }
    }
}

impl MeltdownConfig {
    /// `array2` entry encoding value `v`.
    pub fn array2_entry(&self, v: u64) -> Addr {
        Addr::new(self.array2_base + v * 512)
    }
}

/// Builds the Meltdown-style program: directly load the protected secret
/// (which faults only at commit) and transiently transmit it through
/// `array2[secret * 512]`. A fault handler lets the program continue.
pub fn meltdown_program(cfg: &MeltdownConfig) -> Program {
    let mut b = ProgramBuilder::new("meltdown");
    b.init_mem(Addr::new(cfg.secret_addr), cfg.secret);
    b.protect(Addr::new(cfg.secret_addr), Addr::new(cfg.secret_addr + 64));
    let r_p = Reg(2);
    let r_sec = Reg(3);
    let r_a2 = Reg(4);
    let r_sink = Reg(5);
    b.movi(r_p, cfg.secret_addr);
    b.load(r_sec, r_p, 0); // illegal: faults at commit
                           // Transient dependents (the race the attack wins):
    b.alu(r_a2, AluOp::Mul, Operand::Reg(r_sec), Operand::Imm(512));
    b.alu(
        r_a2,
        AluOp::Add,
        Operand::Reg(r_a2),
        Operand::Imm(cfg.array2_base as i64),
    );
    b.load(r_sink, r_a2, 0); // transmit through the cache
    b.halt();
    let handler = b.here();
    b.on_fault(handler);
    b.movi(Reg(6), 0x600D); // handler ran
    b.halt();
    b.build()
}

/// Result of a Meltdown run.
#[derive(Clone, Debug)]
pub struct MeltdownResult {
    /// Average reload latency per `array2` index.
    pub avg_latency: Vec<f64>,
    /// The planted secret.
    pub secret: u64,
    /// Fast (cached) indices.
    pub fast_indices: Vec<usize>,
    /// Whether the fault handler executed (the fault was architectural).
    pub handler_ran: bool,
}

impl MeltdownResult {
    /// Whether the secret index reloads fast.
    pub fn leaked(&self) -> bool {
        self.fast_indices.contains(&(self.secret as usize))
    }
}

/// Runs the Meltdown-style attack under `mode` (Figure-11 methodology).
pub fn run_meltdown(mode: SecurityMode, iters: usize, seed: u64) -> MeltdownResult {
    let cfg = MeltdownConfig::default();
    let entries = 64usize;
    let mut sums = vec![0f64; entries];
    let mut handler_ran = true;
    for it in 0..iters {
        let mut sim = SimBuilder::new(mode)
            .program(meltdown_program(&cfg))
            .seed(seed ^ (it as u64).wrapping_mul(0x51_7E11))
            .build();
        sim.run(RunLimits {
            max_cycles: 500_000,
            max_insts_per_core: u64::MAX,
            ..RunLimits::default()
        });
        sim.drain(500);
        handler_ran &= sim.system().core(0).reg(Reg(6)) == 0x600D;
        for (g, sum) in sums.iter_mut().enumerate() {
            *sum += sim.probe_load(CoreId(0), cfg.array2_entry(g as u64)) as f64;
        }
    }
    let avg: Vec<f64> = sums.iter().map(|s| s / iters as f64).collect();
    let fast = avg
        .iter()
        .enumerate()
        .filter(|(_, l)| **l < 55.0)
        .map(|(i, _)| i)
        .collect();
    MeltdownResult {
        avg_latency: avg,
        secret: cfg.secret,
        fast_indices: fast,
        handler_ran,
    }
}

/// Builds a single-shot gadget that transiently loads `target_addr` on the
/// wrong path of a mispredicted branch and halts. The branch is actually
/// taken (skipping the load) but a cold predictor predicts not-taken, so
/// the load runs transiently and is squashed.
pub fn transient_load_program(target_addr: u64, trigger_addr: u64) -> Program {
    let mut b = ProgramBuilder::new("transient-load");
    let r_trig = Reg(2);
    let r_cond = Reg(3);
    let r_tgt = Reg(4);
    let r_sink = Reg(5);
    b.init_reg(r_tgt, target_addr);
    b.movi(r_trig, trigger_addr);
    // Cold load: delays the branch's resolution.
    b.load(r_cond, r_trig, 0);
    // cond = (value * 0) + 1  -> always 1, but dependent on the slow load.
    b.alu(r_cond, AluOp::Mul, Operand::Reg(r_cond), Operand::Imm(0));
    b.alu(r_cond, AluOp::Add, Operand::Reg(r_cond), Operand::Imm(1));
    let br = b.branch(r_cond, BranchCond::NotZero, 0);
    b.load(r_sink, r_tgt, 0); // transient
    let skip = b.here();
    b.patch_branch(br, skip);
    b.halt();
    b.build()
}

/// Result of the L1 Prime+Probe experiment.
#[derive(Clone, Debug)]
pub struct PrimeProbeResult {
    /// Latency of each primed way's probe, in cycles.
    pub probe_latencies: Vec<Cycle>,
    /// Number of primed lines that missed on probe (evicted and not
    /// restored — each one leaks that the victim touched this set).
    pub evicted_primes: usize,
}

/// Prime+Probe on one L1 set (Section 2.4.1): prime all 8 ways, let the
/// victim transiently install a line mapping to the same set, squash, and
/// probe. With restoration (CleanupSpec) every prime hits; with naive
/// invalidation one prime stays evicted.
pub fn prime_probe_l1(mode: SecurityMode, seed: u64) -> PrimeProbeResult {
    // L1: 64 KB, 8 ways, 128 sets -> set = line % 128.
    let sets = 128u64;
    let ways = 8u64;
    let target_line = 0x4_0000u64; // set 0
    let target_addr = target_line * 64;
    // Cold trigger line in a DIFFERENT set (set 1), so only the transient
    // load touches the primed set.
    let trigger_addr = (0x77_0000u64 + 1) * 64;
    let mut sim = SimBuilder::new(mode)
        .program(transient_load_program(target_addr, trigger_addr))
        .seed(seed)
        .build();
    // Prime set 0 with 8 distinct lines (not the target).
    let prime_lines: Vec<u64> = (1..=ways).map(|k| (0x1_0000 + k * sets) * 64).collect();
    for &a in &prime_lines {
        sim.probe_load(CoreId(0), Addr::new(a));
    }
    // Confirm they are resident.
    for &a in &prime_lines {
        let l = sim.probe_load(CoreId(0), Addr::new(a));
        debug_assert!(l <= 2, "prime should hit, got {l}");
    }
    // Victim runs: transient load into set 0, then squash (+cleanup).
    sim.run(RunLimits {
        max_cycles: 100_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    sim.drain(1_000);
    // Probe.
    let lat: Vec<Cycle> = prime_lines
        .iter()
        .map(|&a| sim.probe_load(CoreId(0), Addr::new(a)))
        .collect();
    let evicted = lat.iter().filter(|&&l| l > 5).count();
    PrimeProbeResult {
        probe_latencies: lat,
        evicted_primes: evicted,
    }
}

/// Result of the coherence-downgrade experiment.
#[derive(Clone, Debug)]
pub struct CoherenceProbeResult {
    /// Whether the writer core still holds the line writable (M/E) after
    /// the prober's transient load.
    pub owner_kept_writable: bool,
    /// GetS-Safe refusals observed (CleanupSpec's delayed loads).
    pub gets_safe_refusals: u64,
    /// Remote-L1 services observed (downgrades that did happen).
    pub remote_hits: u64,
}

/// Two-core experiment (Section 3.5): core 0 keeps a line Modified; core 1
/// transiently loads it on the wrong path. A safe design must not let the
/// transient load downgrade core 0's line.
pub fn coherence_probe(mode: SecurityMode, seed: u64) -> CoherenceProbeResult {
    let shared_addr = 0x0042_0000u64;
    let trigger_addr = 0x5555_0000u64;
    // Writer: dirty the line, then spin on ALU work long enough for the
    // prober's transient access to happen, then halt.
    let mut w = ProgramBuilder::new("writer");
    let r_a = Reg(2);
    let r_v = Reg(3);
    let r_i = Reg(4);
    w.movi(r_a, shared_addr);
    w.movi(r_v, 0xbeef);
    w.store(r_v, r_a, 0);
    w.movi(r_i, 3000);
    let spin = w.here();
    w.alu(r_i, AluOp::Sub, Operand::Reg(r_i), Operand::Imm(1));
    w.branch(r_i, BranchCond::NotZero, spin);
    w.halt();

    let prober = {
        let mut b = ProgramBuilder::new("prober");
        // Give the writer time to establish M state.
        let r_d = Reg(6);
        b.movi(r_d, 300);
        let d = b.here();
        b.alu(r_d, AluOp::Sub, Operand::Reg(r_d), Operand::Imm(1));
        b.branch(r_d, BranchCond::NotZero, d);
        // Then the single-shot transient load of the shared line.
        let r_trig = Reg(2);
        let r_cond = Reg(3);
        let r_tgt = Reg(4);
        let r_sink = Reg(5);
        b.init_reg(r_tgt, shared_addr);
        b.movi(r_trig, trigger_addr);
        b.load(r_cond, r_trig, 0);
        b.alu(r_cond, AluOp::Mul, Operand::Reg(r_cond), Operand::Imm(0));
        b.alu(r_cond, AluOp::Add, Operand::Reg(r_cond), Operand::Imm(1));
        let br = b.branch(r_cond, BranchCond::NotZero, 0);
        b.load(r_sink, r_tgt, 0); // transient remote-M load
        let skip = b.here();
        b.patch_branch(br, skip);
        b.halt();
        b.build()
    };

    let mut sim = SimBuilder::new(mode)
        .program(w.build())
        .program(prober)
        .seed(seed)
        .build();
    sim.run(RunLimits {
        max_cycles: 200_000,
        max_insts_per_core: u64::MAX,
        ..RunLimits::default()
    });
    sim.drain(1_000);
    let line = Addr::new(shared_addr).line();
    let owner_state = sim
        .mem()
        .l1(CoreId(0))
        .probe(line)
        .map(|l| l.state.is_writable())
        .unwrap_or(false);
    CoherenceProbeResult {
        owner_kept_writable: owner_state,
        gets_safe_refusals: sim.mem().stats().gets_safe_refusals,
        remote_hits: sim.mem().stats().remote_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectre_program_builds_with_expected_layout() {
        let cfg = SpectreConfig::default();
        let p = spectre_v1_program(&cfg);
        assert!(p.len() > 15);
        // Secret planted.
        assert!(p
            .init_mem
            .iter()
            .any(|(a, v)| a.raw() == cfg.secret_addr() && *v == cfg.secret));
    }

    #[test]
    fn spectre_leaks_on_nonsecure() {
        let r = run_spectre_v1(SecurityMode::NonSecure, 3, 1);
        assert!(
            r.leaked(),
            "non-secure baseline must leak; fast={:?}",
            r.fast_indices
        );
    }

    #[test]
    fn spectre_defeated_by_cleanupspec() {
        let r = run_spectre_v1(SecurityMode::CleanupSpec, 3, 1);
        assert!(
            !r.leaked(),
            "CleanupSpec must hide the secret; fast={:?}",
            r.fast_indices
        );
        // Benign (trained) indices are still fast — identical to the
        // non-secure behaviour on the correct path (Figure 11).
        for benign in 1..=5 {
            assert!(
                r.fast_indices.contains(&benign),
                "benign index {benign} should be cached; fast={:?}",
                r.fast_indices
            );
        }
    }

    #[test]
    fn meltdown_leaks_on_nonsecure_and_handler_runs() {
        let r = run_meltdown(SecurityMode::NonSecure, 3, 7);
        assert!(r.handler_ran, "the fault must be architectural");
        assert!(r.leaked(), "fast={:?}", r.fast_indices);
    }

    #[test]
    fn meltdown_defeated_by_cleanupspec() {
        let r = run_meltdown(SecurityMode::CleanupSpec, 3, 7);
        assert!(r.handler_ran, "defense must not break exception semantics");
        assert!(!r.leaked(), "fast={:?}", r.fast_indices);
    }

    #[test]
    fn fatal_fault_halts_after_cleanup() {
        let cfg = MeltdownConfig::default();
        let mut p = meltdown_program(&cfg);
        p.fault_handler = None;
        let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
            .program(p)
            .build();
        let reason = sim.run(cleanupspec_core::system::RunLimits {
            max_cycles: 200_000,
            max_insts_per_core: u64::MAX,
            ..RunLimits::default()
        });
        assert_eq!(reason, cleanupspec_core::system::StopReason::AllHalted);
        sim.drain(1_000);
        // Even on the fatal path, the transient transmission is cleaned.
        let line = cfg.array2_entry(cfg.secret).line();
        assert!(sim.mem().l1(CoreId(0)).probe(line).is_none());
        assert!(sim.mem().l2().probe(line).is_none());
        assert_eq!(sim.core_stats(0).faults, 1);
    }

    #[test]
    fn prime_probe_leaks_with_naive_invalidation_only() {
        let naive = prime_probe_l1(SecurityMode::NaiveInvalidate, 3);
        assert!(
            naive.evicted_primes >= 1,
            "invalidation without restore leaves the eviction visible"
        );
        let cusp = prime_probe_l1(SecurityMode::CleanupSpec, 3);
        assert_eq!(
            cusp.evicted_primes, 0,
            "restore hides the eviction: {:?}",
            cusp.probe_latencies
        );
    }

    #[test]
    fn coherence_downgrade_blocked_by_gets_safe() {
        let ns = coherence_probe(SecurityMode::NonSecure, 5);
        assert!(
            !ns.owner_kept_writable,
            "non-secure transient load downgrades the owner (remote_hits={})",
            ns.remote_hits
        );
        let cs = coherence_probe(SecurityMode::CleanupSpec, 5);
        assert!(cs.owner_kept_writable, "GetS-Safe must protect M state");
        assert!(cs.gets_safe_refusals >= 1);
    }
}
