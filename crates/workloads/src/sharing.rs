//! Multi-threaded sharing kernels standing in for the 23 PARSEC and
//! SPLASH-2 workloads of Figure 9.
//!
//! Figure 9 classifies loads by the coherence situation they find: loads to
//! lines held Modified/Exclusive by a *remote* core ("unsafe", the ones
//! CleanupSpec must delay with GetS-Safe), other cache hits ("safe"), and
//! DRAM loads. What matters for the reproduction is the *sharing pattern*,
//! not the computation: each kernel here runs the same loop on four cores
//! with a calibrated mix of
//!
//! * private hot loads (always safe),
//! * reads of a read-only shared region (Shared everywhere — safe),
//! * "lock-transfer" reads of a line the neighbouring core keeps Modified
//!   (remote-E/M — unsafe), and
//! * streaming DRAM loads.

use cleanupspec_core::isa::{AluOp, BranchCond, Operand, Program, ProgramBuilder, Reg};

/// Per-workload sharing profile.
#[derive(Clone, Copy, Debug)]
pub struct SharingWorkload {
    /// Benchmark name (PARSEC or SPLASH-2).
    pub name: &'static str,
    /// Iterations between remote-M "lock transfer" reads (smaller = more
    /// unsafe loads). `0` disables them entirely.
    pub lock_period: u64,
    /// Loads per iteration to the read-only shared region.
    pub shared_reads: usize,
    /// Private hot loads per iteration.
    pub private_reads: usize,
    /// Byte stride of the streaming DRAM load (0 = none).
    pub dram_stride: u64,
}

/// The 23 multi-threaded workloads characterized in Figure 9.
pub const SHARING_WORKLOADS: [SharingWorkload; 23] = [
    // PARSEC
    SharingWorkload {
        name: "blackscholes",
        lock_period: 0,
        shared_reads: 1,
        private_reads: 4,
        dram_stride: 6,
    },
    SharingWorkload {
        name: "bodytrack",
        lock_period: 9,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 4,
    },
    SharingWorkload {
        name: "facesim",
        lock_period: 16,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 8,
    },
    SharingWorkload {
        name: "dedup",
        lock_period: 4,
        shared_reads: 1,
        private_reads: 3,
        dram_stride: 10,
    },
    SharingWorkload {
        name: "fluidanimate",
        lock_period: 3,
        shared_reads: 1,
        private_reads: 3,
        dram_stride: 6,
    },
    SharingWorkload {
        name: "canneal",
        lock_period: 12,
        shared_reads: 1,
        private_reads: 2,
        dram_stride: 40,
    },
    SharingWorkload {
        name: "raytrace",
        lock_period: 20,
        shared_reads: 3,
        private_reads: 3,
        dram_stride: 2,
    },
    SharingWorkload {
        name: "streamcluster",
        lock_period: 6,
        shared_reads: 2,
        private_reads: 2,
        dram_stride: 24,
    },
    SharingWorkload {
        name: "swaptions",
        lock_period: 0,
        shared_reads: 1,
        private_reads: 5,
        dram_stride: 2,
    },
    SharingWorkload {
        name: "vips",
        lock_period: 8,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 6,
    },
    // SPLASH-2
    SharingWorkload {
        name: "barnes",
        lock_period: 4,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 6,
    },
    SharingWorkload {
        name: "fmm",
        lock_period: 10,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 4,
    },
    SharingWorkload {
        name: "ocean.cont",
        lock_period: 7,
        shared_reads: 1,
        private_reads: 2,
        dram_stride: 32,
    },
    SharingWorkload {
        name: "ocean.ncont",
        lock_period: 6,
        shared_reads: 1,
        private_reads: 2,
        dram_stride: 36,
    },
    SharingWorkload {
        name: "radiosity",
        lock_period: 3,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 4,
    },
    SharingWorkload {
        name: "volrend",
        lock_period: 5,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 4,
    },
    SharingWorkload {
        name: "water.nsq",
        lock_period: 8,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 4,
    },
    SharingWorkload {
        name: "water.sp",
        lock_period: 12,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 3,
    },
    SharingWorkload {
        name: "cholesky",
        lock_period: 8,
        shared_reads: 1,
        private_reads: 3,
        dram_stride: 12,
    },
    SharingWorkload {
        name: "fft",
        lock_period: 24,
        shared_reads: 1,
        private_reads: 2,
        dram_stride: 30,
    },
    SharingWorkload {
        name: "lu.cont",
        lock_period: 14,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 10,
    },
    SharingWorkload {
        name: "lu.ncont",
        lock_period: 11,
        shared_reads: 2,
        private_reads: 3,
        dram_stride: 14,
    },
    SharingWorkload {
        name: "radix",
        lock_period: 18,
        shared_reads: 1,
        private_reads: 2,
        dram_stride: 28,
    },
];

/// Looks up a sharing workload by name.
pub fn sharing_workload(name: &str) -> Option<SharingWorkload> {
    SHARING_WORKLOADS.iter().copied().find(|w| w.name == name)
}

mod layout {
    /// Per-core "mailbox" lines kept Modified by their owner.
    pub const MAILBOX: u64 = 0x0060_0000;
    /// Read-only shared region (16 KB). Kept small so the per-core working
    /// set (shared + private) stays L1-resident: if shared lines thrash out
    /// of every L1, their next toucher regains Exclusive state and the
    /// workload manufactures remote-E hits that real lock-free kernels do
    /// not exhibit.
    pub const SHARED: u64 = 0x0400_0000;
    /// Shared-region mask.
    pub const SHARED_MASK: u64 = 0x0000_3FF8;
    /// Per-core private hot regions (16 KB each, 1 MB apart).
    pub const PRIVATE: u64 = 0x0800_0000;
    /// Private mask.
    pub const PRIVATE_MASK: u64 = 0x3FF8;
    /// Per-core streaming regions (32 MB each).
    pub const STREAM: u64 = 0x4000_0000;
    /// Stream mask (full byte granularity: sub-8-byte strides must
    /// accumulate rather than being rounded away).
    pub const STREAM_MASK: u64 = 0x01FF_FFFF;
}

const R_ITER: Reg = Reg(1);
const R_LCG: Reg = Reg(16);
const R_ADDR: Reg = Reg(14);
const R_SINK: Reg = Reg(13);
const R_LOCKCTR: Reg = Reg(10);
const R_STREAM: Reg = Reg(21);
const R_VAL: Reg = Reg(9);

impl SharingWorkload {
    /// Builds the kernel for one of `num_cores` cores.
    ///
    /// Each core keeps its own mailbox line Modified by storing to it every
    /// iteration, and every `lock_period` iterations reads the *next*
    /// core's mailbox — a load that finds the line Modified in a remote L1.
    pub fn build(&self, core: usize, num_cores: usize, seed: u64) -> Program {
        let mut b = ProgramBuilder::new(format!("{}-c{}", self.name, core));
        b.init_reg(R_ITER, u64::MAX / 2);
        b.init_reg(R_LCG, seed ^ (core as u64 * 77 + 1) | 1);
        b.init_reg(R_LOCKCTR, self.lock_period.max(1));
        b.init_reg(R_STREAM, 0);
        b.init_reg(R_VAL, core as u64 + 1);
        let my_mailbox = layout::MAILBOX + core as u64 * 64;
        let next_mailbox = layout::MAILBOX + ((core + 1) % num_cores) as u64 * 64;
        let private_base = layout::PRIVATE + core as u64 * 0x10_0000;
        let stream_base = layout::STREAM + core as u64 * 0x0200_0000;

        // Prologue: read the whole shared region once (initialization
        // phase, as real programs do). After every core's prologue, all
        // shared lines sit in stable S state.
        let r_pro = Reg(22);
        b.movi(r_pro, layout::SHARED);
        let pro_top = b.here();
        b.load(R_SINK, r_pro, 0);
        b.alu(r_pro, AluOp::Add, Operand::Reg(r_pro), Operand::Imm(64));
        b.alu(
            R_ADDR,
            AluOp::Sub,
            Operand::Reg(r_pro),
            Operand::Imm((layout::SHARED + layout::SHARED_MASK + 8) as i64),
        );
        b.branch(R_ADDR, BranchCond::Negative, pro_top);

        let loop_top = b.here();
        b.alu(
            R_LCG,
            AluOp::Mul,
            Operand::Reg(R_LCG),
            Operand::Imm(6364136223846793005u64 as i64),
        );
        b.alu(
            R_LCG,
            AluOp::Add,
            Operand::Reg(R_LCG),
            Operand::Imm(1442695040888963407u64 as i64),
        );
        // Keep my mailbox Modified.
        b.movi(R_ADDR, my_mailbox);
        b.store(R_VAL, R_ADDR, 0);
        // Private hot loads.
        for k in 0..self.private_reads {
            b.alu(
                R_ADDR,
                AluOp::Shr,
                Operand::Reg(R_LCG),
                Operand::Imm(11 + 7 * k as i64),
            );
            b.alu(
                R_ADDR,
                AluOp::And,
                Operand::Reg(R_ADDR),
                Operand::Imm(layout::PRIVATE_MASK as i64),
            );
            b.alu(
                R_ADDR,
                AluOp::Add,
                Operand::Reg(R_ADDR),
                Operand::Imm(private_base as i64),
            );
            b.load(R_SINK, R_ADDR, 0);
        }
        // Read-only shared loads (Shared state everywhere -> safe).
        for k in 0..self.shared_reads {
            b.alu(
                R_ADDR,
                AluOp::Shr,
                Operand::Reg(R_LCG),
                Operand::Imm(17 + 5 * k as i64),
            );
            b.alu(
                R_ADDR,
                AluOp::And,
                Operand::Reg(R_ADDR),
                Operand::Imm(layout::SHARED_MASK as i64),
            );
            b.alu(
                R_ADDR,
                AluOp::Add,
                Operand::Reg(R_ADDR),
                Operand::Imm(layout::SHARED as i64),
            );
            b.load(R_SINK, R_ADDR, 0);
        }
        // Streaming DRAM load.
        if self.dram_stride > 0 {
            b.alu(
                R_STREAM,
                AluOp::Add,
                Operand::Reg(R_STREAM),
                Operand::Imm(self.dram_stride as i64),
            );
            b.alu(
                R_STREAM,
                AluOp::And,
                Operand::Reg(R_STREAM),
                Operand::Imm(layout::STREAM_MASK as i64),
            );
            b.alu(
                R_ADDR,
                AluOp::Add,
                Operand::Reg(R_STREAM),
                Operand::Imm(stream_base as i64),
            );
            b.load(R_SINK, R_ADDR, 0);
        }
        // Lock transfer every `lock_period` iterations: read the remote
        // core's Modified mailbox.
        if self.lock_period > 0 {
            b.alu(
                R_LOCKCTR,
                AluOp::Sub,
                Operand::Reg(R_LOCKCTR),
                Operand::Imm(1),
            );
            let skip_br = b.branch(R_LOCKCTR, BranchCond::NotZero, 0);
            b.movi(R_ADDR, next_mailbox);
            b.load(R_SINK, R_ADDR, 0); // remote-E/M load
            b.movi(R_LOCKCTR, self.lock_period);
            let after = b.here();
            b.patch_branch(skip_br, after);
        }
        b.alu(R_ITER, AluOp::Sub, Operand::Reg(R_ITER), Operand::Imm(1));
        b.branch(R_ITER, BranchCond::NotZero, loop_top);
        b.halt();
        b.build()
    }

    /// Builds the per-core programs for a `num_cores`-way run.
    pub fn build_all(&self, num_cores: usize, seed: u64) -> Vec<Program> {
        (0..num_cores)
            .map(|c| self.build(c, num_cores, seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_named_workloads() {
        assert_eq!(SHARING_WORKLOADS.len(), 23);
        let names: std::collections::HashSet<_> =
            SHARING_WORKLOADS.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn per_core_programs_differ_in_regions() {
        let w = sharing_workload("barnes").unwrap();
        let ps = w.build_all(4, 1);
        assert_eq!(ps.len(), 4);
        // Different cores produce different code (different bases).
        assert_ne!(ps[0].insts(), ps[1].insts());
    }

    #[test]
    fn lockless_workloads_have_no_mailbox_read() {
        let w = sharing_workload("blackscholes").unwrap();
        assert_eq!(w.lock_period, 0);
        let p = w.build(0, 4, 1);
        // Just sanity: it builds and loops.
        assert!(p.len() > 5);
    }
}
