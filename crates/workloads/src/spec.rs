//! Synthetic stand-ins for the 19 SPEC CPU2006 workloads of Table 3.
//!
//! We cannot ship SPEC binaries, and the core runs a micro-ISA, so each
//! workload is a generated loop calibrated to the two characteristics the
//! paper shows drive all of its results (Sections 6.2–6.4): the **branch
//! misprediction rate** (squash frequency) and the **L1-D miss rate**
//! (cleanup work per squash). Table 3's per-workload numbers are embedded
//! as calibration targets; the `tab03_characteristics` harness verifies the
//! generators against them.
//!
//! Loop structure (one iteration):
//!
//! ```text
//! r16 <- LCG(r16)                     ; per-iteration randomness
//! r11 <- outcomes[h(r16)]             ; Bernoulli(q) branch outcome (L1 hit)
//! (mul chain on r11)                  ; delays branch resolution -> deeper wrong path
//! if r11 != 0 goto skip               ; mispredicted ~q of the time
//!   load med[rand if coin(p_med)]     ; L1 miss, L2 hit (1 MB region)
//!   load huge[rand if coin(p_huge)]   ; L1+L2 miss, DRAM (64 MB region)
//!   (pad ALU)
//! skip:
//!   load hot1; load hot2              ; L1 hits (8 KB regions)
//!   (pad ALU)
//!   i -= 1; if i != 0 goto loop       ; predictable backward branch
//! ```
//!
//! The med/huge loads flip a branch-free coin per iteration (comparing LCG
//! bits against a threshold with mask arithmetic): with probability `p`
//! they read a uniformly random line of their region (a miss), otherwise
//! the region's base line (a hit). A random-line pattern — unlike a stride
//! walk — does not burst several accesses into the same in-flight MSHR
//! entry, so the measured miss rate tracks the target directly.
//!
//! When the `if` is mispredicted (actually taken, predicted not-taken), the
//! wrong path transiently executes the med/huge loads — installing lines
//! that a squash must clean up, exactly the behaviour CleanupSpec targets.

use cleanupspec_core::isa::{AluOp, BranchCond, Operand, Program, ProgramBuilder, Reg};
use cleanupspec_mem::rng::{mix_str, SplitMix64};
use cleanupspec_mem::types::Addr;

/// Address-space layout of the generated workloads.
mod layout {
    /// Bernoulli branch-outcome table (2048 words = 16 KB, L1-resident).
    pub const OUTCOMES: u64 = 0x0050_0000;
    /// Number of outcome words.
    pub const OUTCOME_WORDS: u64 = 2048;
    /// First hot region (8 KB).
    pub const HOT1: u64 = 0x0100_0000;
    /// Second hot region (8 KB).
    pub const HOT2: u64 = 0x0110_0000;
    /// Medium region (1 MB: misses L1, hits L2).
    pub const MED: u64 = 0x0200_0000;
    /// Medium region mask (1 MB - 8).
    pub const MED_MASK: u64 = 0x000F_FFF8;
    /// Huge streaming region (64 MB: misses L2).
    pub const HUGE: u64 = 0x1000_0000;
    /// Huge region mask (64 MB - 8).
    pub const HUGE_MASK: u64 = 0x03FF_FFF8;
    /// Hot mask (8 KB - 8). The total resident footprint (outcomes + two
    /// hot regions = 32 KB) must fit the 64 KB L1 with room to spare.
    pub const HOT_MASK: u64 = 0x1FF8;
}

/// Calibration record for one workload (paper Table 3 targets).
#[derive(Clone, Copy, Debug)]
pub struct SpecWorkload {
    /// SPEC benchmark name.
    pub name: &'static str,
    /// Table 3 branch misprediction rate (fraction, e.g. 0.124).
    pub paper_mispredict: f64,
    /// Table 3 L1-D miss rate (fraction).
    pub paper_l1_miss: f64,
    /// Share of L1 misses that go to DRAM rather than hitting L2.
    pub dram_share: f64,
    /// Dependent multiplies delaying branch resolution (wrong-path depth).
    pub mul_chain: usize,
    /// Filler ALU operations per iteration.
    pub alu_pad: usize,
}

/// The 19 workloads of Table 3, in the paper's order (sorted by branch
/// misprediction rate, descending).
pub const SPEC_WORKLOADS: [SpecWorkload; 19] = [
    SpecWorkload {
        name: "astar",
        paper_mispredict: 0.124,
        paper_l1_miss: 0.018,
        dram_share: 0.15,
        mul_chain: 2,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "gobmk",
        paper_mispredict: 0.119,
        paper_l1_miss: 0.010,
        dram_share: 0.25,
        mul_chain: 1,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "sjeng",
        paper_mispredict: 0.113,
        paper_l1_miss: 0.002,
        dram_share: 0.30,
        mul_chain: 1,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "bzip2",
        paper_mispredict: 0.097,
        paper_l1_miss: 0.020,
        dram_share: 0.10,
        mul_chain: 2,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "perl",
        paper_mispredict: 0.077,
        paper_l1_miss: 0.005,
        dram_share: 0.30,
        mul_chain: 2,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "povray",
        paper_mispredict: 0.075,
        paper_l1_miss: 0.002,
        dram_share: 0.30,
        mul_chain: 2,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "gromacs",
        paper_mispredict: 0.068,
        paper_l1_miss: 0.011,
        dram_share: 0.15,
        mul_chain: 3,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "h264",
        paper_mispredict: 0.054,
        paper_l1_miss: 0.005,
        dram_share: 0.25,
        mul_chain: 2,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "namd",
        paper_mispredict: 0.042,
        paper_l1_miss: 0.003,
        dram_share: 0.15,
        mul_chain: 3,
        alu_pad: 5,
    },
    SpecWorkload {
        name: "sphinx3",
        paper_mispredict: 0.041,
        paper_l1_miss: 0.040,
        dram_share: 0.30,
        mul_chain: 3,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "wrf",
        paper_mispredict: 0.022,
        paper_l1_miss: 0.005,
        dram_share: 0.50,
        mul_chain: 2,
        alu_pad: 5,
    },
    SpecWorkload {
        name: "hmmer",
        paper_mispredict: 0.019,
        paper_l1_miss: 0.002,
        dram_share: 0.25,
        mul_chain: 4,
        alu_pad: 6,
    },
    SpecWorkload {
        name: "mcf",
        paper_mispredict: 0.016,
        paper_l1_miss: 0.025,
        dram_share: 0.60,
        mul_chain: 5,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "soplex",
        paper_mispredict: 0.015,
        paper_l1_miss: 0.059,
        dram_share: 0.50,
        mul_chain: 4,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "gcc",
        paper_mispredict: 0.013,
        paper_l1_miss: 0.001,
        dram_share: 0.40,
        mul_chain: 2,
        alu_pad: 5,
    },
    SpecWorkload {
        name: "lbm",
        paper_mispredict: 0.003,
        paper_l1_miss: 0.110,
        dram_share: 0.85,
        mul_chain: 5,
        alu_pad: 3,
    },
    SpecWorkload {
        name: "cactus",
        paper_mispredict: 0.001,
        paper_l1_miss: 0.009,
        dram_share: 0.50,
        mul_chain: 4,
        alu_pad: 5,
    },
    SpecWorkload {
        name: "milc",
        paper_mispredict: 0.000,
        paper_l1_miss: 0.046,
        dram_share: 0.70,
        mul_chain: 5,
        alu_pad: 4,
    },
    SpecWorkload {
        name: "libq",
        paper_mispredict: 0.000,
        paper_l1_miss: 0.104,
        dram_share: 0.80,
        mul_chain: 3,
        alu_pad: 3,
    },
];

/// Looks up a workload by name.
pub fn spec_workload(name: &str) -> Option<SpecWorkload> {
    SPEC_WORKLOADS.iter().copied().find(|w| w.name == name)
}

impl SpecWorkload {
    /// Conditional-branch taken probability needed to hit the target
    /// misprediction rate, given that roughly half of the committed
    /// branches are the (predictable) loop back-edge.
    pub fn taken_prob(&self) -> f64 {
        // Roughly half the committed branches are the predictable loop
        // back-edge; the 1.62 factor (instead of 2.0) absorbs the extra
        // mispredicts that random taken outcomes induce on the other
        // predictor components (measured against Table 3).
        (self.paper_mispredict * 1.62).min(0.45)
    }

    /// Expected L1 misses per iteration implied by the target miss rate
    /// (5 loads per iteration: outcomes + 2 hot + med + huge).
    fn miss_budget(&self) -> f64 {
        self.paper_l1_miss * 5.0
    }

    /// Probability that the medium-region load reads a random (missing)
    /// line (L2-hit misses). The med/huge loads sit in the fall-through
    /// block, executed with probability `1 - q`, and a random line in the
    /// 1 MB region misses the 64 KB L1 with probability ~0.94; both are
    /// compensated for.
    pub fn med_prob(&self) -> f64 {
        let q = self.taken_prob();
        (CAL_MISS * self.miss_budget() * (1.0 - self.dram_share) / ((1.0 - q) * 0.94)).min(1.0)
    }

    /// Probability that the huge-region load reads a random (DRAM) line.
    pub fn huge_prob(&self) -> f64 {
        let q = self.taken_prob();
        (CAL_MISS * self.miss_budget() * self.dram_share / ((1.0 - q) * 0.97)).min(1.0)
    }

    /// 8-bit coin threshold for the medium load.
    pub fn med_threshold(&self) -> u64 {
        (self.med_prob() * 256.0).round() as u64
    }

    /// 8-bit coin threshold for the huge load.
    pub fn huge_threshold(&self) -> u64 {
        (self.huge_prob() * 256.0).round() as u64
    }

    /// Builds the calibrated program. `seed` controls the Bernoulli
    /// outcome table; runs are deterministic per seed.
    pub fn build(&self, seed: u64) -> Program {
        build_spec_program(self, seed)
    }
}

// Register conventions used by the generator.
const R_ITER: Reg = Reg(1);
const R_LCG: Reg = Reg(16);
const R_OUT: Reg = Reg(11);
const R_CHAIN: Reg = Reg(12);
const R_TMP: Reg = Reg(14);
const R_COIN: Reg = Reg(20);
const R_MASK: Reg = Reg(21);
const R_ADDR: Reg = Reg(22);
const R_SINK1: Reg = Reg(23);
const R_SINK2: Reg = Reg(25);
const R_HOT: Reg = Reg(26);
const R_SINK3: Reg = Reg(27);
const R_SINK4: Reg = Reg(29);
const R_PAD: Reg = Reg(15);

/// Empirical miss-rate calibration factor: compensates for wrong-path
/// (transient) misses and compulsory warm-up misses that the hierarchy
/// counts on top of the committed-path misses the coins generate.
const CAL_MISS: f64 = 0.78;

const LCG_A: u64 = 6364136223846793005;
const LCG_C: u64 = 1442695040888963407;

fn build_spec_program(w: &SpecWorkload, seed: u64) -> Program {
    let q = w.taken_prob();
    let mut b = ProgramBuilder::new(w.name);
    b.init_reg(R_ITER, u64::MAX / 2); // effectively infinite loop
    b.init_reg(R_LCG, seed | 1);
    // Outcome table: Bernoulli(q), seeded. The coin compares 53 uniform
    // bits against q, matching `rand`'s gen_bool construction but driven
    // by the workspace SplitMix64 so builds are registry-free.
    let mut rng = SplitMix64::new(seed ^ 0x5bec);
    let q_scaled = (q * (1u64 << 53) as f64) as u64;
    for i in 0..layout::OUTCOME_WORDS {
        let v = u64::from((rng.next_u64() >> 11) < q_scaled);
        b.init_mem(Addr::new(layout::OUTCOMES + i * 8), v);
    }

    let loop_top = b.here();
    // --- per-iteration randomness ---
    b.alu(
        R_LCG,
        AluOp::Mul,
        Operand::Reg(R_LCG),
        Operand::Imm(LCG_A as i64),
    );
    b.alu(
        R_LCG,
        AluOp::Add,
        Operand::Reg(R_LCG),
        Operand::Imm(LCG_C as i64),
    );
    // --- branch-outcome load (hot) ---
    b.alu(R_TMP, AluOp::Shr, Operand::Reg(R_LCG), Operand::Imm(30));
    b.alu(
        R_TMP,
        AluOp::And,
        Operand::Reg(R_TMP),
        Operand::Imm(((layout::OUTCOME_WORDS - 1) * 8) as i64),
    );
    b.alu(
        R_TMP,
        AluOp::Add,
        Operand::Reg(R_TMP),
        Operand::Imm(layout::OUTCOMES as i64),
    );
    b.load(R_OUT, R_TMP, 0);
    // --- resolution-delay chain ---
    b.alu(R_CHAIN, AluOp::Mul, Operand::Reg(R_OUT), Operand::Imm(1));
    for _ in 1..w.mul_chain.max(1) {
        b.alu(R_CHAIN, AluOp::Mul, Operand::Reg(R_CHAIN), Operand::Imm(1));
    }
    // --- the mispredictable branch ---
    let cond_br = b.branch(R_CHAIN, BranchCond::NotZero, 0);
    // --- fall-through block: the miss-generating loads ---
    // Branch-free coin: s = ((bits - T) >> 63) is 1 when bits < T; the
    // random offset is then kept (mask = 0 - s) or zeroed.
    let coin_load = |b: &mut ProgramBuilder,
                     threshold: u64,
                     coin_shift: i64,
                     off_shift: i64,
                     region_mask: u64,
                     region_base: u64,
                     sink: Reg| {
        if threshold == 0 {
            return;
        }
        b.alu(
            R_COIN,
            AluOp::Shr,
            Operand::Reg(R_LCG),
            Operand::Imm(coin_shift),
        );
        b.alu(R_COIN, AluOp::And, Operand::Reg(R_COIN), Operand::Imm(0xFF));
        b.alu(
            R_COIN,
            AluOp::Sub,
            Operand::Reg(R_COIN),
            Operand::Imm(threshold as i64),
        );
        b.alu(R_COIN, AluOp::Shr, Operand::Reg(R_COIN), Operand::Imm(63));
        b.alu(R_MASK, AluOp::Sub, Operand::Imm(0), Operand::Reg(R_COIN));
        b.alu(
            R_ADDR,
            AluOp::Shr,
            Operand::Reg(R_LCG),
            Operand::Imm(off_shift),
        );
        b.alu(
            R_ADDR,
            AluOp::And,
            Operand::Reg(R_ADDR),
            Operand::Imm(region_mask as i64),
        );
        b.alu(
            R_ADDR,
            AluOp::And,
            Operand::Reg(R_ADDR),
            Operand::Reg(R_MASK),
        );
        b.alu(
            R_ADDR,
            AluOp::Add,
            Operand::Reg(R_ADDR),
            Operand::Imm(region_base as i64),
        );
        b.load(sink, R_ADDR, 0);
    };
    coin_load(
        &mut b,
        w.med_threshold(),
        40,
        9,
        layout::MED_MASK,
        layout::MED,
        R_SINK1,
    );
    coin_load(
        &mut b,
        w.huge_threshold(),
        48,
        17,
        layout::HUGE_MASK,
        layout::HUGE,
        R_SINK2,
    );
    for k in 0..w.alu_pad / 2 {
        b.alu(
            R_PAD,
            AluOp::Xor,
            Operand::Reg(R_LCG),
            Operand::Imm(k as i64),
        );
    }
    // --- common path: hot loads + pad ---
    let skip = b.here();
    b.patch_branch(cond_br, skip);
    b.alu(R_HOT, AluOp::Shr, Operand::Reg(R_LCG), Operand::Imm(13));
    b.alu(
        R_HOT,
        AluOp::And,
        Operand::Reg(R_HOT),
        Operand::Imm(layout::HOT_MASK as i64),
    );
    b.alu(
        R_HOT,
        AluOp::Add,
        Operand::Reg(R_HOT),
        Operand::Imm(layout::HOT1 as i64),
    );
    b.load(R_SINK3, R_HOT, 0);
    b.alu(R_HOT, AluOp::Shr, Operand::Reg(R_LCG), Operand::Imm(21));
    b.alu(
        R_HOT,
        AluOp::And,
        Operand::Reg(R_HOT),
        Operand::Imm(layout::HOT_MASK as i64),
    );
    b.alu(
        R_HOT,
        AluOp::Add,
        Operand::Reg(R_HOT),
        Operand::Imm(layout::HOT2 as i64),
    );
    b.load(R_SINK4, R_HOT, 0);
    for k in 0..w.alu_pad - w.alu_pad / 2 {
        b.alu(
            R_PAD,
            AluOp::Add,
            Operand::Reg(R_PAD),
            Operand::Imm(k as i64),
        );
    }
    // --- loop back-edge (predictable) ---
    b.alu(R_ITER, AluOp::Sub, Operand::Reg(R_ITER), Operand::Imm(1));
    b.branch(R_ITER, BranchCond::NotZero, loop_top);
    b.halt();
    b.build()
}

/// Builds every Table-3 workload with a common base seed.
pub fn all_spec_programs(seed: u64) -> Vec<(SpecWorkload, Program)> {
    SPEC_WORKLOADS
        .iter()
        .map(|w| (*w, w.build(seed ^ mix_str(w.name))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_workloads_with_unique_names() {
        assert_eq!(SPEC_WORKLOADS.len(), 19);
        let names: std::collections::HashSet<_> = SPEC_WORKLOADS.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_workload("astar").is_some());
        assert!(spec_workload("lbm").is_some());
        assert!(spec_workload("nonexistent").is_none());
    }

    #[test]
    fn coin_probabilities_respect_miss_budget_shape() {
        // High-miss workloads must flip their miss coins far more often.
        let lbm = spec_workload("lbm").unwrap();
        let sjeng = spec_workload("sjeng").unwrap();
        assert!(lbm.huge_prob() > 10.0 * sjeng.huge_prob().max(1e-6));
        let soplex = spec_workload("soplex").unwrap();
        assert!(soplex.med_prob() > 0.1);
        for w in SPEC_WORKLOADS {
            assert!((0.0..=1.0).contains(&w.med_prob()), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.huge_prob()), "{}", w.name);
        }
    }

    #[test]
    fn taken_prob_tracks_mispredict_target() {
        let astar = spec_workload("astar").unwrap();
        assert!((astar.taken_prob() - 0.124 * 1.62).abs() < 1e-9);
        let milc = spec_workload("milc").unwrap();
        assert_eq!(milc.taken_prob(), 0.0);
    }

    #[test]
    fn programs_build_and_are_loops() {
        for (w, p) in all_spec_programs(42) {
            assert!(p.len() > 10, "{} too small", w.name);
            assert!(p.len() < 100, "{} too large", w.name);
            // Outcome table initialized.
            assert!(p.init_mem.len() as u64 == layout::OUTCOME_WORDS);
        }
    }

    #[test]
    fn outcome_table_density_matches_taken_prob() {
        let w = spec_workload("astar").unwrap();
        let p = w.build(7);
        let ones: u64 = p.init_mem.iter().map(|(_, v)| *v).sum();
        let frac = ones as f64 / layout::OUTCOME_WORDS as f64;
        assert!(
            (frac - w.taken_prob()).abs() < 0.03,
            "outcome density {frac} vs target {}",
            w.taken_prob()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let w = spec_workload("bzip2").unwrap();
        let a = w.build(9);
        let b = w.build(9);
        assert_eq!(a.init_mem, b.init_mem);
        assert_eq!(a.insts().len(), b.insts().len());
        let c = w.build(10);
        assert_ne!(a.init_mem, c.init_mem);
    }
}
