//! # cleanupspec-workloads
//!
//! Workload generators for the CleanupSpec reproduction: calibrated
//! SPEC-CPU2006-like loops ([`spec`], Table 3), PARSEC/SPLASH-2-like
//! multi-threaded sharing kernels ([`sharing`], Figure 9), deterministic
//! microbenchmarks ([`micro`]), and the attack kernels with their
//! end-to-end harnesses ([`attacks`]: Spectre V1 / Flush+Reload for
//! Figure 11, Prime+Probe, and the coherence-downgrade probe).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attacks;
pub mod micro;
pub mod sharing;
pub mod smith;
pub mod spec;

pub use attacks::{
    coherence_probe, meltdown_program, prime_probe_l1, run_meltdown, run_spectre_v1,
    spectre_v1_program, transient_load_program, CoherenceProbeResult, MeltdownConfig,
    MeltdownResult, PrimeProbeResult, SpectreConfig, SpectreResult,
};
pub use sharing::{sharing_workload, SharingWorkload, SHARING_WORKLOADS};
pub use smith::{assemble_plan, plan, SmithOp, SmithPlan, WrongOp};
pub use spec::{all_spec_programs, spec_workload, SpecWorkload, SPEC_WORKLOADS};
