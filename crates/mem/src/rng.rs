//! A tiny deterministic RNG used inside timing-critical simulator structures
//! (random replacement, randomized victim selection).
//!
//! We use SplitMix64 rather than the `rand` crate here so that the cache
//! model's behaviour is a pure function of its seed, independent of `rand`
//! version changes, and cheap enough to call on every victim selection.

/// SplitMix64 pseudo-random generator.
///
/// ```
/// use cleanupspec_mem::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiplicative range reduction; bias is negligible for the small
        // bounds (cache ways) used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A stateless 64-bit mixing hash (the SplitMix64 finalizer). Useful for
/// deriving per-object seeds and branch-outcome streams.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a whole string to a 64-bit seed by folding every byte through
/// [`mix64`]. Use this (not the first byte or the length) to derive
/// per-workload seeds: names sharing a prefix still get distinct streams.
pub fn mix_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h = mix64(h ^ u64::from(b));
    }
    mix64(h ^ s.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.below(16) < 16);
        }
    }

    #[test]
    fn below_covers_all_ways() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 ways should be selected");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn mix64_is_a_function() {
        assert_eq!(mix64(123), mix64(123));
        assert_ne!(mix64(123), mix64(124));
    }

    #[test]
    fn mix_str_distinguishes_similar_names() {
        // Same first byte AND same length — the cases a lazy hash of
        // `name[0]` or `name.len()` would collide on.
        assert_ne!(mix_str("astar"), mix_str("apple"));
        assert_ne!(mix_str("gcc"), mix_str("gap"));
        assert_eq!(mix_str("lbm"), mix_str("lbm"));
        assert_ne!(mix_str(""), mix_str("a"));
    }
}
