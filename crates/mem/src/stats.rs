//! Statistics for the memory hierarchy: hit/miss counters, load-service
//! classification (Figure 9), and network-traffic accounting by message
//! class (Figure 4b).

use crate::mshr::LoadPath;
use cleanupspec_obs::{Histogram, PathKind};

/// Classes of on-chip network messages, for the Figure 4(b) traffic
/// breakdown. Each counted unit is one message (request or response).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgClass {
    /// Demand request/response between L1 and L2 or L2 and memory.
    Regular,
    /// InvisiSpec invisible (speculative) load messages.
    SpecLoad,
    /// InvisiSpec commit-time update-load messages.
    UpdateLoad,
    /// Writebacks (dirty evictions).
    Writeback,
    /// Invalidations (inclusion victims, coherence, clflush).
    Inval,
    /// Coherence control (downgrades, upgrades, GetS-Safe NACKs).
    Coherence,
    /// CleanupSpec cleanup operations (invalidate + restore requests).
    Cleanup,
    /// CleanupSpec speculation-window extension messages (Section 3.6).
    WindowExtend,
}

impl MsgClass {
    /// All classes, in display order.
    pub const ALL: [MsgClass; 8] = [
        MsgClass::Regular,
        MsgClass::SpecLoad,
        MsgClass::UpdateLoad,
        MsgClass::Writeback,
        MsgClass::Inval,
        MsgClass::Coherence,
        MsgClass::Cleanup,
        MsgClass::WindowExtend,
    ];

    fn index(self) -> usize {
        match self {
            MsgClass::Regular => 0,
            MsgClass::SpecLoad => 1,
            MsgClass::UpdateLoad => 2,
            MsgClass::Writeback => 3,
            MsgClass::Inval => 4,
            MsgClass::Coherence => 5,
            MsgClass::Cleanup => 6,
            MsgClass::WindowExtend => 7,
        }
    }
}

impl std::fmt::Display for MsgClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MsgClass::Regular => "regular",
            MsgClass::SpecLoad => "spec-load",
            MsgClass::UpdateLoad => "update-load",
            MsgClass::Writeback => "writeback",
            MsgClass::Inval => "inval",
            MsgClass::Coherence => "coherence",
            MsgClass::Cleanup => "cleanup",
            MsgClass::WindowExtend => "window-extend",
        };
        f.write_str(s)
    }
}

/// Network-traffic counters by message class.
#[derive(Clone, Debug, Default)]
pub struct Traffic {
    counts: [u64; 8],
}

impl Traffic {
    /// Records `n` messages of a class.
    pub fn add(&mut self, class: MsgClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Messages of one class.
    pub fn get(&self, class: MsgClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total messages across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Figure 9 load classification: which coherence situation a load found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadClass {
    /// Hit a line this core already had (any state), or a remote-S line —
    /// "safe cache loads" in Figure 9.
    SafeCache,
    /// Hit a line held Modified/Exclusive by a *remote* L1 — the loads whose
    /// downgrade CleanupSpec must delay ("unsafe cache loads").
    RemoteEM,
    /// Serviced by DRAM ("safe DRAM loads").
    Dram,
}

/// Per-hierarchy statistics.
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    /// Demand loads that hit in some L1.
    pub l1_hits: u64,
    /// Demand loads that missed L1 and hit L2.
    pub l2_hits: u64,
    /// Demand loads serviced by a remote L1 (M/E downgrade).
    pub remote_hits: u64,
    /// Demand loads serviced by DRAM.
    pub mem_loads: u64,
    /// Loads serviced as window-protection dummy misses.
    pub dummy_misses: u64,
    /// GetS-Safe refusals (speculative load would have downgraded M/E).
    pub gets_safe_refusals: u64,
    /// Stores (all serviced at commit time).
    pub stores: u64,
    /// Store upgrades (S -> M) and RFOs.
    pub store_upgrades: u64,
    /// L1 evictions caused by fills.
    pub l1_evictions: u64,
    /// L2 evictions caused by fills.
    pub l2_evictions: u64,
    /// L1 back-invalidations due to inclusive L2 evictions.
    pub back_invals: u64,
    /// Fills dropped due to epoch mismatch (squashed inflight loads).
    pub dropped_fills: u64,
    /// Orphan fills performed for squashed loads (insecure modes).
    pub orphan_fills: u64,
    /// CleanupSpec invalidation operations executed.
    pub cleanup_invals: u64,
    /// CleanupSpec restore operations executed.
    pub cleanup_restores: u64,
    /// Demand misses re-fetching a line a cleanup invalidate removed.
    pub transient_inval_misses: u64,
    /// Demand misses re-fetching a line the Random L1 policy evicted.
    pub random_repl_misses: u64,
    /// Figure 9 classification counters.
    pub class_safe_cache: u64,
    /// See [`LoadClass::RemoteEM`].
    pub class_remote_em: u64,
    /// See [`LoadClass::Dram`].
    pub class_dram: u64,
    /// Load-latency histograms, indexed by [`PathKind::index`] (same order
    /// as [`PathKind::ALL`]: l1-hit, l2-hit, remote-hit, mem, dummy).
    pub load_latency: [Histogram; 5],
    /// MSHR occupancy sampled at each allocation.
    pub mshr_occupancy: Histogram,
    /// Speculative (SEFE) entry occupancy sampled at each spec allocation.
    pub sefe_occupancy: Histogram,
}

impl MemStats {
    /// Records the Figure 9 classification of one load.
    pub fn classify(&mut self, class: LoadClass) {
        match class {
            LoadClass::SafeCache => self.class_safe_cache += 1,
            LoadClass::RemoteEM => self.class_remote_em += 1,
            LoadClass::Dram => self.class_dram += 1,
        }
    }

    /// Records the scheme-overhead provenance of one demand miss.
    pub fn count_provenance(&mut self, prov: Option<crate::hierarchy::MissProvenance>) {
        match prov {
            Some(crate::hierarchy::MissProvenance::TransientInval) => {
                self.transient_inval_misses += 1;
            }
            Some(crate::hierarchy::MissProvenance::RandomRepl) => {
                self.random_repl_misses += 1;
            }
            None => {}
        }
    }

    /// Records the service path of one demand load.
    pub fn record_path(&mut self, path: LoadPath) {
        match path {
            LoadPath::L1Hit => self.l1_hits += 1,
            LoadPath::L2Hit => self.l2_hits += 1,
            LoadPath::RemoteL1 => self.remote_hits += 1,
            LoadPath::Mem => self.mem_loads += 1,
            LoadPath::DummyMiss => self.dummy_misses += 1,
        }
    }

    /// Records the service latency of one load on its path's histogram.
    pub fn record_latency(&mut self, path: LoadPath, latency: u64) {
        self.load_latency[PathKind::from(path).index()].record(latency);
    }

    /// Total demand loads observed.
    pub fn total_loads(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.remote_hits + self.mem_loads + self.dummy_misses
    }

    /// L1 data-cache miss rate over demand loads.
    pub fn l1_miss_rate(&self) -> f64 {
        let total = self.total_loads();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.l1_hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accumulates_by_class() {
        let mut t = Traffic::default();
        t.add(MsgClass::Regular, 3);
        t.add(MsgClass::Writeback, 2);
        t.add(MsgClass::Regular, 1);
        assert_eq!(t.get(MsgClass::Regular), 4);
        assert_eq!(t.get(MsgClass::Writeback), 2);
        assert_eq!(t.get(MsgClass::SpecLoad), 0);
        assert_eq!(t.total(), 6);
    }

    #[test]
    fn all_classes_distinct_indices() {
        let mut t = Traffic::default();
        for (i, c) in MsgClass::ALL.iter().enumerate() {
            t.add(*c, i as u64 + 1);
        }
        for (i, c) in MsgClass::ALL.iter().enumerate() {
            assert_eq!(t.get(*c), i as u64 + 1);
        }
    }

    #[test]
    fn miss_rate_computation() {
        let mut s = MemStats::default();
        for _ in 0..90 {
            s.record_path(LoadPath::L1Hit);
        }
        for _ in 0..10 {
            s.record_path(LoadPath::L2Hit);
        }
        assert_eq!(s.total_loads(), 100);
        assert!((s.l1_miss_rate() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_of_empty_stats_is_zero() {
        assert_eq!(MemStats::default().l1_miss_rate(), 0.0);
    }

    #[test]
    fn classification_counters() {
        let mut s = MemStats::default();
        s.classify(LoadClass::SafeCache);
        s.classify(LoadClass::RemoteEM);
        s.classify(LoadClass::RemoteEM);
        s.classify(LoadClass::Dram);
        assert_eq!(s.class_safe_cache, 1);
        assert_eq!(s.class_remote_em, 2);
        assert_eq!(s.class_dram, 1);
    }
}
