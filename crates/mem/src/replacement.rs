//! Cache replacement policies.
//!
//! CleanupSpec requires a *random* replacement policy for the L1 data cache
//! so that replacement-state updates on hits carry no information
//! (Section 3.2 / Table 1). The L2 may use any policy because its
//! CEASER-randomized indexing already makes evictions benign; we default it
//! to LRU like the paper's baseline and also provide tree-PLRU.

use crate::rng::SplitMix64;

/// Chooses victims within cache sets and observes hits/installs.
///
/// Implementations keep their own per-set metadata, indexed by
/// `(set, way)`. The cache guarantees `set < num_sets` and `way < ways` as
/// configured at construction.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Deep-copies the policy, including RNG streams and per-set metadata,
    /// so a snapshotted cache replays victim choices bit-exactly (cs-snap).
    fn boxed_clone(&self) -> Box<dyn ReplacementPolicy>;

    /// Records a demand hit on `(set, way)`.
    fn on_hit(&mut self, set: usize, way: usize);

    /// Records a fill into `(set, way)`.
    fn on_install(&mut self, set: usize, way: usize);

    /// Chooses a victim way in `set`. Called only when every way is valid.
    fn victim(&mut self, set: usize) -> usize;

    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Whether a hit mutates replacement state (and could therefore leak
    /// information through victim selection, as exploited by DAWG-style
    /// replacement attacks the paper cites).
    fn hit_updates_state(&self) -> bool;
}

impl Clone for Box<dyn ReplacementPolicy> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// True least-recently-used replacement, implemented with a per-line
/// last-touch timestamp.
#[derive(Clone, Debug)]
pub struct Lru {
    ways: usize,
    stamp: Vec<u64>,
    tick: u64,
}

impl Lru {
    /// Creates LRU metadata for `num_sets` sets of `ways` ways.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        Lru {
            ways,
            stamp: vec![0; num_sets * ways],
            tick: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.stamp[set * self.ways + way] = self.tick;
    }
}

impl ReplacementPolicy for Lru {
    fn boxed_clone(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_install(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.stamp[base + w])
            .expect("cache sets have at least one way")
    }

    fn name(&self) -> &'static str {
        "lru"
    }

    fn hit_updates_state(&self) -> bool {
        true
    }
}

/// Random replacement: victim selection is independent of access history, so
/// hits carry no information (CleanupSpec's L1 policy, Section 3.2).
#[derive(Clone, Debug)]
pub struct RandomRepl {
    ways: usize,
    rng: SplitMix64,
}

impl RandomRepl {
    /// Creates a seeded random-replacement policy for sets of `ways` ways.
    pub fn new(ways: usize, seed: u64) -> Self {
        RandomRepl {
            ways,
            rng: SplitMix64::new(seed),
        }
    }
}

impl ReplacementPolicy for RandomRepl {
    fn boxed_clone(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }

    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_install(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize) -> usize {
        self.rng.below(self.ways as u64) as usize
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn hit_updates_state(&self) -> bool {
        false
    }
}

/// Tree pseudo-LRU: a binary tree of direction bits per set.
///
/// Provided as the "intelligent replacement policy" that a randomized L2 can
/// safely keep using (Section 3.2: "intelligent replacement policies can be
/// freely used for the L2 cache").
#[derive(Clone, Debug)]
pub struct TreePlru {
    ways: usize,
    // ways-1 internal nodes per set, flattened.
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates tree-PLRU metadata. `ways` must be a power of two.
    ///
    /// # Panics
    /// Panics if `ways` is not a power of two or is zero.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(ways.is_power_of_two() && ways > 0, "ways must be 2^k");
        TreePlru {
            ways,
            bits: vec![false; num_sets * (ways - 1).max(1)],
        }
    }

    fn promote(&mut self, set: usize, way: usize) {
        if self.ways == 1 {
            return;
        }
        let base = set * (self.ways - 1);
        let mut node = 0usize; // root
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            // Point the bit AWAY from the touched way.
            self.bits[base + node] = !go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn boxed_clone(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(self.clone())
    }

    fn on_hit(&mut self, set: usize, way: usize) {
        self.promote(set, way);
    }

    fn on_install(&mut self, set: usize, way: usize) {
        self.promote(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        if self.ways == 1 {
            return 0;
        }
        let base = set * (self.ways - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = self.bits[base + node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn name(&self) -> &'static str {
        "tree-plru"
    }

    fn hit_updates_state(&self) -> bool {
        true
    }
}

/// Replacement policy selector used in configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReplacementKind {
    /// True LRU (baseline L1/L2 policy).
    #[default]
    Lru,
    /// Random replacement (CleanupSpec's L1 policy).
    Random,
    /// Tree pseudo-LRU.
    TreePlru,
}

impl ReplacementKind {
    /// Instantiates the policy for a cache geometry.
    pub fn build(self, num_sets: usize, ways: usize, seed: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplacementKind::Lru => Box::new(Lru::new(num_sets, ways)),
            ReplacementKind::Random => Box::new(RandomRepl::new(ways, seed)),
            ReplacementKind::TreePlru => Box::new(TreePlru::new(num_sets, ways)),
        }
    }
}

impl std::fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReplacementKind::Lru => "lru",
            ReplacementKind::Random => "random",
            ReplacementKind::TreePlru => "tree-plru",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_is_least_recent() {
        let mut p = Lru::new(1, 4);
        for w in 0..4 {
            p.on_install(0, w);
        }
        p.on_hit(0, 0); // way 0 becomes MRU; way 1 is now LRU
        assert_eq!(p.victim(0), 1);
        p.on_hit(0, 1);
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut p = Lru::new(2, 2);
        p.on_install(0, 0);
        p.on_install(0, 1);
        p.on_install(1, 1);
        p.on_install(1, 0);
        assert_eq!(p.victim(0), 0);
        assert_eq!(p.victim(1), 1);
    }

    #[test]
    fn random_ignores_history() {
        // Two policies with the same seed but different hit histories must
        // produce the same victim sequence: that is the security property.
        let mut a = RandomRepl::new(8, 5);
        let mut b = RandomRepl::new(8, 5);
        for w in 0..8 {
            a.on_hit(0, w); // touch everything
        }
        for _ in 0..64 {
            assert_eq!(a.victim(0), b.victim(0));
        }
    }

    #[test]
    fn plru_victim_avoids_recent() {
        let mut p = TreePlru::new(1, 4);
        for w in 0..4 {
            p.on_install(0, w);
        }
        let hot = 3;
        p.on_hit(0, hot);
        assert_ne!(p.victim(0), hot);
    }

    #[test]
    fn plru_cycles_through_ways() {
        let mut p = TreePlru::new(1, 8);
        let mut seen = [false; 8];
        for _ in 0..8 {
            let v = p.victim(0);
            seen[v] = true;
            p.on_install(0, v);
        }
        assert!(seen.iter().all(|&s| s), "plru should rotate over all ways");
    }

    #[test]
    fn kind_builds_expected_policy() {
        assert_eq!(ReplacementKind::Lru.build(4, 2, 0).name(), "lru");
        assert_eq!(ReplacementKind::Random.build(4, 2, 0).name(), "random");
        assert_eq!(ReplacementKind::TreePlru.build(4, 2, 0).name(), "tree-plru");
        assert!(!ReplacementKind::Random.build(4, 2, 0).hit_updates_state());
        assert!(ReplacementKind::Lru.build(4, 2, 0).hit_updates_state());
    }
}
