//! Main-memory model.
//!
//! The paper models DRAM as a flat 50 ns round trip after the L2 (Table 4)
//! and mandates a *close-page* row-buffer policy so that row-buffer hit/miss
//! timing cannot form a covert channel (Section 2.1). A close-page policy
//! means every access pays the full activate+precharge cost and there is no
//! access-history-dependent state — which is exactly a flat-latency model,
//! so this module is both the timing model and the security property.

use crate::types::Cycle;

/// Close-page DRAM with a fixed round-trip latency.
#[derive(Clone, Debug)]
pub struct Dram {
    rt_cycles: Cycle,
    reads: u64,
    writebacks: u64,
}

impl Dram {
    /// Creates a DRAM model with the given round-trip latency in core cycles
    /// (the paper's 50 ns at 2 GHz = 100 cycles).
    pub fn new(rt_cycles: Cycle) -> Self {
        Dram {
            rt_cycles,
            reads: 0,
            writebacks: 0,
        }
    }

    /// Round-trip latency in cycles.
    pub fn rt_cycles(&self) -> Cycle {
        self.rt_cycles
    }

    /// Issues a read; returns its completion cycle. With a close-page
    /// policy the latency is independent of address and history.
    pub fn read(&mut self, now: Cycle) -> Cycle {
        self.reads += 1;
        now + self.rt_cycles
    }

    /// Issues a writeback (fire-and-forget for timing purposes).
    pub fn writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Number of reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of writebacks received.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }
}

impl Default for Dram {
    /// Table 4 default: 50 ns RT at 2 GHz.
    fn default() -> Self {
        Dram::new(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_latency_independent_of_history() {
        let mut d = Dram::default();
        let a = d.read(1000) - 1000;
        for _ in 0..10 {
            d.read(2000);
        }
        let b = d.read(3000) - 3000;
        assert_eq!(a, b, "close-page: no history-dependent latency");
        assert_eq!(a, 100);
    }

    #[test]
    fn counts_accesses() {
        let mut d = Dram::new(50);
        d.read(0);
        d.read(0);
        d.writeback();
        assert_eq!(d.reads(), 2);
        assert_eq!(d.writebacks(), 1);
        assert_eq!(d.rt_cycles(), 50);
    }
}
