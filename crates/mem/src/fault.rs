//! Deterministic fault injection for mutation-testing the security model.
//!
//! CleanupSpec's security argument rests on every undo path firing exactly
//! once. This module generalizes the one-off `--sabotage` hook from the
//! fuzzer into a first-class subsystem: a [`FaultPlan`] names which undo
//! bugs to plant, and a [`FaultInjector`] handle — cheap to clone, disabled
//! by default, like `Observer` — is threaded through the hierarchy, caches,
//! and schemes. Each hook site asks [`FaultInjector::should_fire`] at the
//! moment the corresponding correct behaviour would occur; firing replaces
//! the correct behaviour with the planted bug.
//!
//! Faults are *deterministic*: a plan fires on the `skip`-th opportunity and
//! every one after it (up to `max_fires`), so a failing campaign seed
//! replays bit-for-bit. The `cs-chaos` CLI uses this to build the
//! fault-detection matrix proving every fault class is caught by at least
//! one fuzzer oracle.

use std::sync::{Arc, Mutex};

/// The taxonomy of plantable undo bugs.
///
/// Each variant names a *class* of bug in the CleanupSpec undo machinery,
/// with the hook living at the exact point the correct mechanism acts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// `cleanup_restore` silently does nothing: a dirty/clean victim evicted
    /// by a squashed load's install is never brought back to the L1.
    SkipVictimRestore,
    /// `collect` frees the MSHR slot but hands the core an *empty* SEFE
    /// record, so the load's installs are never registered for cleanup.
    DropSefeEntry,
    /// `cleanup_invalidate` silently does nothing: transiently installed
    /// lines survive the squash in L1/L2.
    SkipTransientInvalidate,
    /// GetS-Safe is broken: a speculative load downgrades a remote M/E owner
    /// immediately instead of deferring until it turns non-speculative.
    EarlyCoherenceDowngrade,
    /// The L2 leg of `cleanup_invalidate` resolves the line with a stale
    /// (identity) index instead of the live CEASER mapping, so the transient
    /// L2 install survives even though the cleanup is reported as done.
    StaleCeaserIndex,
    /// Random L1 replacement degenerates to always-way-0, making victim
    /// selection predictable (the property CleanupSpec's Rand-L1 defence
    /// depends on).
    DeterministicL1Replacement,
    /// `collect` returns the SEFE record without freeing the MSHR slot; the
    /// slot is occupied forever and the file slowly exhausts.
    LeakMshrSlot,
    /// The cleanup op sequence is applied twice for one squash, probing
    /// whether the undo is idempotent in state *and* invisible in the
    /// event/timing record (it is not).
    DoubleUndo,
}

impl FaultKind {
    /// Every fault class, in taxonomy order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::SkipVictimRestore,
        FaultKind::DropSefeEntry,
        FaultKind::SkipTransientInvalidate,
        FaultKind::EarlyCoherenceDowngrade,
        FaultKind::StaleCeaserIndex,
        FaultKind::DeterministicL1Replacement,
        FaultKind::LeakMshrSlot,
        FaultKind::DoubleUndo,
    ];

    /// Stable kebab-case name (CLI argument and matrix row label).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SkipVictimRestore => "skip-victim-restore",
            FaultKind::DropSefeEntry => "drop-sefe-entry",
            FaultKind::SkipTransientInvalidate => "skip-transient-invalidate",
            FaultKind::EarlyCoherenceDowngrade => "early-coherence-downgrade",
            FaultKind::StaleCeaserIndex => "stale-ceaser-index",
            FaultKind::DeterministicL1Replacement => "deterministic-l1-replacement",
            FaultKind::LeakMshrSlot => "leak-mshr-slot",
            FaultKind::DoubleUndo => "double-undo",
        }
    }

    /// Parses a kebab-case name as produced by [`FaultKind::name`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// One-line description for `--list` output and docs.
    pub fn description(self) -> &'static str {
        match self {
            FaultKind::SkipVictimRestore => "cleanup_restore never reinstates the evicted victim",
            FaultKind::DropSefeEntry => "collect() returns an empty SEFE; installs escape cleanup",
            FaultKind::SkipTransientInvalidate => {
                "cleanup_invalidate is skipped; transient installs survive"
            }
            FaultKind::EarlyCoherenceDowngrade => {
                "spec load downgrades remote M/E owner instead of deferring (GetS-Safe broken)"
            }
            FaultKind::StaleCeaserIndex => {
                "L2 cleanup leg uses a stale index; install survives but cleanup is reported done"
            }
            FaultKind::DeterministicL1Replacement => {
                "random L1 replacement degenerates to always-way-0"
            }
            FaultKind::LeakMshrSlot => "collect() never frees the slot; MSHR file exhausts",
            FaultKind::DoubleUndo => "the cleanup op sequence runs twice per squash",
        }
    }

    fn index(self) -> usize {
        FaultKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("FaultKind::ALL covers every variant")
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One planted fault: which class, and when it fires.
///
/// The fault fires on opportunity number `skip` (0-based) and on every
/// later opportunity, up to `max_fires` firings total.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// The fault class.
    pub kind: FaultKind,
    /// Opportunities to let pass unharmed before the first firing.
    pub skip: u64,
    /// Maximum number of firings (`u64::MAX` = every opportunity).
    pub max_fires: u64,
}

impl FaultSpec {
    /// A fault that fires at every opportunity.
    pub fn always(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            skip: 0,
            max_fires: u64::MAX,
        }
    }
}

/// A set of planted faults (usually one) for a single run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The planted faults.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with a single always-firing fault.
    pub fn single(kind: FaultKind) -> Self {
        FaultPlan {
            faults: vec![FaultSpec::always(kind)],
        }
    }

    /// Human-readable one-line summary (`kind[skip..+max]`, comma-joined).
    pub fn describe(&self) -> String {
        if self.faults.is_empty() {
            return "none".to_string();
        }
        self.faults
            .iter()
            .map(|f| {
                if f.skip == 0 && f.max_fires == u64::MAX {
                    f.kind.name().to_string()
                } else if f.max_fires == u64::MAX {
                    format!("{}[skip={}]", f.kind.name(), f.skip)
                } else {
                    format!("{}[skip={},fires<={}]", f.kind.name(), f.skip, f.max_fires)
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    opportunities: [u64; FaultKind::ALL.len()],
    fires: [u64; FaultKind::ALL.len()],
}

/// Locks the shared state, recovering from poisoning. The state is plain
/// counters plus an immutable plan, so a panic mid-update cannot leave it
/// inconsistent — and crash-isolated campaigns (`cs-chaos`) must be able
/// to read counters for triage after catching a seed's panic.
fn lock(state: &Mutex<FaultState>) -> std::sync::MutexGuard<'_, FaultState> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// By-value copy of an injector's counters, taken for a cs-snap snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultCountersSnapshot {
    opportunities: [u64; FaultKind::ALL.len()],
    fires: [u64; FaultKind::ALL.len()],
}

/// Per-fault-class counters from one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultCounters {
    /// Hook sites reached where this fault *could* have fired.
    pub opportunities: u64,
    /// Times it actually fired.
    pub fires: u64,
}

/// Shared handle to a fault plan plus its firing counters.
///
/// The default handle is *disabled*: every `should_fire` returns `false`
/// without locking anything, so un-faulted runs pay a branch per hook site
/// and nothing more. Clones share the same counters, which is what lets a
/// single plan be threaded through the hierarchy, each L1 cache, and the
/// scheme while firing as one coordinated saboteur.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    state: Option<Arc<Mutex<FaultState>>>,
}

impl FaultInjector {
    /// A handle that never fires (the default for all production paths).
    pub fn disabled() -> Self {
        FaultInjector::default()
    }

    /// An armed handle executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            state: Some(Arc::new(Mutex::new(FaultState {
                plan,
                opportunities: [0; FaultKind::ALL.len()],
                fires: [0; FaultKind::ALL.len()],
            }))),
        }
    }

    /// Whether this handle carries a plan at all.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Records an opportunity for `kind` and decides whether the fault fires
    /// now. Call this exactly at the point the correct behaviour would act.
    pub fn should_fire(&self, kind: FaultKind) -> bool {
        let Some(state) = &self.state else {
            return false;
        };
        let mut s = lock(state);
        let i = kind.index();
        let opportunity = s.opportunities[i];
        s.opportunities[i] += 1;
        let Some(spec) = s.plan.faults.iter().find(|f| f.kind == kind).copied() else {
            return false;
        };
        if opportunity >= spec.skip && s.fires[i] < spec.max_fires {
            s.fires[i] += 1;
            true
        } else {
            false
        }
    }

    /// Counters for one fault class.
    pub fn counters(&self, kind: FaultKind) -> FaultCounters {
        match &self.state {
            None => FaultCounters::default(),
            Some(state) => {
                let s = lock(state);
                let i = kind.index();
                FaultCounters {
                    opportunities: s.opportunities[i],
                    fires: s.fires[i],
                }
            }
        }
    }

    /// Times `kind` actually fired.
    pub fn fires(&self, kind: FaultKind) -> u64 {
        self.counters(kind).fires
    }

    /// The plan carried by this handle (empty when disabled).
    pub fn plan(&self) -> FaultPlan {
        match &self.state {
            None => FaultPlan::default(),
            Some(state) => lock(state).plan.clone(),
        }
    }

    /// Freezes the firing counters for a cs-snap snapshot.
    ///
    /// Clones of a `FaultInjector` share one `Arc`'d counter block, so
    /// cloning a `System` does *not* isolate fault state; a snapshot must
    /// capture the counters by value and write them back on restore for the
    /// resumed run to fire the same faults at the same opportunities.
    pub fn counters_snapshot(&self) -> Option<FaultCountersSnapshot> {
        self.state.as_ref().map(|state| {
            let s = lock(state);
            FaultCountersSnapshot {
                opportunities: s.opportunities,
                fires: s.fires,
            }
        })
    }

    /// Writes back counters captured by [`Self::counters_snapshot`].
    /// A `None` snapshot (taken from a disabled handle) is a no-op.
    pub fn restore_counters(&self, snap: &Option<FaultCountersSnapshot>) {
        if let (Some(state), Some(snap)) = (&self.state, snap) {
            let mut s = lock(state);
            s.opportunities = snap.opportunities;
            s.fires = snap.fires;
        }
    }

    /// Per-class `(kind, counters)` rows for every class with activity.
    pub fn report(&self) -> Vec<(FaultKind, FaultCounters)> {
        FaultKind::ALL
            .into_iter()
            .map(|k| (k, self.counters(k)))
            .filter(|(_, c)| c.opportunities > 0 || c.fires > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires_or_counts() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for k in FaultKind::ALL {
            assert!(!inj.should_fire(k));
        }
        assert_eq!(inj.counters(FaultKind::DoubleUndo).opportunities, 0);
        assert!(inj.report().is_empty());
    }

    #[test]
    fn single_plan_fires_only_its_kind() {
        let inj = FaultInjector::new(FaultPlan::single(FaultKind::SkipVictimRestore));
        assert!(inj.should_fire(FaultKind::SkipVictimRestore));
        assert!(!inj.should_fire(FaultKind::DoubleUndo));
        assert_eq!(inj.fires(FaultKind::SkipVictimRestore), 1);
        assert_eq!(inj.fires(FaultKind::DoubleUndo), 0);
        // Opportunities count even for kinds not in the plan.
        assert_eq!(inj.counters(FaultKind::DoubleUndo).opportunities, 1);
    }

    #[test]
    fn skip_and_max_fires_window() {
        let inj = FaultInjector::new(FaultPlan {
            faults: vec![FaultSpec {
                kind: FaultKind::LeakMshrSlot,
                skip: 2,
                max_fires: 2,
            }],
        });
        let fired: Vec<bool> = (0..6)
            .map(|_| inj.should_fire(FaultKind::LeakMshrSlot))
            .collect();
        assert_eq!(fired, [false, false, true, true, false, false]);
        assert_eq!(inj.fires(FaultKind::LeakMshrSlot), 2);
        assert_eq!(inj.counters(FaultKind::LeakMshrSlot).opportunities, 6);
    }

    #[test]
    fn clones_share_counters() {
        let inj = FaultInjector::new(FaultPlan::single(FaultKind::DoubleUndo));
        let clone = inj.clone();
        assert!(clone.should_fire(FaultKind::DoubleUndo));
        assert_eq!(inj.fires(FaultKind::DoubleUndo), 1);
    }

    #[test]
    fn names_roundtrip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in FaultKind::ALL {
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
            assert_eq!(FaultKind::parse(k.name()), Some(k));
            assert!(!k.description().is_empty());
        }
        assert_eq!(FaultKind::parse("no-such-fault"), None);
    }

    #[test]
    fn plan_describe_is_stable() {
        assert_eq!(FaultPlan::default().describe(), "none");
        assert_eq!(
            FaultPlan::single(FaultKind::StaleCeaserIndex).describe(),
            "stale-ceaser-index"
        );
        let plan = FaultPlan {
            faults: vec![FaultSpec {
                kind: FaultKind::DropSefeEntry,
                skip: 3,
                max_fires: u64::MAX,
            }],
        };
        assert_eq!(plan.describe(), "drop-sefe-entry[skip=3]");
    }
}
