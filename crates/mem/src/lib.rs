//! # cleanupspec-mem
//!
//! Memory-hierarchy substrate for the CleanupSpec reproduction
//! (Saileshwar & Qureshi, *CleanupSpec: An "Undo" Approach to Safe
//! Speculation*, MICRO 2019).
//!
//! This crate models the paper's Table-4 memory system: per-core private
//! L1 data caches, a shared inclusive L2 with a MESI directory, MSHRs
//! extended with CleanupSpec's Side-Effect Entries, optional CEASER-style
//! randomized L2 indexing, and close-page DRAM. It provides the
//! *mechanisms* — deferred fills, epoch-dropped responses, cleanup
//! invalidation/restoration, GetS-Safe, and speculation-window dummy
//! misses — on top of which the `cleanupspec` crate builds the paper's
//! security schemes.
//!
//! ## Example
//!
//! ```
//! use cleanupspec_mem::hierarchy::{LoadReq, MemConfig, MemHierarchy};
//! use cleanupspec_mem::types::{CoreId, LineAddr, LoadId};
//!
//! let mut mem = MemHierarchy::new(MemConfig::default());
//! let line = LineAddr::new(0x40);
//! let out = mem
//!     .load(CoreId(0), line, 0, LoadReq::non_spec(LoadId(0)))
//!     .expect("MSHR available");
//! mem.advance(out.complete_at);
//! if let Some(token) = out.token {
//!     let sefe = mem.collect(token).expect("fill done");
//!     assert!(sefe.l1_fill);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod ceaser;
pub mod dram;
pub mod error;
pub mod fault;
pub mod hierarchy;
pub mod mshr;
pub mod replacement;
pub mod rng;
pub mod stats;
pub mod types;

pub use cache::{CacheLine, GeometryError, Mesi, SetAssocCache};
pub use ceaser::{CeaserCipher, Indexer};
pub use error::SimError;
pub use fault::{
    FaultCounters, FaultCountersSnapshot, FaultInjector, FaultKind, FaultPlan, FaultSpec,
};
pub use hierarchy::{LoadKind, LoadOutcome, LoadReq, MemConfig, MemHierarchy, StoreOutcome};
pub use mshr::{LoadPath, MshrFullError, MshrToken, SefeRecord};
pub use replacement::ReplacementKind;
pub use stats::{LoadClass, MemStats, MsgClass, Traffic};
pub use types::{Addr, CoreId, Cycle, EpochId, LineAddr, LoadId, SpecTag};
