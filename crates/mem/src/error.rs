//! Structured errors for recoverable simulator failures.
//!
//! The workspace distinguishes two failure classes:
//!
//! * **Recoverable conditions** — resource exhaustion and bad configuration
//!   that callers are expected to handle (a full MSHR file stalls the load;
//!   a bad cache geometry is rejected at construction). These surface as
//!   [`SimError`].
//! * **Invariant violations** — states the simulator can only reach through
//!   a bug in the simulator itself (a token freed twice, a directory entry
//!   for a line no cache holds). These stay as panics so fuzzing surfaces
//!   them loudly; the inventory is documented in `docs/FAULTS.md`.

use crate::cache::GeometryError;
use crate::mshr::MshrFullError;
use crate::types::{CoreId, LineAddr};

/// A recoverable simulator failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Cache geometry rejected at construction.
    Geometry(GeometryError),
    /// Every MSHR slot of `core` is in use; the access must be retried.
    MshrFull {
        /// The core whose MSHR file is exhausted.
        core: CoreId,
    },
    /// A hierarchy lookup expected `line` to be present and it was not.
    MissingLine {
        /// Where the lookup failed (e.g. `"l1"`, `"l2"`, `"dir"`).
        level: &'static str,
        /// The absent line.
        line: LineAddr,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Geometry(g) => write!(f, "cache geometry: {g}"),
            SimError::MshrFull { core } => write!(f, "core {}: all MSHR entries in use", core.0),
            SimError::MissingLine { level, line } => {
                write!(f, "{level} lookup missed expected line {line:?}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Geometry(g) => Some(g),
            _ => None,
        }
    }
}

impl From<GeometryError> for SimError {
    fn from(g: GeometryError) -> Self {
        SimError::Geometry(g)
    }
}

impl From<MshrFullError> for SimError {
    fn from(_: MshrFullError) -> Self {
        // The error itself does not carry the core; hierarchy call sites
        // construct `MshrFull` directly with it. This impl covers generic
        // `?` propagation where the core is not known.
        SimError::MshrFull { core: CoreId(0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::MshrFull { core: CoreId(3) };
        assert!(e.to_string().contains("core 3"));
        let e = SimError::MissingLine {
            level: "l2",
            line: LineAddr::new(0x40),
        };
        assert!(e.to_string().contains("l2"));
    }

    #[test]
    fn geometry_errors_convert() {
        let g = GeometryError::new("capacity not a multiple of ways".into());
        let e: SimError = g.into();
        assert!(matches!(e, SimError::Geometry(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
