//! Generic set-associative cache with MESI coherence state and the
//! speculative-install metadata CleanupSpec needs for window protection and
//! rollback.

use crate::ceaser::Indexer;
use crate::fault::{FaultInjector, FaultKind};
use crate::replacement::{ReplacementKind, ReplacementPolicy};
use crate::types::{CoreId, LineAddr, SpecTag};

/// MESI coherence state of a cached line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mesi {
    /// Modified: exclusive and dirty.
    Modified,
    /// Exclusive: sole clean copy.
    Exclusive,
    /// Shared: one of possibly many clean copies.
    Shared,
    /// Invalid (not present).
    Invalid,
}

impl Mesi {
    /// Whether the state grants write permission without a coherence action.
    pub fn is_writable(self) -> bool {
        matches!(self, Mesi::Modified | Mesi::Exclusive)
    }
}

impl std::fmt::Display for Mesi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Mesi::Modified => "M",
            Mesi::Exclusive => "E",
            Mesi::Shared => "S",
            Mesi::Invalid => "I",
        };
        f.write_str(s)
    }
}

/// One cache line's tag-array entry.
#[derive(Clone, Debug)]
pub struct CacheLine {
    /// Full line address (the simulator stores the whole address as the tag).
    pub line: LineAddr,
    /// Coherence state; `Invalid` means the way is free.
    pub state: Mesi,
    /// Dirty bit (meaningful at the L2, where `Shared`+dirty can occur for
    /// lines written back from an L1).
    pub dirty: bool,
    /// Set while the line was installed by a still-speculative load
    /// (CleanupSpec window protection, Section 3.6). Cleared at load
    /// retirement or by cleanup.
    pub spec: Option<SpecTag>,
}

impl CacheLine {
    fn empty() -> Self {
        CacheLine {
            line: LineAddr::new(0),
            state: Mesi::Invalid,
            dirty: false,
            spec: None,
        }
    }

    /// Whether the way holds valid data.
    pub fn is_valid(&self) -> bool {
        self.state != Mesi::Invalid
    }
}

/// A line evicted by an install.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Address of the victim line.
    pub line: LineAddr,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
    /// Coherence state the victim held.
    pub state: Mesi,
    /// Whether the victim itself was a still-speculative install.
    pub spec: Option<SpecTag>,
}

/// Geometry and policy configuration for one cache.
#[derive(Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Index function (modulo or CEASER-randomized).
    pub indexer: Indexer,
    /// Skew partitions (Skewed-CEASER / CEASER-S): the ways are split into
    /// this many groups, each indexed by an independently keyed function.
    /// `1` = conventional set-associative. Must divide `ways`.
    pub skews: usize,
    /// Seed for stochastic policies.
    pub seed: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not divide into a power-of-two set count.
    pub fn num_sets(&self) -> usize {
        self.checked_num_sets().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validates the geometry and returns the set count.
    ///
    /// The set indexers mask with `num_sets - 1`, so a non-power-of-two set
    /// count would silently alias sets in release builds; this is the
    /// construction-time check that makes that impossible.
    ///
    /// # Errors
    /// Returns [`GeometryError`] if `ways` is zero, the capacity does not
    /// divide into whole sets, the set count is not a power of two, or
    /// `skews` does not divide `ways`.
    pub fn checked_num_sets(&self) -> Result<usize, GeometryError> {
        if self.ways == 0 {
            return Err(GeometryError(format!(
                "ways must be positive (capacity {} B)",
                self.capacity_bytes
            )));
        }
        if !self.capacity_bytes.is_multiple_of(64 * self.ways) {
            return Err(GeometryError(format!(
                "capacity {} B does not divide into whole sets of {} 64-B ways",
                self.capacity_bytes, self.ways
            )));
        }
        let sets = self.capacity_bytes / 64 / self.ways;
        if sets == 0 || !sets.is_power_of_two() {
            return Err(GeometryError(format!(
                "sets must be 2^k, got {sets} (capacity {} B, {} ways)",
                self.capacity_bytes, self.ways
            )));
        }
        if self.skews == 0 || !self.ways.is_multiple_of(self.skews) {
            return Err(GeometryError(format!(
                "skews ({}) must divide ways ({})",
                self.skews, self.ways
            )));
        }
        Ok(sets)
    }
}

/// Invalid cache geometry detected at construction time (non-power-of-two
/// set count, zero ways, skews not dividing ways, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeometryError(String);

impl GeometryError {
    pub(crate) fn new(msg: String) -> Self {
        GeometryError(msg)
    }
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for GeometryError {}

/// A set-associative cache tag array.
///
/// Data values are *not* stored here: the simulator keeps architectural data
/// in a separate backing store, and the cache model only decides timing and
/// which side effects (installs, evictions, state changes) occur — exactly
/// the signals the attacks and CleanupSpec's undo machinery care about.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    lines: Vec<CacheLine>,
    repl: Box<dyn ReplacementPolicy>,
    /// One indexer per skew group (length = number of skews).
    indexers: Vec<Indexer>,
    /// Ways per skew group (`ways / indexers.len()`).
    group_ways: usize,
    skew_rng: crate::rng::SplitMix64,
    name: &'static str,
    faults: FaultInjector,
    /// Rolling digest over every (set, way) victim choice, plus the count.
    /// Two runs differing only in the replacement RNG seed diverge here
    /// quickly — unless replacement has (been faulted to become)
    /// deterministic. The chaos oracle for `DeterministicL1Replacement`
    /// compares this witness across salted runs.
    victim_digest: u64,
    victims: u64,
}

impl SetAssocCache {
    /// Builds a cache from a configuration.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (see [`CacheConfig::checked_num_sets`]).
    pub fn new(name: &'static str, cfg: CacheConfig) -> Self {
        Self::try_new(name, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a cache, validating the geometry instead of panicking.
    ///
    /// # Errors
    /// Returns [`GeometryError`] for any geometry the indexers cannot
    /// address correctly (non-power-of-two sets, skews not dividing ways).
    pub fn try_new(name: &'static str, cfg: CacheConfig) -> Result<Self, GeometryError> {
        let sets = cfg.checked_num_sets()?;
        // Derive one indexer per skew group. For the CEASER indexer, the
        // groups get independently keyed ciphers (CEASER-S); a modulo
        // indexer is the same for every group (a plain cache).
        let indexers: Vec<Indexer> = (0..cfg.skews)
            .map(|g| match &cfg.indexer {
                Indexer::Modulo => Indexer::Modulo,
                Indexer::Ceaser(_) if g == 0 => cfg.indexer.clone(),
                Indexer::Ceaser(_) => {
                    Indexer::ceaser(cfg.seed ^ (0x5_CE_A5 + g as u64 * 0x9E37_79B9))
                }
            })
            .collect();
        Ok(SetAssocCache {
            sets,
            ways: cfg.ways,
            lines: vec![CacheLine::empty(); sets * cfg.ways],
            repl: cfg.replacement.build(sets, cfg.ways, cfg.seed),
            group_ways: cfg.ways / cfg.skews,
            skew_rng: crate::rng::SplitMix64::new(cfg.seed ^ 0x51ce),
            indexers,
            name,
            faults: FaultInjector::disabled(),
            victim_digest: 0,
            victims: 0,
        })
    }

    /// Cache name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Arms fault injection for this cache (the hierarchy attaches the
    /// shared injector to the L1s, where `DeterministicL1Replacement` bites).
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// `(digest, count)` witness over all victim choices so far.
    pub fn victim_witness(&self) -> (u64, u64) {
        (self.victim_digest, self.victims)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Whether the index function is randomized.
    pub fn is_randomized(&self) -> bool {
        self.indexers[0].is_randomized()
    }

    /// Number of skew groups.
    pub fn skews(&self) -> usize {
        self.indexers.len()
    }

    /// The set this line address maps to (in skew group 0; skewed caches
    /// have one candidate set per group — see [`set_of_group`]).
    ///
    /// [`set_of_group`]: SetAssocCache::set_of_group
    pub fn set_of(&self, line: LineAddr) -> usize {
        self.set_of_group(line, 0)
    }

    /// The candidate set of `line` in skew group `g`.
    pub fn set_of_group(&self, line: LineAddr, g: usize) -> usize {
        self.indexers[g].set_index(line, self.sets)
    }

    /// Locates `line`: (set, way) across all skew groups.
    fn find(&self, line: LineAddr) -> Option<(usize, usize)> {
        for g in 0..self.indexers.len() {
            let set = self.set_of_group(line, g);
            for w in g * self.group_ways..(g + 1) * self.group_ways {
                let l = self.slot(set, w);
                if l.is_valid() && l.line == line {
                    return Some((set, w));
                }
            }
        }
        None
    }

    fn slot(&self, set: usize, way: usize) -> &CacheLine {
        &self.lines[set * self.ways + way]
    }

    fn slot_mut(&mut self, set: usize, way: usize) -> &mut CacheLine {
        &mut self.lines[set * self.ways + way]
    }

    /// Looks up a line without changing any state (a *probe*).
    pub fn probe(&self, line: LineAddr) -> Option<&CacheLine> {
        let (set, way) = self.find(line)?;
        Some(self.slot(set, way))
    }

    /// Mutable lookup without replacement-state update.
    pub fn probe_mut(&mut self, line: LineAddr) -> Option<&mut CacheLine> {
        let (set, way) = self.find(line)?;
        Some(self.slot_mut(set, way))
    }

    /// Records a demand hit: updates replacement state (if the policy keeps
    /// any). Returns `false` if the line is not present.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        match self.find(line) {
            Some((set, way)) => {
                self.repl.on_hit(set, way);
                true
            }
            None => false,
        }
    }

    /// Installs `line` with the given state, evicting a victim if the set is
    /// full. Returns the evicted line, if any.
    ///
    /// If the line is already present, its state/metadata are updated in
    /// place and no eviction occurs.
    pub fn install(
        &mut self,
        line: LineAddr,
        state: Mesi,
        dirty: bool,
        spec: Option<SpecTag>,
    ) -> Option<Evicted> {
        debug_assert!(state != Mesi::Invalid, "cannot install an invalid line");
        // Already present: refresh in place.
        if let Some((set, way)) = self.find(line) {
            let l = self.slot_mut(set, way);
            l.state = state;
            l.dirty = l.dirty || dirty;
            if l.spec.is_none() {
                l.spec = spec;
            }
            self.repl.on_install(set, way);
            return None;
        }
        // Free way in any skew group?
        let groups = self.indexers.len();
        let mut placement = None;
        for g in 0..groups {
            let set = self.set_of_group(line, g);
            if let Some(w) = (g * self.group_ways..(g + 1) * self.group_ways)
                .find(|&w| !self.slot(set, w).is_valid())
            {
                placement = Some((set, w, None));
                break;
            }
        }
        let (set, way, evicted) = placement.unwrap_or_else(|| {
            // Every candidate way is full: pick a victim. Skewed caches
            // choose a random group, then a random way within it; a
            // conventional cache consults its replacement policy.
            if groups == 1 {
                let set = self.set_of_group(line, 0);
                let w = if self
                    .faults
                    .should_fire(FaultKind::DeterministicL1Replacement)
                {
                    0
                } else {
                    self.repl.victim(set)
                };
                let v = self.slot(set, w);
                (
                    set,
                    w,
                    Some(Evicted {
                        line: v.line,
                        dirty: v.dirty,
                        state: v.state,
                        spec: v.spec,
                    }),
                )
            } else {
                let g = self.skew_rng.below(groups as u64) as usize;
                let set = self.set_of_group(line, g);
                let w = g * self.group_ways + self.skew_rng.below(self.group_ways as u64) as usize;
                let v = self.slot(set, w);
                (
                    set,
                    w,
                    Some(Evicted {
                        line: v.line,
                        dirty: v.dirty,
                        state: v.state,
                        spec: v.spec,
                    }),
                )
            }
        });
        if evicted.is_some() {
            self.victims += 1;
            self.victim_digest = crate::rng::mix64(
                self.victim_digest ^ crate::rng::mix64(((set as u64) << 16) ^ way as u64),
            );
        }
        *self.slot_mut(set, way) = CacheLine {
            line,
            state,
            dirty,
            spec,
        };
        self.repl.on_install(set, way);
        evicted
    }

    /// Invalidates `line`. Returns the line's previous contents if present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let (set, way) = self.find(line)?;
        let l = self.slot_mut(set, way);
        let out = Evicted {
            line: l.line,
            dirty: l.dirty,
            state: l.state,
            spec: l.spec,
        };
        *l = CacheLine::empty();
        Some(out)
    }

    /// Changes the coherence state of a present line. Returns the previous
    /// state, or `None` if absent.
    pub fn set_state(&mut self, line: LineAddr, state: Mesi) -> Option<Mesi> {
        let l = self.probe_mut(line)?;
        let prev = l.state;
        if state == Mesi::Invalid {
            self.invalidate(line);
        } else {
            l.state = state;
        }
        Some(prev)
    }

    /// Clears the speculative-install tag of a line (at load retirement).
    pub fn clear_spec(&mut self, line: LineAddr) {
        if let Some(l) = self.probe_mut(line) {
            l.spec = None;
        }
    }

    /// Iterates over all valid lines (diagnostics and invariant tests).
    pub fn iter_valid(&self) -> impl Iterator<Item = &CacheLine> {
        self.lines.iter().filter(|l| l.is_valid())
    }

    /// Number of valid lines currently cached.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.is_valid()).count()
    }

    /// A canonical snapshot of (line, state, dirty) tuples, sorted — used by
    /// the rollback-exactness tests to compare cache states.
    pub fn snapshot(&self) -> Vec<(LineAddr, Mesi, bool)> {
        let mut v: Vec<_> = self
            .iter_valid()
            .map(|l| (l.line, l.state, l.dirty))
            .collect();
        v.sort();
        v
    }

    /// Order-independent digest of the cache contents: tags, MESI states,
    /// dirty bits, and — via the `data` closure — the data of each resident
    /// line. The cache stores no data itself (values live in the
    /// architectural memory), so the caller supplies a per-line data hash.
    /// Two caches with identical resident lines, states, dirty bits, and
    /// data hash to the same value regardless of way placement.
    pub fn content_digest(&self, mut data: impl FnMut(LineAddr) -> u64) -> u64 {
        let mut lines: Vec<u64> = self
            .iter_valid()
            .map(|l| {
                let mut h = crate::rng::mix64(l.line.raw() ^ 0xD16E_5700_0000_0000);
                h = crate::rng::mix64(h ^ l.state as u64);
                h = crate::rng::mix64(h ^ u64::from(l.dirty) << 1);
                crate::rng::mix64(h ^ data(l.line))
            })
            .collect();
        lines.sort_unstable();
        lines
            .into_iter()
            .fold(0x5EED_D16E_5700_0001, |acc, h| crate::rng::mix64(acc ^ h))
    }

    /// Tags a freshly installed line as speculatively installed by `core`.
    pub fn is_spec_installed_by_other(&self, line: LineAddr, requester: CoreId) -> bool {
        self.probe(line)
            .and_then(|l| l.spec)
            .is_some_and(|t| t.core != requester)
    }
}

// Mesi ordering needed for snapshot sorting.
impl PartialOrd for Mesi {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Mesi {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(m: Mesi) -> u8 {
            match m {
                Mesi::Modified => 0,
                Mesi::Exclusive => 1,
                Mesi::Shared => 2,
                Mesi::Invalid => 3,
            }
        }
        rank(*self).cmp(&rank(*other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(repl: ReplacementKind) -> SetAssocCache {
        SetAssocCache::new(
            "test",
            CacheConfig {
                capacity_bytes: 4 * 64 * 2, // 4 sets x 2 ways
                ways: 2,
                replacement: repl,
                indexer: Indexer::Modulo,
                skews: 1,
                seed: 1,
            },
        )
    }

    #[test]
    fn install_then_probe_hits() {
        let mut c = small_cache(ReplacementKind::Lru);
        let l = LineAddr::new(0x40);
        assert!(c.probe(l).is_none());
        assert!(c.install(l, Mesi::Exclusive, false, None).is_none());
        let hit = c.probe(l).expect("line present");
        assert_eq!(hit.state, Mesi::Exclusive);
        assert!(!hit.dirty);
    }

    #[test]
    fn eviction_happens_when_set_full() {
        let mut c = small_cache(ReplacementKind::Lru);
        // Three lines mapping to set 0 (4 sets -> stride 4).
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        let d = LineAddr::new(8);
        assert!(c.install(a, Mesi::Shared, false, None).is_none());
        assert!(c.install(b, Mesi::Shared, false, None).is_none());
        let ev = c.install(d, Mesi::Shared, false, None).expect("must evict");
        assert_eq!(ev.line, a, "LRU victim is the oldest line");
        assert!(c.probe(a).is_none());
        assert!(c.probe(b).is_some() && c.probe(d).is_some());
    }

    #[test]
    fn touch_changes_lru_victim() {
        let mut c = small_cache(ReplacementKind::Lru);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        c.install(a, Mesi::Shared, false, None);
        c.install(b, Mesi::Shared, false, None);
        assert!(c.touch(a)); // a becomes MRU; b is victim
        let ev = c
            .install(LineAddr::new(8), Mesi::Shared, false, None)
            .unwrap();
        assert_eq!(ev.line, b);
    }

    #[test]
    fn reinstall_does_not_evict() {
        let mut c = small_cache(ReplacementKind::Lru);
        let a = LineAddr::new(0);
        c.install(a, Mesi::Shared, false, None);
        assert!(c.install(a, Mesi::Modified, true, None).is_none());
        let l = c.probe(a).unwrap();
        assert_eq!(l.state, Mesi::Modified);
        assert!(l.dirty);
    }

    #[test]
    fn invalidate_returns_previous_contents() {
        let mut c = small_cache(ReplacementKind::Lru);
        let a = LineAddr::new(0);
        c.install(a, Mesi::Modified, true, None);
        let prev = c.invalidate(a).expect("was present");
        assert!(prev.dirty);
        assert_eq!(prev.state, Mesi::Modified);
        assert!(c.probe(a).is_none());
        assert!(c.invalidate(a).is_none(), "second invalidate is a no-op");
    }

    #[test]
    fn spec_tag_tracked_and_cleared() {
        use crate::types::{EpochId, LoadId};
        let mut c = small_cache(ReplacementKind::Lru);
        let a = LineAddr::new(0);
        let tag = SpecTag {
            core: CoreId(1),
            epoch: EpochId::zero(),
            load: LoadId(9),
            installed_at: 100,
        };
        c.install(a, Mesi::Exclusive, false, Some(tag));
        assert!(c.is_spec_installed_by_other(a, CoreId(0)));
        assert!(!c.is_spec_installed_by_other(a, CoreId(1)));
        c.clear_spec(a);
        assert!(!c.is_spec_installed_by_other(a, CoreId(0)));
    }

    #[test]
    fn set_state_transitions() {
        let mut c = small_cache(ReplacementKind::Lru);
        let a = LineAddr::new(0);
        c.install(a, Mesi::Exclusive, false, None);
        assert_eq!(c.set_state(a, Mesi::Shared), Some(Mesi::Exclusive));
        assert_eq!(c.probe(a).unwrap().state, Mesi::Shared);
        assert_eq!(c.set_state(a, Mesi::Invalid), Some(Mesi::Shared));
        assert!(c.probe(a).is_none());
        assert_eq!(c.set_state(a, Mesi::Modified), None);
    }

    #[test]
    fn snapshot_is_canonical() {
        let mut c = small_cache(ReplacementKind::Lru);
        c.install(LineAddr::new(5), Mesi::Shared, false, None);
        c.install(LineAddr::new(1), Mesi::Exclusive, false, None);
        let s = c.snapshot();
        assert_eq!(s.len(), 2);
        assert!(s[0].0 < s[1].0);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn random_repl_evicts_any_way_deterministically() {
        let mut a = small_cache(ReplacementKind::Random);
        let mut b = small_cache(ReplacementKind::Random);
        for i in 0..32u64 {
            let line = LineAddr::new(i * 4); // all map to set 0
            let ea = a.install(line, Mesi::Shared, false, None);
            let eb = b.install(line, Mesi::Shared, false, None);
            assert_eq!(
                ea.map(|e| e.line),
                eb.map(|e| e.line),
                "same seed, same victims"
            );
        }
    }

    #[test]
    fn skewed_cache_basic_roundtrip() {
        let mut c = SetAssocCache::new(
            "skewed",
            CacheConfig {
                capacity_bytes: 64 * 64 * 8, // 64 sets x 8 ways, 2 skews
                ways: 8,
                replacement: ReplacementKind::Random,
                indexer: Indexer::ceaser(0xABCD),
                skews: 2,
                seed: 9,
            },
        );
        assert_eq!(c.skews(), 2);
        for i in 0..1000u64 {
            c.install(LineAddr::new(i * 7), Mesi::Shared, false, None);
        }
        // Recently installed lines are findable; probe/invalidate agree.
        let probe_hits = (900..1000u64)
            .filter(|i| c.probe(LineAddr::new(i * 7)).is_some())
            .count();
        assert!(
            probe_hits > 50,
            "most recent installs resident: {probe_hits}"
        );
        let line = LineAddr::new(999 * 7);
        if c.probe(line).is_some() {
            assert!(c.invalidate(line).is_some());
            assert!(c.probe(line).is_none());
        }
        assert!(c.occupancy() <= 64 * 8);
    }

    #[test]
    fn skewed_groups_use_different_index_functions() {
        let c = SetAssocCache::new(
            "skewed",
            CacheConfig {
                capacity_bytes: 64 * 64 * 8,
                ways: 8,
                replacement: ReplacementKind::Random,
                indexer: Indexer::ceaser(0xABCD),
                skews: 2,
                seed: 9,
            },
        );
        let differing = (0..512u64)
            .filter(|&i| c.set_of_group(LineAddr::new(i), 0) != c.set_of_group(LineAddr::new(i), 1))
            .count();
        assert!(differing > 400, "groups must decorrelate ({differing}/512)");
    }

    #[test]
    fn skewed_cache_never_duplicates_a_line() {
        let mut c = SetAssocCache::new(
            "skewed",
            CacheConfig {
                capacity_bytes: 16 * 64 * 4, // small: heavy conflict
                ways: 4,
                replacement: ReplacementKind::Random,
                indexer: Indexer::ceaser(3),
                skews: 2,
                seed: 4,
            },
        );
        for round in 0..5 {
            for i in 0..64u64 {
                c.install(LineAddr::new(i), Mesi::Shared, false, None);
                let _ = round;
            }
        }
        // Count copies per line across the whole array.
        use std::collections::HashMap;
        let mut copies: HashMap<u64, usize> = HashMap::new();
        for l in c.iter_valid() {
            *copies.entry(l.line.raw()).or_default() += 1;
        }
        assert!(copies.values().all(|&n| n == 1), "duplicate lines present");
    }

    #[test]
    #[should_panic(expected = "must divide ways")]
    fn skews_must_divide_ways() {
        let _ = SetAssocCache::new(
            "bad",
            CacheConfig {
                capacity_bytes: 64 * 64 * 8,
                ways: 8,
                replacement: ReplacementKind::Random,
                indexer: Indexer::Modulo,
                skews: 3,
                seed: 0,
            },
        );
    }

    #[test]
    fn geometry_matches_table4() {
        // L1-D: 64 KB, 8-way => 128 sets. L2: 2 MB, 16-way => 2048 sets.
        let l1 = CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 8,
            replacement: ReplacementKind::Lru,
            indexer: Indexer::Modulo,
            skews: 1,
            seed: 0,
        };
        assert_eq!(l1.num_sets(), 128);
        let l2 = CacheConfig {
            capacity_bytes: 2 * 1024 * 1024,
            ways: 16,
            replacement: ReplacementKind::Lru,
            indexer: Indexer::Modulo,
            skews: 1,
            seed: 0,
        };
        assert_eq!(l2.num_sets(), 2048);
    }

    #[test]
    fn non_power_of_two_sets_is_a_construction_error() {
        // 3 sets x 4 ways: the masking indexers would silently alias sets.
        let cfg = CacheConfig {
            capacity_bytes: 3 * 64 * 4,
            ways: 4,
            replacement: ReplacementKind::Lru,
            indexer: Indexer::Modulo,
            skews: 1,
            seed: 0,
        };
        let err = cfg.checked_num_sets().unwrap_err();
        assert!(err.to_string().contains("2^k"), "got: {err}");
        assert!(SetAssocCache::try_new("bad", cfg).is_err());
    }

    #[test]
    fn ragged_capacity_is_a_construction_error() {
        let cfg = CacheConfig {
            capacity_bytes: 64 * 4 + 32, // not a whole number of lines
            ways: 4,
            replacement: ReplacementKind::Lru,
            indexer: Indexer::Modulo,
            skews: 1,
            seed: 0,
        };
        assert!(cfg.checked_num_sets().is_err());
        let zero_ways = CacheConfig { ways: 0, ..cfg };
        assert!(zero_ways.checked_num_sets().is_err());
    }

    #[test]
    fn deterministic_replacement_fault_pins_the_victim_choice() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan};
        // Two random-replacement caches with different seeds, both faulted:
        // victim choices collapse to way 0, so the witnesses agree despite
        // the differing RNG streams.
        let mk = |seed: u64| {
            let mut c = SetAssocCache::new(
                "test",
                CacheConfig {
                    capacity_bytes: 4 * 64 * 2,
                    ways: 2,
                    replacement: ReplacementKind::Random,
                    indexer: Indexer::Modulo,
                    skews: 1,
                    seed,
                },
            );
            c.set_fault_injector(FaultInjector::new(FaultPlan::single(
                FaultKind::DeterministicL1Replacement,
            )));
            for i in 0..32u64 {
                c.install(LineAddr::new(i * 4), Mesi::Shared, false, None);
            }
            c.victim_witness()
        };
        let (da, na) = mk(1);
        let (db, nb) = mk(999);
        assert_eq!(na, 30);
        assert_eq!(na, nb);
        assert_eq!(da, db, "faulted victim streams must be identical");
    }

    #[test]
    fn victim_witness_diverges_across_random_seeds() {
        let mk = |seed: u64| {
            let mut c = SetAssocCache::new(
                "test",
                CacheConfig {
                    capacity_bytes: 4 * 64 * 2,
                    ways: 2,
                    replacement: ReplacementKind::Random,
                    indexer: Indexer::Modulo,
                    skews: 1,
                    seed,
                },
            );
            for i in 0..32u64 {
                c.install(LineAddr::new(i * 4), Mesi::Shared, false, None);
            }
            c.victim_witness()
        };
        let (da, na) = mk(1);
        let (db, nb) = mk(999);
        assert_eq!(na, nb);
        assert_ne!(da, db, "independent RNG streams should diverge");
    }

    #[test]
    fn content_digest_is_placement_independent() {
        // Same lines installed in different orders (different LRU / way
        // placement) must produce identical digests.
        let mut a = small_cache(ReplacementKind::Lru);
        let mut b = small_cache(ReplacementKind::Lru);
        // 0 and 4 share a set; swapping install order swaps their ways.
        for l in [0u64, 4, 1] {
            a.install(LineAddr::new(l), Mesi::Shared, false, None);
        }
        for l in [4u64, 0, 1] {
            b.install(LineAddr::new(l), Mesi::Shared, false, None);
        }
        let data = |l: LineAddr| l.raw().wrapping_mul(0x9E37);
        assert_eq!(a.content_digest(data), b.content_digest(data));
    }

    #[test]
    fn content_digest_sees_state_dirty_and_data() {
        let mut a = small_cache(ReplacementKind::Lru);
        a.install(LineAddr::new(4), Mesi::Modified, true, None);
        let mut b = small_cache(ReplacementKind::Lru);
        b.install(LineAddr::new(4), Mesi::Modified, false, None);
        let data = |l: LineAddr| l.raw();
        assert_ne!(a.content_digest(data), b.content_digest(data), "dirty bit");
        let mut c = small_cache(ReplacementKind::Lru);
        c.install(LineAddr::new(4), Mesi::Shared, true, None);
        assert_ne!(a.content_digest(data), c.content_digest(data), "state");
        assert_ne!(
            a.content_digest(|l| l.raw()),
            a.content_digest(|l| l.raw() ^ 1),
            "data"
        );
    }
}
