//! The simulated memory hierarchy: per-core private L1-D caches, a shared
//! inclusive L2 with a MESI directory, and DRAM — the configuration of
//! Table 4 in the paper, generalized to multiple cores.
//!
//! # Timing model
//!
//! Accesses are *cycle-stamped*: an access issued at cycle `t` computes its
//! service path immediately (probing tags without changing them) and returns
//! the completion cycle. Cache-state changes for load misses (installs and
//! the evictions they cause) are **deferred to the completion cycle**, via
//! the MSHR, exactly as Section 3.3 of the paper requires: *"any cache
//! changes like install and victim replacement are made only when a load
//! returns and is for the current EpochID"*. This is what makes squashing a
//! still-inflight load free — CleanupSpec just bumps the epoch and the fill
//! is dropped.
//!
//! Stores are only performed at commit time (they are non-speculative; RFOs
//! are issued non-speculatively to prevent Spectre-Prime, Section 4), so
//! their state changes are applied immediately.
//!
//! # Security hooks
//!
//! The hierarchy is mechanism, not policy: the speculation schemes in the
//! `cleanupspec` crate decide *when* to call the cleanup API
//! ([`MemHierarchy::cleanup_invalidate`], [`MemHierarchy::cleanup_restore`],
//! [`MemHierarchy::drop_core_inflight`]), whether loads may trigger
//! coherence downgrades (`allow_downgrade`, the GetS vs GetS-Safe choice of
//! Section 3.5), and whether fills are tagged for speculation-window
//! protection (Section 3.6).

use crate::cache::{CacheConfig, Evicted, GeometryError, Mesi, SetAssocCache};
use crate::ceaser::Indexer;
use crate::dram::Dram;
use crate::error::SimError;
use crate::fault::{FaultInjector, FaultKind};
use crate::mshr::{LoadPath, MshrEntry, MshrFile, MshrState, MshrToken, SefeRecord};
use crate::replacement::ReplacementKind;
use crate::stats::{LoadClass, MemStats, MsgClass, Traffic};
use crate::types::{CoreId, Cycle, EpochId, LineAddr, LoadId, SpecTag};
use cleanupspec_obs::{CacheLevel, Observer, SimEvent};
use std::collections::HashMap;

/// Directory entry for one L2-resident line.
#[derive(Clone, Copy, Debug, Default)]
struct DirEntry {
    /// Bitmap of cores whose L1 holds the line.
    sharers: u64,
    /// Core holding the line in M or E, if any.
    owner: Option<CoreId>,
}

impl DirEntry {
    fn has(&self, core: CoreId) -> bool {
        self.sharers & (1 << core.index()) != 0
    }
    fn add(&mut self, core: CoreId) {
        self.sharers |= 1 << core.index();
    }
    fn remove(&mut self, core: CoreId) {
        self.sharers &= !(1 << core.index());
        if self.owner == Some(core) {
            self.owner = None;
        }
    }
    fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }
    fn sharer_list(&self, num_cores: usize) -> Vec<CoreId> {
        (0..num_cores)
            .filter(|c| self.sharers & (1 << c) != 0)
            .map(CoreId)
            .collect()
    }
}

/// Memory-hierarchy configuration (defaults follow Table 4 of the paper).
///
/// `PartialEq` lets harnesses group security modes into hardware
/// equivalence classes (same [`MemConfig`] after
/// `SecurityMode::apply_mem_config`) — the soundness condition for
/// sharing a warmed cs-snap snapshot across modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of cores (private L1s).
    pub num_cores: usize,
    /// L1-D capacity in bytes (64 KB).
    pub l1_capacity: usize,
    /// L1-D associativity (8).
    pub l1_ways: usize,
    /// L1-D replacement policy (baseline: LRU; CleanupSpec: Random).
    pub l1_replacement: ReplacementKind,
    /// Shared L2 capacity in bytes (2 MB/core in the paper's 1-core eval).
    pub l2_capacity: usize,
    /// L2 associativity (16).
    pub l2_ways: usize,
    /// L2 replacement policy.
    pub l2_replacement: ReplacementKind,
    /// CEASER-randomize the L2 index (adds `l2_crypto_penalty` to latency).
    pub l2_randomized: bool,
    /// Skew partitions for the L2 (Skewed-CEASER / CEASER-S when combined
    /// with `l2_randomized`); `1` = conventional indexing.
    pub l2_skews: usize,
    /// L1 round-trip latency in cycles (1).
    pub l1_rt: Cycle,
    /// L2 round-trip latency in cycles, before the crypto penalty (8).
    pub l2_rt: Cycle,
    /// Extra cycles for CEASER address encryption (2).
    pub l2_crypto_penalty: Cycle,
    /// DRAM round trip after L2 (100 cycles = 50 ns at 2 GHz).
    pub dram_rt: Cycle,
    /// Extra cycles to service a line from a remote L1 (M/E downgrade).
    pub remote_penalty: Cycle,
    /// Latency of a store upgrade (S -> M) or RFO beyond the hit latency.
    pub upgrade_latency: Cycle,
    /// MSHR entries per core (64, Section 6.6).
    pub mshrs_per_core: usize,
    /// Enable speculation-window protection (dummy misses, Section 3.6).
    pub window_protection: bool,
    /// Seed for randomized structures (replacement, CEASER keys).
    pub seed: u64,
    /// Extra salt XORed into the per-core L1 seeds only. Two runs differing
    /// solely in this salt draw different L1 replacement streams while every
    /// other randomized structure (CEASER keys, L2 policy) stays identical —
    /// the victim-randomness witness `cs-chaos` uses to detect
    /// `DeterministicL1Replacement`.
    pub repl_seed_salt: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            num_cores: 1,
            l1_capacity: 64 * 1024,
            l1_ways: 8,
            l1_replacement: ReplacementKind::Lru,
            l2_capacity: 2 * 1024 * 1024,
            l2_ways: 16,
            l2_replacement: ReplacementKind::Lru,
            l2_randomized: false,
            l2_skews: 1,
            l1_rt: 1,
            l2_rt: 8,
            l2_crypto_penalty: 2,
            dram_rt: 100,
            remote_penalty: 14,
            upgrade_latency: 10,
            mshrs_per_core: 64,
            window_protection: false,
            seed: 0x00C1_EA9A_57EC,
            repl_seed_salt: 0,
        }
    }
}

impl MemConfig {
    /// Effective L2 round trip, including the CEASER penalty if randomized.
    pub fn l2_effective_rt(&self) -> Cycle {
        self.l2_rt
            + if self.l2_randomized {
                self.l2_crypto_penalty
            } else {
                0
            }
    }
}

/// How a load should access the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadKind {
    /// Normal demand load that installs into the caches.
    Demand,
    /// InvisiSpec invisible load: obtains latency/data with *no* state
    /// change anywhere (Section 2.3).
    Invisible,
    /// InvisiSpec commit-time update load: installs into the caches
    /// (counted as `UpdateLoad` traffic).
    Expose,
}

/// Per-load request parameters.
#[derive(Clone, Copy, Debug)]
pub struct LoadReq {
    /// Load identifier (SEFE `LoadID`), assigned by the load queue.
    pub load: LoadId,
    /// Whether the load is speculative at issue (SEFE `isSpec`).
    pub spec: bool,
    /// Whether the load may force a remote M/E -> S downgrade. CleanupSpec
    /// issues speculative loads with GetS-Safe (`false`); the load is then
    /// deferred if it would downgrade (Section 3.5).
    pub allow_downgrade: bool,
    /// Access kind.
    pub kind: LoadKind,
    /// Tag installs for speculation-window protection.
    pub tag_spec_install: bool,
}

impl LoadReq {
    /// A plain non-speculative demand load.
    pub fn non_spec(load: LoadId) -> Self {
        LoadReq {
            load,
            spec: false,
            allow_downgrade: true,
            kind: LoadKind::Demand,
            tag_spec_install: false,
        }
    }
}

/// Why a line most recently left a core's L1 — the scheme-overhead
/// provenance of the *next* demand miss on that line. CleanupSpec's
/// security mechanisms cause extra misses that a baseline LRU cache
/// would not take; tagging them lets the pipeline's CPI stack charge
/// those miss cycles to the responsible mechanism instead of to a
/// generic load-miss bucket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissProvenance {
    /// The line was invalidated by a CleanupSpec transient-install
    /// cleanup (Section 3.3) — the re-fetch is cleanup overhead.
    TransientInval,
    /// The line was evicted under the L1 Random replacement policy
    /// (Section 3.4) — the re-fetch may be a random-replacement miss
    /// an LRU baseline would have avoided.
    RandomRepl,
}

/// Result of issuing a load.
#[derive(Clone, Copy, Debug)]
pub struct LoadOutcome {
    /// Cycle at which the data is available.
    pub complete_at: Cycle,
    /// Service path.
    pub path: LoadPath,
    /// MSHR token for L1 misses that will fill (collect the SEFE with
    /// [`MemHierarchy::collect`]); `None` for hits, merged misses, dummy
    /// misses, and invisible loads.
    pub token: Option<MshrToken>,
    /// The load was refused under GetS-Safe (it would downgrade a remote
    /// M/E line) and must be retried once unsquashable (Section 3.5).
    pub deferred: bool,
    /// Scheme-overhead attribution of this miss, when the line last left
    /// this core's L1 for a scheme-specific reason (`None` for hits and
    /// ordinary misses).
    pub provenance: Option<MissProvenance>,
}

/// Result of a store.
#[derive(Clone, Copy, Debug)]
pub struct StoreOutcome {
    /// Cycle at which the store is globally performed.
    pub complete_at: Cycle,
}

/// The simulated memory hierarchy.
///
/// `Clone` deep-copies every array, MSHR file, DRAM queue, CEASER cipher,
/// and RNG stream — the memory half of a cs-snap [`Snapshot`]. The
/// observer handle and fault injector are shared (`Arc`) with the clone;
/// the injector's firing counters are snapshotted separately by
/// [`crate::fault::FaultInjector::counters_snapshot`].
#[derive(Clone, Debug)]
pub struct MemHierarchy {
    cfg: MemConfig,
    l1: Vec<SetAssocCache>,
    l2: SetAssocCache,
    dir: HashMap<LineAddr, DirEntry>,
    mshr: Vec<MshrFile>,
    dram: Dram,
    epoch: Vec<EpochId>,
    stats: MemStats,
    traffic: Traffic,
    obs: Observer,
    faults: FaultInjector,
    /// Per-core map from line address to why that line most recently left
    /// the core's L1 for a scheme-attributable reason. Written by the
    /// cleanup/eviction paths, consumed (removed) by the next demand miss
    /// on the line, which reports it via [`LoadOutcome::provenance`].
    miss_prov: Vec<HashMap<LineAddr, MissProvenance>>,
    /// Cycle of the most recent externally stamped operation; events from
    /// calls without a `now` parameter (cleanup ops, retires) are stamped
    /// with it. Exact in a live simulation, where `advance(now)` runs each
    /// cycle before the cores act.
    now_hint: Cycle,
    /// Per-core cleanup episode currently registered by the pipeline's
    /// squash site ([`MemHierarchy::begin_cleanup_episode`]); stamped onto
    /// every cleanup-side event. 0 = no episode registered yet.
    episode: Vec<u64>,
    /// Sequence number of the squash that opened each core's registered
    /// episode (stamped onto `CleanupInval`/`CleanupRestore`).
    episode_seq: Vec<u64>,
}

impl MemHierarchy {
    /// Builds the hierarchy for a configuration.
    ///
    /// # Panics
    /// Panics if `num_cores` is 0 or exceeds 64, or if cache geometry is
    /// not a power of two (see [`MemHierarchy::try_new`]).
    pub fn new(cfg: MemConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the hierarchy, validating the configuration instead of
    /// panicking. The set indexers mask with `num_sets - 1`, so geometry
    /// errors caught here would otherwise silently alias cache sets in
    /// release builds.
    ///
    /// # Errors
    /// Returns [`SimError::Geometry`] if the core count is outside `1..=64`
    /// or either cache level has an invalid geometry.
    pub fn try_new(cfg: MemConfig) -> Result<Self, SimError> {
        if cfg.num_cores < 1 || cfg.num_cores > 64 {
            return Err(GeometryError::new(format!(
                "num_cores must be in 1..=64, got {}",
                cfg.num_cores
            ))
            .into());
        }
        let l1 = (0..cfg.num_cores)
            .map(|c| {
                SetAssocCache::try_new(
                    "l1d",
                    CacheConfig {
                        capacity_bytes: cfg.l1_capacity,
                        ways: cfg.l1_ways,
                        replacement: cfg.l1_replacement,
                        indexer: Indexer::Modulo,
                        skews: 1,
                        seed: cfg.seed ^ (c as u64 + 1) ^ cfg.repl_seed_salt,
                    },
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let l2_indexer = if cfg.l2_randomized {
            Indexer::ceaser(cfg.seed ^ 0xCEA5_E000)
        } else {
            Indexer::Modulo
        };
        let l2 = SetAssocCache::try_new(
            "l2",
            CacheConfig {
                capacity_bytes: cfg.l2_capacity,
                ways: cfg.l2_ways,
                replacement: cfg.l2_replacement,
                indexer: l2_indexer,
                skews: cfg.l2_skews,
                seed: cfg.seed ^ 0x12,
            },
        )?;
        let mshr = (0..cfg.num_cores)
            .map(|c| MshrFile::new(CoreId(c), cfg.mshrs_per_core))
            .collect();
        Ok(MemHierarchy {
            dram: Dram::new(cfg.dram_rt),
            epoch: vec![EpochId::zero(); cfg.num_cores],
            l1,
            l2,
            dir: HashMap::new(),
            mshr,
            stats: MemStats::default(),
            traffic: Traffic::default(),
            obs: Observer::disabled(),
            faults: FaultInjector::disabled(),
            miss_prov: vec![HashMap::new(); cfg.num_cores],
            now_hint: 0,
            episode: vec![0; cfg.num_cores],
            episode_seq: vec![0; cfg.num_cores],
            cfg,
        })
    }

    /// Arms fault injection, propagating the shared handle to the L1 caches
    /// (where the `DeterministicL1Replacement` hook lives).
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        for c in &mut self.l1 {
            c.set_fault_injector(faults.clone());
        }
        self.faults = faults;
    }

    /// The fault injector threaded through this hierarchy (disabled unless
    /// armed); the schemes consult it for scheme-level faults.
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// Attaches the event-bus observer, propagating it to every MSHR file.
    /// Emits the initial [`SimEvent::CeaserRemap`] keying event when the L2
    /// index is randomized.
    pub fn set_observer(&mut self, obs: Observer) {
        for f in &mut self.mshr {
            f.set_observer(obs.clone());
        }
        if self.cfg.l2_randomized {
            obs.emit(
                self.now_hint,
                SimEvent::CeaserRemap {
                    level: CacheLevel::L2,
                    epoch: 0,
                },
            );
        }
        self.obs = obs;
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Current CleanupSpec epoch of a core.
    pub fn epoch(&self, core: CoreId) -> EpochId {
        self.epoch[core.index()]
    }

    /// Registers the cleanup episode about to run for `core`. The pipeline
    /// calls this from its squash site immediately before handing the
    /// squashed loads to the scheme, mirroring the `now_hint` pattern:
    /// cleanup entry points (`cleanup_invalidate`, `cleanup_restore`,
    /// `drop_core_inflight`) have no episode parameter of their own and
    /// stamp their events from this registration instead.
    pub fn begin_cleanup_episode(&mut self, core: CoreId, episode: u64, seq: u64) {
        self.episode[core.index()] = episode;
        self.episode_seq[core.index()] = seq;
    }

    /// The cleanup episode currently registered for `core` (0 = none).
    pub fn current_episode(&self, core: CoreId) -> u64 {
        self.episode[core.index()]
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Network-traffic counters.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// Records externally generated traffic (e.g. CleanupSpec window-extend
    /// messages, which are produced by the core-side scheme).
    pub fn note_traffic(&mut self, class: MsgClass, n: u64) {
        self.traffic.add(class, n);
    }

    /// Clears statistics and traffic counters (end-of-warm-up). Cache and
    /// directory state is preserved.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.traffic = Traffic::default();
    }

    /// Canonical snapshot of one core's L1 (for rollback-exactness tests).
    pub fn l1_snapshot(&self, core: CoreId) -> Vec<(LineAddr, Mesi, bool)> {
        self.l1[core.index()].snapshot()
    }

    /// Canonical snapshot of the L2.
    pub fn l2_snapshot(&self) -> Vec<(LineAddr, Mesi, bool)> {
        self.l2.snapshot()
    }

    /// Order-independent content digest of one core's L1 (tags + MESI +
    /// dirty bits + per-line data supplied by `data`). Two caches with the
    /// same resident lines, states, and data hash identically regardless of
    /// physical placement — the cache-restoration oracle compares these.
    pub fn l1_digest(&self, core: CoreId, data: impl FnMut(LineAddr) -> u64) -> u64 {
        self.l1[core.index()].content_digest(data)
    }

    /// Order-independent content digest of the shared L2 (see [`Self::l1_digest`]).
    pub fn l2_digest(&self, data: impl FnMut(LineAddr) -> u64) -> u64 {
        self.l2.content_digest(data)
    }

    /// Read-only view of a core's L1 (diagnostics).
    pub fn l1(&self, core: CoreId) -> &SetAssocCache {
        &self.l1[core.index()]
    }

    /// Read-only view of the L2.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// Per-core MSHR occupancy (diagnostics).
    pub fn mshr_occupancy(&self, core: CoreId) -> usize {
        self.mshr[core.index()].occupancy()
    }

    /// Per-core count of live speculation-tagged MSHR entries — the pending
    /// SEFEs (diagnostics, surfaced by the livelock dump).
    pub fn sefe_occupancy(&self, core: CoreId) -> usize {
        self.mshr[core.index()].spec_occupancy()
    }

    /// `(digest, count)` witness over one core's L1 victim choices (see
    /// [`SetAssocCache::victim_witness`]); the chaos replacement oracle
    /// compares these across salted runs.
    pub fn l1_victim_witness(&self, core: CoreId) -> (u64, u64) {
        self.l1[core.index()].victim_witness()
    }

    // ------------------------------------------------------------------
    // Loads
    // ------------------------------------------------------------------

    /// Issues a load for `line` from `core` at cycle `now`.
    ///
    /// # Errors
    /// Returns [`SimError::MshrFull`] when no MSHR entry is free; the core
    /// should retry on a later cycle.
    pub fn load(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: Cycle,
        req: LoadReq,
    ) -> Result<LoadOutcome, SimError> {
        self.now_hint = now;
        self.mshr[core.index()].stamp(now);
        match req.kind {
            LoadKind::Invisible => Ok(self.load_invisible(core, line, now)),
            LoadKind::Demand | LoadKind::Expose => self.load_demand(core, line, now, req),
        }
    }

    fn msg_class_for(kind: LoadKind) -> MsgClass {
        match kind {
            LoadKind::Demand => MsgClass::Regular,
            LoadKind::Invisible => MsgClass::SpecLoad,
            LoadKind::Expose => MsgClass::UpdateLoad,
        }
    }

    /// InvisiSpec invisible load: classify the path and compute its latency
    /// without changing any cache, directory, or replacement state.
    fn load_invisible(&mut self, core: CoreId, line: LineAddr, now: Cycle) -> LoadOutcome {
        let cls = MsgClass::SpecLoad;
        let (path, latency) = if self.l1[core.index()].probe(line).is_some() {
            (LoadPath::L1Hit, self.cfg.l1_rt)
        } else if let Some(_l2line) = self.l2.probe(line) {
            let dir = self.dir.get(&line).copied().unwrap_or_default();
            self.traffic.add(cls, 2);
            match dir.owner {
                Some(o) if o != core => (
                    LoadPath::RemoteL1,
                    self.cfg.l2_effective_rt() + self.cfg.remote_penalty,
                ),
                _ => (LoadPath::L2Hit, self.cfg.l2_effective_rt()),
            }
        } else {
            self.traffic.add(cls, 4);
            (LoadPath::Mem, self.cfg.l2_effective_rt() + self.cfg.dram_rt)
        };
        self.stats.record_path(path);
        self.stats.record_latency(path, latency);
        LoadOutcome {
            complete_at: now + latency,
            path,
            token: None,
            deferred: false,
            provenance: None,
        }
    }

    fn load_demand(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: Cycle,
        req: LoadReq,
    ) -> Result<LoadOutcome, SimError> {
        let ci = core.index();
        let cls = Self::msg_class_for(req.kind);

        // L1 hit: 1-cycle round trip; replacement-state update.
        if self.l1[ci].probe(line).is_some() {
            self.l1[ci].touch(line);
            self.stats.record_path(LoadPath::L1Hit);
            self.stats.record_latency(LoadPath::L1Hit, self.cfg.l1_rt);
            self.stats.classify(LoadClass::SafeCache);
            return Ok(LoadOutcome {
                complete_at: now + self.cfg.l1_rt,
                path: LoadPath::L1Hit,
                token: None,
                deferred: false,
                provenance: None,
            });
        }

        // The line is absent from our L1: consume any pending attribution
        // of why it left (cleanup invalidate / random replacement). The
        // deferred and MSHR-full paths below re-insert it so the retry
        // still carries the attribution.
        let provenance = self.miss_prov[ci].remove(&line);

        // Merge with an outstanding miss to the same line: the merged load
        // shares the response and causes no fills of its own.
        if let Some(e) = self.mshr[ci].find_pending(line) {
            let (at, path) = (e.complete_at, e.path);
            self.stats.record_path(path);
            self.stats
                .record_latency(path, at.max(now + self.cfg.l1_rt) - now);
            self.stats.classify(match path {
                LoadPath::Mem => LoadClass::Dram,
                LoadPath::RemoteL1 => LoadClass::RemoteEM,
                _ => LoadClass::SafeCache,
            });
            self.stats.count_provenance(provenance);
            return Ok(LoadOutcome {
                complete_at: at.max(now + self.cfg.l1_rt),
                path,
                token: None,
                deferred: false,
                provenance,
            });
        }

        // Probe the L2.
        let (path, latency, wants_l2_fill) = if let Some(l2line) = self.l2.probe(line) {
            // Speculation-window protection (Section 3.6): a hit on a line
            // transiently installed by ANOTHER core is serviced as a dummy
            // miss — from memory if the L2 copy itself is transient, else
            // from the L2 — with no state change at all.
            let spec_owner = l2line.spec.map(|t| t.core);
            let l2_spec_other = spec_owner.is_some_and(|o| o != core);
            if self.cfg.window_protection && l2_spec_other {
                let latency = self.cfg.l2_effective_rt() + self.cfg.dram_rt;
                self.traffic.add(cls, 4);
                self.stats.record_path(LoadPath::DummyMiss);
                self.stats.record_latency(LoadPath::DummyMiss, latency);
                self.stats.classify(LoadClass::SafeCache);
                // The owner's speculation window has not squashed yet, so
                // the dummy miss belongs to the owner's *prospective*
                // episode: the one that will open if the window squashes.
                let owner = spec_owner.expect("l2_spec_other implies owner");
                self.obs.emit(
                    now,
                    SimEvent::DummyMiss {
                        core: ci,
                        line: line.raw(),
                        owner: owner.index(),
                        episode: self.episode[owner.index()] + 1,
                    },
                );
                self.stats.count_provenance(provenance);
                return Ok(LoadOutcome {
                    complete_at: now + latency,
                    path: LoadPath::DummyMiss,
                    token: None,
                    deferred: false,
                    provenance,
                });
            }
            let dir = self.dir.get(&line).copied().unwrap_or_default();
            match dir.owner {
                Some(owner) if owner != core => {
                    // Remote M/E line: servicing it downgrades the owner.
                    self.stats.classify(LoadClass::RemoteEM);
                    // Fault hook: EarlyCoherenceDowngrade breaks GetS-Safe —
                    // the speculative load downgrades the remote owner at
                    // request time, exactly the coherence channel Sec. 3.5
                    // closes. The opportunity is the refusal moment itself.
                    let forced = !req.allow_downgrade
                        && self.faults.should_fire(FaultKind::EarlyCoherenceDowngrade);
                    if !req.allow_downgrade && !forced {
                        // GetS-Safe fails: NACK, no state change (Sec. 3.5).
                        self.stats.gets_safe_refusals += 1;
                        self.traffic.add(MsgClass::Coherence, 2);
                        self.obs.emit(
                            now,
                            SimEvent::GetsSafeDefer {
                                core: ci,
                                line: line.raw(),
                                owner: owner.index(),
                            },
                        );
                        if let Some(p) = provenance {
                            // The deferred load retries once unsquashable;
                            // keep the attribution for the retry.
                            self.miss_prov[ci].insert(line, p);
                        }
                        return Ok(LoadOutcome {
                            complete_at: now + self.cfg.l2_effective_rt(),
                            path: LoadPath::RemoteL1,
                            token: None,
                            deferred: true,
                            provenance: None,
                        });
                    }
                    // Downgrade the owner now (at request time). A `forced`
                    // downgrade is flagged speculative in the event record.
                    self.downgrade_owner_as(owner, line, forced);
                    self.traffic.add(cls, 2);
                    self.traffic.add(MsgClass::Coherence, 2);
                    (
                        LoadPath::RemoteL1,
                        self.cfg.l2_effective_rt() + self.cfg.remote_penalty,
                        false,
                    )
                }
                _ => {
                    self.stats.classify(LoadClass::SafeCache);
                    self.traffic.add(cls, 2);
                    self.l2.touch(line);
                    (LoadPath::L2Hit, self.cfg.l2_effective_rt(), false)
                }
            }
        } else {
            // L2 miss: DRAM.
            self.stats.classify(LoadClass::Dram);
            self.traffic.add(cls, 4);
            let _ = self.dram.read(now);
            self.obs.emit(
                now,
                SimEvent::DramRead {
                    core: ci,
                    line: line.raw(),
                },
            );
            (
                LoadPath::Mem,
                self.cfg.l2_effective_rt() + self.cfg.dram_rt,
                true,
            )
        };

        self.stats.record_path(path);
        self.stats.record_latency(path, latency);
        // InvisiSpec update (Expose) loads have no load-queue entry waiting
        // to collect them: they fill and self-free as orphans.
        let auto_free = req.kind == LoadKind::Expose;
        let token = self.mshr[ci]
            .alloc(MshrEntry {
                line,
                core,
                epoch: self.epoch[ci],
                load: req.load,
                is_spec: req.spec && !auto_free,
                complete_at: now + latency,
                path,
                wants_l2_fill,
                state: MshrState::Pending,
                record: SefeRecord::default(),
                orphan: auto_free,
                episode: 0,
                gen: 0,
            })
            .map_err(|_| {
                // A speculative load with no free entry is a SEFE overflow:
                // it retries rather than running unlogged (Section 3.3).
                if let Some(p) = provenance {
                    // The retry should still carry the miss attribution.
                    self.miss_prov[ci].insert(line, p);
                }
                if req.spec {
                    self.obs.emit(
                        now,
                        SimEvent::SefeOverflow {
                            core: ci,
                            line: line.raw(),
                        },
                    );
                }
                SimError::MshrFull { core }
            })?;
        self.stats
            .mshr_occupancy
            .record(self.mshr[ci].occupancy() as u64);
        if req.spec {
            self.stats
                .sefe_occupancy
                .record(self.mshr[ci].spec_occupancy() as u64);
        }
        // Stamp whether this fill should carry a window-protection tag.
        if req.tag_spec_install && req.spec {
            // Encoded via is_spec + the scheme's tagging choice: we reuse
            // is_spec for the fill pass; tagging is suppressed for
            // non-speculative loads above.
        }
        self.stats.count_provenance(provenance);
        Ok(LoadOutcome {
            complete_at: now + latency,
            path,
            token: Some(token),
            deferred: false,
            provenance,
        })
    }

    /// Records (or clears, with `prov == None`) why `line` just left core
    /// `ci`'s L1; the next demand miss on the line consumes the entry.
    fn note_l1_departure(&mut self, ci: usize, line: LineAddr, prov: Option<MissProvenance>) {
        match prov {
            Some(p) => {
                self.miss_prov[ci].insert(line, p);
            }
            None => {
                self.miss_prov[ci].remove(&line);
            }
        }
    }

    /// Downgrades `owner`'s M/E copy of `line` to S (writeback if M).
    fn downgrade_owner(&mut self, owner: CoreId, line: LineAddr) {
        self.downgrade_owner_as(owner, line, false);
    }

    /// Downgrade with an explicit speculation flag on the emitted event.
    /// `spec` is true only when a *speculative* load forced the downgrade
    /// (possible solely via the `EarlyCoherenceDowngrade` fault; correct
    /// CleanupSpec always defers those) — the leakage audit flags it.
    fn downgrade_owner_as(&mut self, owner: CoreId, line: LineAddr, spec: bool) {
        let oi = owner.index();
        if let Some(l) = self.l1[oi].probe_mut(line) {
            if l.state == Mesi::Modified {
                // Dirty data returns to the L2.
                if let Some(l2l) = self.l2.probe_mut(line) {
                    l2l.dirty = true;
                }
                self.traffic.add(MsgClass::Writeback, 1);
            }
            l.state = Mesi::Shared;
            l.dirty = false;
            self.obs.emit(
                self.now_hint,
                SimEvent::Downgrade {
                    owner: oi,
                    line: line.raw(),
                    spec,
                },
            );
        }
        if let Some(d) = self.dir.get_mut(&line) {
            d.owner = None;
        }
    }

    // ------------------------------------------------------------------
    // Fill pass
    // ------------------------------------------------------------------

    /// Advances the hierarchy to cycle `now`: performs all fills whose
    /// responses have arrived, and frees dropped entries. Must be called
    /// once per cycle, before the cores issue new accesses.
    pub fn advance(&mut self, now: Cycle) {
        self.now_hint = now;
        for ci in 0..self.cfg.num_cores {
            self.mshr[ci].stamp(now);
            // Collect due slots first to avoid borrowing issues.
            let due: Vec<(usize, MshrEntry)> = self.mshr[ci]
                .iter_mut_indexed()
                .filter(|(_, e)| e.complete_at <= now && e.state != MshrState::Filled)
                .map(|(i, e)| (i, e.clone()))
                .collect();
            for (slot, entry) in due {
                match entry.state {
                    MshrState::Dropped => {
                        // Squashed inflight load: data returns, nothing
                        // changes, entry freed (Section 3.3).
                        self.stats.dropped_fills += 1;
                        self.obs.emit(
                            now,
                            SimEvent::DroppedFill {
                                core: ci,
                                line: entry.line.raw(),
                                episode: entry.episode,
                            },
                        );
                        self.mshr[ci].clear_slot(slot);
                    }
                    MshrState::Pending => {
                        let tag = if entry.is_spec && !entry.orphan {
                            Some(SpecTag {
                                core: entry.core,
                                epoch: entry.epoch,
                                load: entry.load,
                                installed_at: entry.complete_at,
                            })
                        } else {
                            None
                        };
                        let rec = self.perform_fill(entry.core, entry.line, tag);
                        if entry.orphan {
                            // Insecure modes: the squashed load's fill still
                            // lands — the leak CleanupSpec closes.
                            self.stats.orphan_fills += 1;
                            self.obs.emit(
                                now,
                                SimEvent::OrphanFill {
                                    core: ci,
                                    line: entry.line.raw(),
                                },
                            );
                            self.mshr[ci].clear_slot(slot);
                        } else if let Some(e) =
                            self.mshr[ci].iter_mut_indexed().find(|(i, _)| *i == slot)
                        {
                            e.1.record = rec;
                            e.1.state = MshrState::Filled;
                        }
                    }
                    MshrState::Filled => unreachable!("filtered above"),
                }
            }
        }
    }

    /// Performs the installs for a completed miss. Returns the SEFE record.
    fn perform_fill(&mut self, core: CoreId, line: LineAddr, tag: Option<SpecTag>) -> SefeRecord {
        let mut rec = SefeRecord::default();
        // Install into the L2 whenever the line is absent — even when the
        // request hit the L2 at issue time: an intervening clflush or L2
        // eviction may have removed it, and inclusion must hold when the
        // L1 copy lands.
        if self.l2.probe(line).is_none() {
            rec.l2_fill = true;
            let evicted = self.l2.install(line, Mesi::Shared, false, tag);
            self.dir.insert(line, DirEntry::default());
            self.obs.emit(
                self.now_hint,
                SimEvent::Fill {
                    core: core.index(),
                    line: line.raw(),
                    level: CacheLevel::L2,
                    spec: tag.is_some(),
                },
            );
            if let Some(v) = evicted {
                self.handle_l2_eviction(core, v, tag.map(|_| line));
            }
        }
        // L1 install.
        let ci = core.index();
        if self.l1[ci].probe(line).is_none() {
            rec.l1_fill = true;
            // A store may have (re)claimed ownership between this miss's
            // issue and its fill; the fill must not create a stale Shared
            // copy beside a Modified one — downgrade the owner first.
            if let Some(o) = self.dir.get(&line).and_then(|d| d.owner) {
                if o != core {
                    self.downgrade_owner(o, line);
                    self.traffic.add(MsgClass::Coherence, 2);
                }
            }
            let dir = self.dir.entry(line).or_default();
            let state = if dir.sharer_count() == 0 && dir.owner.is_none() {
                dir.owner = Some(core);
                Mesi::Exclusive
            } else {
                Mesi::Shared
            };
            dir.add(core);
            let evicted = self.l1[ci].install(line, state, false, tag);
            self.obs.emit(
                self.now_hint,
                SimEvent::Fill {
                    core: ci,
                    line: line.raw(),
                    level: CacheLevel::L1,
                    spec: tag.is_some(),
                },
            );
            if let Some(v) = evicted {
                rec.l1_evict = Some(v.line);
                rec.l1_evict_dirty = v.dirty;
                self.stats.l1_evictions += 1;
                self.handle_l1_eviction(core, v, tag.map(|_| line));
            }
        }
        rec
    }

    /// Handles a line evicted from an L1: directory removal + writeback.
    /// `evictor` is the line whose speculative install displaced it, if
    /// any (the victim CleanupSpec owes a restore on squash).
    fn handle_l1_eviction(&mut self, core: CoreId, v: Evicted, evictor: Option<LineAddr>) {
        self.obs.emit(
            self.now_hint,
            SimEvent::Evict {
                core: core.index(),
                line: v.line.raw(),
                level: CacheLevel::L1,
                dirty: v.dirty,
                evictor: evictor.map(LineAddr::raw),
            },
        );
        // Attribute the victim's next miss: a Random-policy eviction is a
        // scheme cost (an LRU baseline may have kept the line); an LRU
        // eviction clears any stale attribution.
        let prov = (self.cfg.l1_replacement == ReplacementKind::Random)
            .then_some(MissProvenance::RandomRepl);
        self.note_l1_departure(core.index(), v.line, prov);
        if let Some(d) = self.dir.get_mut(&v.line) {
            d.remove(core);
        }
        if v.dirty {
            if let Some(l2l) = self.l2.probe_mut(v.line) {
                l2l.dirty = true;
            } else {
                self.dram.writeback();
                self.obs.emit(
                    self.now_hint,
                    SimEvent::DramWriteback { line: v.line.raw() },
                );
            }
            self.traffic.add(MsgClass::Writeback, 1);
        }
    }

    /// Handles a line evicted from the inclusive L2: back-invalidate L1
    /// copies, drop the directory entry, write back dirty data. `core` is
    /// the requester whose install caused the eviction; `evictor` is the
    /// installing line when that install was speculative.
    fn handle_l2_eviction(&mut self, core: CoreId, v: Evicted, evictor: Option<LineAddr>) {
        self.stats.l2_evictions += 1;
        self.obs.emit(
            self.now_hint,
            SimEvent::Evict {
                core: core.index(),
                line: v.line.raw(),
                level: CacheLevel::L2,
                dirty: v.dirty,
                evictor: evictor.map(LineAddr::raw),
            },
        );
        let mut dirty = v.dirty;
        if let Some(d) = self.dir.remove(&v.line) {
            for c in d.sharer_list(self.cfg.num_cores) {
                if let Some(prev) = self.l1[c.index()].invalidate(v.line) {
                    self.stats.back_invals += 1;
                    self.note_l1_departure(c.index(), v.line, None);
                    self.traffic.add(MsgClass::Inval, 1);
                    self.obs.emit(
                        self.now_hint,
                        SimEvent::BackInval {
                            core: c.index(),
                            line: v.line.raw(),
                        },
                    );
                    dirty |= prev.dirty;
                }
            }
        }
        if dirty {
            self.dram.writeback();
            self.obs.emit(
                self.now_hint,
                SimEvent::DramWriteback { line: v.line.raw() },
            );
            self.traffic.add(MsgClass::Writeback, 1);
        }
    }

    /// Collects the SEFE record of a completed miss, freeing the MSHR
    /// entry. Returns `None` if the entry is still pending or was dropped.
    pub fn collect(&mut self, token: MshrToken) -> Option<SefeRecord> {
        let ci = token.core.index();
        let rec = {
            let e = self.mshr[ci].get(token)?;
            if e.state != MshrState::Filled {
                return None;
            }
            e.record
        };
        // Fault hook: LeakMshrSlot hands back the record without freeing —
        // the slot stays Filled forever and the file slowly exhausts.
        if self.faults.should_fire(FaultKind::LeakMshrSlot) {
            return Some(rec);
        }
        self.mshr[ci].free(token);
        // Fault hook: DropSefeEntry loses the side-effect bookkeeping — the
        // load's installs will never be registered for cleanup.
        if self.faults.should_fire(FaultKind::DropSefeEntry) {
            return Some(SefeRecord::default());
        }
        Some(rec)
    }

    // ------------------------------------------------------------------
    // Stores / clflush (non-speculative, performed at commit)
    // ------------------------------------------------------------------

    /// Performs a committed store to `line`. State changes are immediate.
    pub fn store(&mut self, core: CoreId, line: LineAddr, now: Cycle) -> StoreOutcome {
        self.now_hint = now;
        self.stats.stores += 1;
        let ci = core.index();
        if let Some(l) = self.l1[ci].probe_mut(line) {
            match l.state {
                Mesi::Modified => {
                    l.dirty = true;
                    self.l1[ci].touch(line);
                    return StoreOutcome {
                        complete_at: now + self.cfg.l1_rt,
                    };
                }
                Mesi::Exclusive => {
                    l.state = Mesi::Modified;
                    l.dirty = true;
                    self.l1[ci].touch(line);
                    return StoreOutcome {
                        complete_at: now + self.cfg.l1_rt,
                    };
                }
                Mesi::Shared => {
                    // Upgrade: invalidate the other sharers.
                    self.stats.store_upgrades += 1;
                    self.invalidate_other_sharers(core, line);
                    let l = self.l1[ci].probe_mut(line).expect("still present");
                    l.state = Mesi::Modified;
                    l.dirty = true;
                    let d = self.dir.entry(line).or_default();
                    d.owner = Some(core);
                    d.add(core);
                    self.traffic.add(MsgClass::Coherence, 1);
                    return StoreOutcome {
                        complete_at: now + self.cfg.upgrade_latency,
                    };
                }
                Mesi::Invalid => unreachable!("probe_mut returns valid lines"),
            }
        }
        // Store miss: RFO (GetM), non-speculative, immediate state change.
        self.stats.store_upgrades += 1;
        let mut latency = self.cfg.l2_effective_rt();
        if self.l2.probe(line).is_none() {
            latency += self.cfg.dram_rt;
            let evicted = self.l2.install(line, Mesi::Shared, false, None);
            self.dir.insert(line, DirEntry::default());
            self.obs.emit(
                self.now_hint,
                SimEvent::Fill {
                    core: ci,
                    line: line.raw(),
                    level: CacheLevel::L2,
                    spec: false,
                },
            );
            if let Some(v) = evicted {
                self.handle_l2_eviction(core, v, None);
            }
            self.traffic.add(MsgClass::Regular, 4);
        } else {
            self.traffic.add(MsgClass::Regular, 2);
        }
        self.invalidate_other_sharers(core, line);
        let d = self.dir.entry(line).or_default();
        d.owner = Some(core);
        d.add(core);
        let evicted = self.l1[ci].install(line, Mesi::Modified, true, None);
        self.obs.emit(
            self.now_hint,
            SimEvent::Fill {
                core: ci,
                line: line.raw(),
                level: CacheLevel::L1,
                spec: false,
            },
        );
        if let Some(v) = evicted {
            self.stats.l1_evictions += 1;
            self.handle_l1_eviction(core, v, None);
        }
        StoreOutcome {
            complete_at: now + latency,
        }
    }

    /// Invalidates every other core's L1 copy of `line` (store upgrade /
    /// RFO), pulling dirty data into the L2.
    fn invalidate_other_sharers(&mut self, requester: CoreId, line: LineAddr) {
        let Some(d) = self.dir.get(&line).copied() else {
            return;
        };
        for core in d.sharer_list(self.cfg.num_cores) {
            if core == requester {
                continue;
            }
            if let Some(prev) = self.l1[core.index()].invalidate(line) {
                self.note_l1_departure(core.index(), line, None);
                if prev.dirty {
                    if let Some(l2l) = self.l2.probe_mut(line) {
                        l2l.dirty = true;
                    }
                    self.traffic.add(MsgClass::Writeback, 1);
                }
                self.traffic.add(MsgClass::Inval, 1);
            }
            if let Some(dm) = self.dir.get_mut(&line) {
                dm.remove(core);
            }
        }
    }

    /// Performs a committed `clflush`: removes the line everywhere.
    ///
    /// CleanupSpec delays clflush until the correct path (Section 3.5,
    /// Table 2); the pipeline enforces that by only executing it at commit.
    pub fn clflush(&mut self, core: CoreId, line: LineAddr, now: Cycle) -> StoreOutcome {
        self.now_hint = now;
        self.obs.emit(
            now,
            SimEvent::Clflush {
                core: core.index(),
                line: line.raw(),
            },
        );
        let mut dirty = false;
        for ci in 0..self.cfg.num_cores {
            if let Some(prev) = self.l1[ci].invalidate(line) {
                dirty |= prev.dirty;
                self.note_l1_departure(ci, line, None);
                self.traffic.add(MsgClass::Inval, 1);
            }
        }
        if let Some(prev) = self.l2.invalidate(line) {
            dirty |= prev.dirty;
            self.traffic.add(MsgClass::Inval, 1);
        }
        self.dir.remove(&line);
        if dirty {
            self.dram.writeback();
            self.obs
                .emit(now, SimEvent::DramWriteback { line: line.raw() });
            self.traffic.add(MsgClass::Writeback, 1);
        }
        StoreOutcome {
            complete_at: now + self.cfg.l2_effective_rt(),
        }
    }

    // ------------------------------------------------------------------
    // CleanupSpec API
    // ------------------------------------------------------------------

    /// Bumps `core`'s epoch and marks its pending misses dropped: their
    /// responses will be discarded without cache changes (Section 3.3).
    /// Returns the number of dropped inflight loads.
    pub fn drop_core_inflight(&mut self, core: CoreId) -> usize {
        let ci = core.index();
        self.epoch[ci] = self.epoch[ci].next();
        let n = self.mshr[ci].drop_pending(self.episode[ci]);
        self.obs.emit(
            self.now_hint,
            SimEvent::EpochBump {
                core: ci,
                epoch: u64::from(self.epoch[ci].raw()),
                dropped: n as u64,
                episode: self.episode[ci],
            },
        );
        if n > 0 {
            self.traffic.add(MsgClass::Cleanup, 1); // cleanup request + ack
        }
        n
    }

    /// Marks `core`'s pending misses as *orphans*: their fills will still
    /// be performed when the response arrives, with no one to collect them.
    /// This models insecure baselines, where squashed loads still install.
    /// Returns the number of orphaned loads.
    pub fn orphan_core_inflight(&mut self, core: CoreId) -> usize {
        let ci = core.index();
        let mut n = 0;
        // Orphaned fills must not carry spec tags (there is no retirement
        // to clear them); they are plain wrong-path installs.
        let slots: Vec<usize> = self.mshr[ci]
            .iter_mut_indexed()
            .filter(|(_, e)| e.state == MshrState::Pending)
            .map(|(i, e)| {
                e.orphan = true;
                e.is_spec = false;
                i
            })
            .collect();
        n += slots.len();
        n
    }

    /// Frees a filled-but-uncollected MSHR entry (squashed after fill in
    /// insecure modes, where no cleanup will run).
    pub fn abandon(&mut self, token: MshrToken) {
        self.mshr[token.core.index()].free(token);
    }

    /// Marks a single still-pending miss as an orphan: its fill will be
    /// performed when the response arrives and the entry then self-frees.
    /// Insecure baselines use this for squashed inflight loads — the
    /// wrong-path install still lands in the cache (the leak CleanupSpec
    /// closes). No-op if the token is stale or already filled.
    pub fn orphan_token(&mut self, token: MshrToken) {
        if let Some(e) = self.mshr[token.core.index()].get_mut(token) {
            match e.state {
                MshrState::Pending => {
                    e.orphan = true;
                    e.is_spec = false;
                }
                MshrState::Filled => {
                    // Fill already happened (and stays — insecure).
                    self.mshr[token.core.index()].free(token);
                }
                MshrState::Dropped => {}
            }
        }
    }

    /// CleanupSpec invalidation of a transiently installed line
    /// (Section 3.3). `l1`/`l2` select which levels the load filled.
    pub fn cleanup_invalidate(&mut self, core: CoreId, line: LineAddr, l1: bool, l2: bool) {
        // Fault hook: SkipTransientInvalidate silently drops the whole op —
        // no event, no state change; the transient installs survive.
        if self.faults.should_fire(FaultKind::SkipTransientInvalidate) {
            return;
        }
        self.obs.emit(
            self.now_hint,
            SimEvent::CleanupInval {
                core: core.index(),
                line: line.raw(),
                l1,
                l2,
                seq: self.episode_seq[core.index()],
                episode: self.episode[core.index()],
            },
        );
        if l1 {
            if let Some(prev) = self.l1[core.index()].invalidate(line) {
                self.stats.cleanup_invals += 1;
                self.note_l1_departure(core.index(), line, Some(MissProvenance::TransientInval));
                if let Some(d) = self.dir.get_mut(&line) {
                    d.remove(core);
                }
                if prev.dirty {
                    if let Some(l2l) = self.l2.probe_mut(line) {
                        l2l.dirty = true;
                    }
                    self.traffic.add(MsgClass::Writeback, 1);
                }
            }
            self.traffic.add(MsgClass::Cleanup, 1);
        }
        if l2 {
            // Fault hook: StaleCeaserIndex resolves the L2 leg with a stale
            // index — the CleanupInval event above already told the world
            // the op ran (and the traffic below is still charged), but the
            // lookup misses the live set and the install survives. Unlike
            // SkipTransientInvalidate, the event record looks clean, so
            // only a state-level oracle can catch this one.
            if self.faults.should_fire(FaultKind::StaleCeaserIndex) {
                // no-op: wrong set probed, nothing found
            } else if let Some(prev) = self.l2.invalidate(line) {
                self.stats.cleanup_invals += 1;
                // Inclusive: remove any L1 copies (window protection makes
                // cross-core pickups of transient lines impossible, but the
                // invariant is maintained regardless).
                if let Some(d) = self.dir.remove(&line) {
                    for c in d.sharer_list(self.cfg.num_cores) {
                        if self.l1[c.index()].invalidate(line).is_some() {
                            self.stats.back_invals += 1;
                            self.note_l1_departure(
                                c.index(),
                                line,
                                Some(MissProvenance::TransientInval),
                            );
                            self.traffic.add(MsgClass::Inval, 1);
                            self.obs.emit(
                                self.now_hint,
                                SimEvent::BackInval {
                                    core: c.index(),
                                    line: line.raw(),
                                },
                            );
                        }
                    }
                }
                if prev.dirty {
                    self.dram.writeback();
                    self.obs
                        .emit(self.now_hint, SimEvent::DramWriteback { line: line.raw() });
                    self.traffic.add(MsgClass::Writeback, 1);
                }
            }
            self.traffic.add(MsgClass::Cleanup, 1);
        }
    }

    /// CleanupSpec restoration of a line evicted from `core`'s L1 by a
    /// squashed install (Section 3.4): re-fetch it from the L2 (or DRAM if
    /// the L2 lost it meanwhile) and install it with a coherence state
    /// consistent with the directory. `was_dirty` is the victim's dirty bit
    /// at eviction time (from the SEFE record): if this core is still the
    /// sole holder, the line returns Modified + dirty and the writeback the
    /// eviction pushed down is rescinded, so the restored L1 *and* L2 state
    /// equal the pre-speculation ones. If the line was picked up or updated
    /// by another core in between, the restore falls back to a clean Shared
    /// copy — the dirty data is already safe below, and reclaiming
    /// ownership would violate single-writer. `evictor` is the squashed
    /// install whose eviction is being undone; it rides on the event so the
    /// forensic ledger can pair restore with displacement.
    pub fn cleanup_restore(
        &mut self,
        core: CoreId,
        line: LineAddr,
        was_dirty: bool,
        evictor: LineAddr,
    ) {
        // Fault hook: SkipVictimRestore silently drops the op — no event,
        // no stats, no refetch; the victim's absence is the leak.
        if self.faults.should_fire(FaultKind::SkipVictimRestore) {
            return;
        }
        self.stats.cleanup_restores += 1;
        self.traffic.add(MsgClass::Cleanup, 2);
        let ci = core.index();
        // The victim is coming back — any pending miss attribution for it
        // (e.g. the random-replacement eviction being undone) is moot.
        self.miss_prov[ci].remove(&line);
        self.obs.emit(
            self.now_hint,
            SimEvent::CleanupRestore {
                core: ci,
                line: line.raw(),
                evictor: evictor.raw(),
                seq: self.episode_seq[ci],
                episode: self.episode[ci],
            },
        );
        if self.l1[ci].probe(line).is_some() {
            return; // already back (e.g. restored by an older cleanup op)
        }
        if self.l2.probe(line).is_none() {
            // Rare: the victim also left the L2. Re-fetch from memory.
            let _ = self.dram.read(0);
            self.obs.emit(
                self.now_hint,
                SimEvent::DramRead {
                    core: ci,
                    line: line.raw(),
                },
            );
            self.traffic.add(MsgClass::Regular, 2);
            let evicted = self.l2.install(line, Mesi::Shared, false, None);
            self.dir.insert(line, DirEntry::default());
            if let Some(v) = evicted {
                self.handle_l2_eviction(core, v, None);
            }
        }
        if let Some(o) = self.dir.get(&line).and_then(|d| d.owner) {
            if o != core {
                self.downgrade_owner(o, line);
                self.traffic.add(MsgClass::Coherence, 2);
            }
        }
        let d = self.dir.entry(line).or_default();
        let sole_holder = d.sharer_count() == 0 && d.owner.is_none();
        let (state, dirty) = if sole_holder {
            d.owner = Some(core);
            if was_dirty {
                (Mesi::Modified, true)
            } else {
                (Mesi::Exclusive, false)
            }
        } else {
            (Mesi::Shared, false)
        };
        d.add(core);
        if dirty {
            // The eviction's writeback is undone: the dirty data moves back
            // up into the restored L1 copy, exactly as before the squash.
            if let Some(l2l) = self.l2.probe_mut(line) {
                l2l.dirty = false;
            }
        }
        let evicted = self.l1[ci].install(line, state, dirty, None);
        self.obs.emit(
            self.now_hint,
            SimEvent::Fill {
                core: ci,
                line: line.raw(),
                level: CacheLevel::L1,
                spec: false,
            },
        );
        if let Some(v) = evicted {
            self.stats.l1_evictions += 1;
            self.handle_l1_eviction(core, v, None);
        }
    }

    /// Clears the speculation-window tag of `line` for a retiring load of
    /// `core` (the load is now unsquashable).
    pub fn retire_load(&mut self, core: CoreId, line: LineAddr) {
        let mut cleared = false;
        if let Some(l) = self.l1[core.index()].probe_mut(line) {
            if l.spec.is_some_and(|t| t.core == core) {
                l.spec = None;
                cleared = true;
            }
        }
        if let Some(l) = self.l2.probe_mut(line) {
            if l.spec.is_some_and(|t| t.core == core) {
                l.spec = None;
                cleared = true;
            }
        }
        if cleared {
            self.obs.emit(
                self.now_hint,
                SimEvent::SpecRetire {
                    core: core.index(),
                    line: line.raw(),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Checks structural invariants: inclusion, directory consistency, and
    /// single-writer. Returns a description of the first violation.
    ///
    /// # Errors
    /// Returns `Err` with a human-readable description if any invariant is
    /// violated.
    pub fn check_invariants(&self) -> Result<(), String> {
        for ci in 0..self.cfg.num_cores {
            for l in self.l1[ci].iter_valid() {
                if self.l2.probe(l.line).is_none() {
                    return Err(format!(
                        "inclusion violated: {} in L1-{ci} not in L2",
                        l.line
                    ));
                }
                let d = self
                    .dir
                    .get(&l.line)
                    .ok_or_else(|| format!("no directory entry for {}", l.line))?;
                if !d.has(CoreId(ci)) {
                    return Err(format!("directory misses sharer {ci} for {}", l.line));
                }
                if l.state.is_writable() && d.owner != Some(CoreId(ci)) {
                    return Err(format!(
                        "core {ci} holds {} in {} but directory owner is {:?}",
                        l.line, l.state, d.owner
                    ));
                }
            }
        }
        // Single-writer: a writable (M/E) copy must be the ONLY L1 copy.
        for (line, d) in &self.dir {
            let writable = (0..self.cfg.num_cores)
                .filter(|ci| {
                    self.l1[*ci]
                        .probe(*line)
                        .is_some_and(|l| l.state.is_writable())
                })
                .count();
            let any = (0..self.cfg.num_cores)
                .filter(|ci| self.l1[*ci].probe(*line).is_some())
                .count();
            if writable > 1 || (writable == 1 && any > 1) {
                return Err(format!(
                    "writable copy of {line} coexists with other copies ({any} total)"
                ));
            }
            if let Some(o) = d.owner {
                let _ = o;
            }
            if self.l2.probe(*line).is_none() {
                return Err(format!("directory entry for {line} not in L2"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> MemConfig {
        MemConfig {
            num_cores: 2,
            l1_capacity: 8 * 64 * 2, // 2 sets x 8 ways... (16 lines)
            l1_ways: 8,
            l2_capacity: 64 * 64 * 4,
            l2_ways: 4,
            ..MemConfig::default()
        }
    }

    fn demand(load: u64) -> LoadReq {
        LoadReq {
            load: LoadId(load),
            spec: true,
            allow_downgrade: true,
            kind: LoadKind::Demand,
            tag_spec_install: true,
        }
    }

    /// Issues a load and runs the fill to completion.
    fn load_to_completion(
        m: &mut MemHierarchy,
        core: CoreId,
        line: LineAddr,
        now: Cycle,
    ) -> (LoadOutcome, Option<SefeRecord>) {
        let out = m.load(core, line, now, demand(0)).unwrap();
        m.advance(out.complete_at);
        let rec = out.token.and_then(|t| m.collect(t));
        (out, rec)
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0x100);
        let (out, rec) = load_to_completion(&mut m, CoreId(0), line, 0);
        assert_eq!(out.path, LoadPath::Mem);
        assert_eq!(out.complete_at, m.config().l2_effective_rt() + 100);
        let rec = rec.unwrap();
        assert!(rec.l1_fill && rec.l2_fill);
        // Second access: L1 hit.
        let out2 = m.load(CoreId(0), line, 200, demand(1)).unwrap();
        assert_eq!(out2.path, LoadPath::L1Hit);
        assert_eq!(out2.complete_at, 201);
        m.check_invariants().unwrap();
    }

    #[test]
    fn l2_hit_after_other_core_fill() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0x200);
        load_to_completion(&mut m, CoreId(0), line, 0);
        // Core 0 has it E; core 1's load must be a remote-L1 service.
        let (out, rec) = load_to_completion(&mut m, CoreId(1), line, 500);
        assert_eq!(out.path, LoadPath::RemoteL1);
        assert!(rec.unwrap().l1_fill);
        // Owner was downgraded to S.
        assert_eq!(m.l1(CoreId(0)).probe(line).unwrap().state, Mesi::Shared);
        assert_eq!(m.l1(CoreId(1)).probe(line).unwrap().state, Mesi::Shared);
        m.check_invariants().unwrap();
    }

    #[test]
    fn gets_safe_defers_instead_of_downgrading() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0x300);
        load_to_completion(&mut m, CoreId(0), line, 0);
        assert_eq!(m.l1(CoreId(0)).probe(line).unwrap().state, Mesi::Exclusive);
        let req = LoadReq {
            allow_downgrade: false,
            ..demand(5)
        };
        let out = m.load(CoreId(1), line, 500, req).unwrap();
        assert!(out.deferred);
        // No state change anywhere.
        assert_eq!(m.l1(CoreId(0)).probe(line).unwrap().state, Mesi::Exclusive);
        assert!(m.l1(CoreId(1)).probe(line).is_none());
        assert_eq!(m.stats().gets_safe_refusals, 1);
    }

    #[test]
    fn dropped_inflight_load_leaves_no_trace() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0x400);
        let before_l1 = m.l1_snapshot(CoreId(0));
        let before_l2 = m.l2_snapshot();
        let out = m.load(CoreId(0), line, 0, demand(0)).unwrap();
        assert_eq!(m.drop_core_inflight(CoreId(0)), 1);
        m.advance(out.complete_at + 10);
        assert_eq!(m.l1_snapshot(CoreId(0)), before_l1);
        assert_eq!(m.l2_snapshot(), before_l2);
        assert!(m.collect(out.token.unwrap()).is_none());
        assert_eq!(m.stats().dropped_fills, 1);
        assert_eq!(m.mshr_occupancy(CoreId(0)), 0);
    }

    #[test]
    fn orphaned_inflight_load_still_installs() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0x500);
        let out = m.load(CoreId(0), line, 0, demand(0)).unwrap();
        assert_eq!(m.orphan_core_inflight(CoreId(0)), 1);
        m.advance(out.complete_at);
        assert!(
            m.l1(CoreId(0)).probe(line).is_some(),
            "insecure mode installs"
        );
        assert_eq!(m.stats().orphan_fills, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn cleanup_invalidate_and_restore_roundtrip() {
        let mut m = MemHierarchy::new(tiny_cfg());
        // Fill the L1 set with victims, then install an attacker line that
        // evicts one, then undo.
        let victim = LineAddr::new(0x1000);
        load_to_completion(&mut m, CoreId(0), victim, 0);
        let before = m.l1_snapshot(CoreId(0));
        let attacker = LineAddr::new(0x2000);
        let (out, rec) = load_to_completion(&mut m, CoreId(0), attacker, 1000);
        let rec = rec.unwrap();
        assert!(rec.l1_fill);
        // Undo in reverse order: invalidate install, restore victim if any.
        m.cleanup_invalidate(CoreId(0), attacker, rec.l1_fill, rec.l2_fill);
        if let Some(v) = rec.l1_evict {
            m.cleanup_restore(CoreId(0), v, rec.l1_evict_dirty, attacker);
        }
        let after = m.l1_snapshot(CoreId(0));
        assert_eq!(before, after, "L1 state fully rolled back");
        assert!(out.complete_at > 1000);
        m.check_invariants().unwrap();
    }

    /// Fills set 0 of core 0's L1 so the next same-set install must evict,
    /// with `victim` as the LRU way. Returns the conflicting lines loaded.
    fn fill_set_around(m: &mut MemHierarchy, victim: LineAddr) -> Vec<LineAddr> {
        let mut filler = Vec::new();
        for i in 1..8u64 {
            // tiny_cfg has 2 sets: stride 2 keeps everything in set 0.
            let l = LineAddr::new(victim.raw() + i * 2);
            load_to_completion(m, CoreId(0), l, i * 10);
            m.retire_load(CoreId(0), l);
            filler.push(l);
        }
        filler
    }

    #[test]
    fn dirty_victim_restore_returns_modified_dirty() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let victim = LineAddr::new(0x1000);
        // Store makes the victim Modified + dirty in core 0's L1.
        m.store(CoreId(0), victim, 0);
        fill_set_around(&mut m, victim);
        let data = |l: LineAddr| l.raw().wrapping_mul(0x1234_5677);
        let before_l1 = m.l1_snapshot(CoreId(0));
        let before_l2 = m.l2_snapshot();
        let before_digest = m.l1_digest(CoreId(0), data);
        // A speculative install evicts the dirty victim (LRU way).
        let attacker = LineAddr::new(0x4000);
        let (_, rec) = load_to_completion(&mut m, CoreId(0), attacker, 1000);
        let rec = rec.unwrap();
        assert_eq!(rec.l1_evict, Some(victim), "dirty victim was evicted");
        assert!(rec.l1_evict_dirty, "SEFE recorded the victim's dirty bit");
        // Squash: undo the install, then restore the victim.
        m.cleanup_invalidate(CoreId(0), attacker, rec.l1_fill, rec.l2_fill);
        m.cleanup_restore(CoreId(0), victim, rec.l1_evict_dirty, attacker);
        let restored = m.l1(CoreId(0)).probe(victim).expect("victim restored");
        assert_eq!(restored.state, Mesi::Modified, "ownership reinstated");
        assert!(restored.dirty, "dirty bit reinstated");
        assert_eq!(m.l1_snapshot(CoreId(0)), before_l1, "L1 exactly restored");
        assert_eq!(
            m.l2_snapshot(),
            before_l2,
            "the eviction writeback was rescinded from the L2"
        );
        assert_eq!(m.l1_digest(CoreId(0), data), before_digest);
        m.check_invariants().unwrap();
    }

    #[test]
    fn dirty_victim_restore_yields_when_l2_copy_was_updated() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let victim = LineAddr::new(0x1000);
        m.store(CoreId(0), victim, 0);
        fill_set_around(&mut m, victim);
        let attacker = LineAddr::new(0x4000);
        let (_, rec) = load_to_completion(&mut m, CoreId(0), attacker, 1000);
        let rec = rec.unwrap();
        assert_eq!(rec.l1_evict, Some(victim));
        assert!(rec.l1_evict_dirty);
        // Before the cleanup runs, core 1 writes the line: the written-back
        // data is consumed and superseded below core 0's L1.
        m.store(CoreId(1), victim, 1200);
        m.cleanup_invalidate(CoreId(0), attacker, rec.l1_fill, rec.l2_fill);
        m.cleanup_restore(CoreId(0), victim, rec.l1_evict_dirty, attacker);
        // Restoring Modified + dirty now would fork the line's history;
        // the restore must fall back to a clean Shared copy instead.
        let restored = m.l1(CoreId(0)).probe(victim).expect("victim restored");
        assert_eq!(restored.state, Mesi::Shared);
        assert!(!restored.dirty);
        m.check_invariants().unwrap();
    }

    #[test]
    fn window_protection_dummy_miss_for_cross_core_hit() {
        let mut m = MemHierarchy::new(MemConfig {
            window_protection: true,
            ..tiny_cfg()
        });
        let line = LineAddr::new(0x600);
        // Core 0 transiently installs the line (spec load, not retired).
        load_to_completion(&mut m, CoreId(0), line, 0);
        // Core 1 probes it during the window: dummy miss, full mem latency.
        let out = m.load(CoreId(1), line, 300, demand(9)).unwrap();
        assert_eq!(out.path, LoadPath::DummyMiss);
        assert_eq!(
            out.complete_at - 300,
            m.config().l2_effective_rt() + m.config().dram_rt
        );
        // And no state change for core 1.
        assert!(m.l1(CoreId(1)).probe(line).is_none());
        // After retirement the same access is a normal L2 hit.
        m.retire_load(CoreId(0), line);
        let out2 = m.load(CoreId(1), line, 600, demand(10)).unwrap();
        assert_ne!(out2.path, LoadPath::DummyMiss);
    }

    #[test]
    fn store_upgrade_invalidates_sharers() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0x700);
        load_to_completion(&mut m, CoreId(0), line, 0);
        load_to_completion(&mut m, CoreId(1), line, 300);
        // Both sharers now; core 0 stores.
        let so = m.store(CoreId(0), line, 600);
        assert_eq!(so.complete_at - 600, m.config().upgrade_latency);
        assert_eq!(m.l1(CoreId(0)).probe(line).unwrap().state, Mesi::Modified);
        assert!(m.l1(CoreId(1)).probe(line).is_none(), "sharer invalidated");
        m.check_invariants().unwrap();
    }

    #[test]
    fn store_miss_rfo_installs_modified() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0x800);
        let so = m.store(CoreId(0), line, 0);
        assert!(so.complete_at >= m.config().l2_effective_rt() + m.config().dram_rt);
        assert_eq!(m.l1(CoreId(0)).probe(line).unwrap().state, Mesi::Modified);
        m.check_invariants().unwrap();
    }

    #[test]
    fn clflush_removes_everywhere() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0x900);
        load_to_completion(&mut m, CoreId(0), line, 0);
        load_to_completion(&mut m, CoreId(1), line, 300);
        m.clflush(CoreId(0), line, 600);
        assert!(m.l1(CoreId(0)).probe(line).is_none());
        assert!(m.l1(CoreId(1)).probe(line).is_none());
        assert!(m.l2().probe(line).is_none());
        m.check_invariants().unwrap();
    }

    #[test]
    fn invisible_load_changes_nothing() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0xa00);
        let req = LoadReq {
            kind: LoadKind::Invisible,
            ..demand(0)
        };
        let out = m.load(CoreId(0), line, 0, req).unwrap();
        assert_eq!(out.path, LoadPath::Mem);
        m.advance(out.complete_at + 1);
        assert!(m.l1(CoreId(0)).probe(line).is_none());
        assert!(m.l2().probe(line).is_none());
        assert_eq!(m.traffic().get(MsgClass::SpecLoad), 4);
    }

    #[test]
    fn merged_miss_has_no_fills() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let line = LineAddr::new(0xb00);
        let a = m.load(CoreId(0), line, 0, demand(0)).unwrap();
        let b = m.load(CoreId(0), line, 2, demand(1)).unwrap();
        assert!(a.token.is_some());
        assert!(b.token.is_none(), "merged miss shares the response");
        assert_eq!(b.complete_at, a.complete_at);
    }

    #[test]
    fn epoch_advances_on_drop() {
        let mut m = MemHierarchy::new(tiny_cfg());
        let e0 = m.epoch(CoreId(0));
        m.drop_core_inflight(CoreId(0));
        assert_eq!(m.epoch(CoreId(0)), e0.next());
        assert_eq!(m.epoch(CoreId(1)), EpochId::zero(), "per-core epochs");
    }

    #[test]
    fn mshr_fills_up_and_reports() {
        let mut m = MemHierarchy::new(MemConfig {
            mshrs_per_core: 2,
            ..tiny_cfg()
        });
        m.load(CoreId(0), LineAddr::new(1), 0, demand(0)).unwrap();
        m.load(CoreId(0), LineAddr::new(2), 0, demand(1)).unwrap();
        let r = m.load(CoreId(0), LineAddr::new(3), 0, demand(2));
        assert!(r.is_err(), "MSHR capacity enforced");
    }

    #[test]
    fn l2_eviction_back_invalidates_l1() {
        // L2 with 4 ways x 64 sets; fill one L2 set beyond capacity with
        // lines the L1 holds, and check inclusion enforcement.
        let mut m = MemHierarchy::new(MemConfig {
            l1_capacity: 64 * 64 * 8, // big enough L1 to hold everything
            l1_ways: 8,
            l2_capacity: 4 * 64 * 4, // 4 sets, 4 ways
            l2_ways: 4,
            num_cores: 1,
            ..MemConfig::default()
        });
        // 5 lines in the same L2 set (stride = num_sets = 4).
        for i in 0..5u64 {
            load_to_completion(&mut m, CoreId(0), LineAddr::new(i * 4), i * 500);
        }
        assert!(m.stats().l2_evictions >= 1);
        assert!(m.stats().back_invals >= 1);
        m.check_invariants().unwrap();
    }
}
