//! CEASER-style randomized cache indexing (Qureshi, MICRO 2018), used by
//! CleanupSpec for the L2/LLC (Section 3.2).
//!
//! CEASER indexes the cache with an *encrypted* line address so that the set
//! an address maps to — and therefore the set of its co-resident lines — is
//! unpredictable without the key. CleanupSpec leverages exactly one property
//! of this scheme: an eviction from a randomized cache leaks no information
//! about the address of the install that caused it, so transient L2
//! evictions never need to be rolled back.
//!
//! We implement the cipher as a 4-round balanced Feistel network over the
//! 40-bit line address, which is a keyed pseudo-random *permutation*: it is
//! invertible (no two lines collide on their encrypted address), matching the
//! low-latency block cipher CEASER proposes. The paper charges 2 extra cycles
//! of L2 latency for the encryption; the hierarchy configuration applies the
//! same charge when randomization is enabled.

use crate::rng::mix64;
use crate::types::LineAddr;

/// Width of the permuted line-address space (40 bits, as in the SEFE).
pub const CEASER_ADDR_BITS: u32 = 40;

const HALF_BITS: u32 = CEASER_ADDR_BITS / 2;
const HALF_MASK: u64 = (1 << HALF_BITS) - 1;
const ADDR_MASK: u64 = (1 << CEASER_ADDR_BITS) - 1;

/// A keyed pseudo-random permutation of 40-bit line addresses.
///
/// ```
/// use cleanupspec_mem::ceaser::CeaserCipher;
/// use cleanupspec_mem::types::LineAddr;
/// let c = CeaserCipher::new(0x5eed);
/// let line = LineAddr::new(0x1234);
/// let enc = c.encrypt(line);
/// assert_eq!(c.decrypt(enc), line);
/// ```
#[derive(Clone, Debug)]
pub struct CeaserCipher {
    round_keys: [u64; CeaserCipher::ROUNDS],
}

impl CeaserCipher {
    /// Feistel rounds. Four suffice for the PRP property we rely on in a
    /// simulator (CEASER's hardware cipher also uses a short pipeline).
    pub const ROUNDS: usize = 4;

    /// Derives round keys from `key`.
    pub fn new(key: u64) -> Self {
        let mut round_keys = [0u64; Self::ROUNDS];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = mix64(key ^ (i as u64 + 1).wrapping_mul(0xA5A5_5A5A_0F0F_F0F0));
        }
        CeaserCipher { round_keys }
    }

    fn round(value: u64, key: u64) -> u64 {
        mix64(value ^ key) & HALF_MASK
    }

    /// Encrypts a line address (truncated to 40 bits).
    pub fn encrypt(&self, line: LineAddr) -> LineAddr {
        let v = line.raw() & ADDR_MASK;
        let mut left = v >> HALF_BITS;
        let mut right = v & HALF_MASK;
        for &rk in &self.round_keys {
            let new_left = right;
            let new_right = left ^ Self::round(right, rk);
            left = new_left;
            right = new_right;
        }
        LineAddr::new((left << HALF_BITS) | right)
    }

    /// Decrypts an encrypted line address (inverse of [`encrypt`]).
    ///
    /// [`encrypt`]: CeaserCipher::encrypt
    pub fn decrypt(&self, enc: LineAddr) -> LineAddr {
        let v = enc.raw() & ADDR_MASK;
        let mut left = v >> HALF_BITS;
        let mut right = v & HALF_MASK;
        for &rk in self.round_keys.iter().rev() {
            let new_right = left;
            let new_left = right ^ Self::round(left, rk);
            left = new_left;
            right = new_right;
        }
        LineAddr::new((left << HALF_BITS) | right)
    }
}

/// Maps line addresses to cache set indices.
///
/// The plain indexer uses the conventional low-order bits; the CEASER
/// indexer encrypts the line address first.
#[derive(Clone, Debug)]
pub enum Indexer {
    /// Conventional set indexing: `line mod sets`.
    Modulo,
    /// CEASER randomized indexing with the given cipher.
    Ceaser(CeaserCipher),
}

impl Indexer {
    /// Creates a CEASER indexer from a key.
    pub fn ceaser(key: u64) -> Self {
        Indexer::Ceaser(CeaserCipher::new(key))
    }

    /// Set index for `line` in a cache with `num_sets` sets.
    pub fn set_index(&self, line: LineAddr, num_sets: usize) -> usize {
        debug_assert!(num_sets.is_power_of_two());
        match self {
            Indexer::Modulo => (line.raw() as usize) & (num_sets - 1),
            Indexer::Ceaser(c) => (c.encrypt(line).raw() as usize) & (num_sets - 1),
        }
    }

    /// Whether this indexer randomizes (and thus makes evictions benign).
    pub fn is_randomized(&self) -> bool {
        matches!(self, Indexer::Ceaser(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let c = CeaserCipher::new(0xC0FFEE);
        for i in 0..10_000u64 {
            let line = LineAddr::new(i * 977);
            assert_eq!(
                c.decrypt(c.encrypt(line)),
                LineAddr::new(line.raw() & ((1 << 40) - 1))
            );
        }
    }

    #[test]
    fn permutation_is_injective_on_sample() {
        let c = CeaserCipher::new(1);
        let mut seen = HashSet::new();
        for i in 0..50_000u64 {
            assert!(
                seen.insert(c.encrypt(LineAddr::new(i)).raw()),
                "collision at {i}"
            );
        }
    }

    #[test]
    fn different_keys_give_different_mappings() {
        let a = CeaserCipher::new(1);
        let b = CeaserCipher::new(2);
        let differing = (0..1000u64)
            .filter(|&i| a.encrypt(LineAddr::new(i)) != b.encrypt(LineAddr::new(i)))
            .count();
        assert!(
            differing > 900,
            "keys should decorrelate mappings ({differing})"
        );
    }

    #[test]
    fn ceaser_breaks_spatial_contiguity() {
        // Consecutive lines that map to consecutive sets under modulo
        // indexing should scatter under CEASER.
        let idx = Indexer::ceaser(0xAB);
        let sets = 2048;
        let mut same_set_neighbors = 0;
        for i in 0..2048u64 {
            let a = idx.set_index(LineAddr::new(i), sets);
            let b = idx.set_index(LineAddr::new(i + 1), sets);
            if (b + sets - a) % sets == 1 {
                same_set_neighbors += 1;
            }
        }
        // Under modulo indexing this would be 2048; under a PRP it is ~1.
        assert!(
            same_set_neighbors < 32,
            "contiguity survived: {same_set_neighbors}"
        );
    }

    #[test]
    fn ceaser_spreads_uniformly() {
        let idx = Indexer::ceaser(7);
        let sets = 64;
        let mut counts = vec![0usize; sets];
        for i in 0..64_000u64 {
            counts[idx.set_index(LineAddr::new(i), sets)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // Expected 1000 per set; allow generous slack.
        assert!(*min > 800 && *max < 1200, "min={min} max={max}");
    }

    #[test]
    fn modulo_indexer_uses_low_bits() {
        let idx = Indexer::Modulo;
        assert_eq!(idx.set_index(LineAddr::new(0x1234), 256), 0x34);
        assert!(!idx.is_randomized());
        assert!(Indexer::ceaser(1).is_randomized());
    }
}
