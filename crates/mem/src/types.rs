//! Fundamental newtypes shared by the whole simulator: addresses, cores,
//! cycles, and the identifiers used by CleanupSpec's side-effect tracking
//! (epoch and load identifiers).

use std::fmt;

/// Cache line size in bytes (fixed at 64 B, as in the paper's Table 4).
pub const LINE_BYTES: u64 = 64;

/// Log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// A simulation cycle count.
pub type Cycle = u64;

/// A byte address in the simulated physical address space.
///
/// ```
/// use cleanupspec_mem::types::{Addr, LineAddr};
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(), LineAddr::new(0x48));
/// assert_eq!(a.line_offset(), 0x34);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    pub const fn new(addr: u64) -> Self {
        Addr(addr)
    }

    /// Raw byte-address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Offset of this address within its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// The address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: i64) -> Addr {
        Addr(self.0.wrapping_add(bytes as u64))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line address (byte address divided by the 64-B line size).
///
/// The paper tracks 40-bit line addresses in the SEFE; we store them in a
/// `u64` but [`crate::sefe_bits`] accounting uses the architectural 40 bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number (not a byte address).
    pub const fn new(line: u64) -> Self {
        LineAddr(line)
    }

    /// Raw line-number value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of this line.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The line `n` lines after this one.
    #[must_use]
    pub const fn step(self, n: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(n as u64))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Identifies one core in the simulated system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Index usable for per-core vectors.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// CleanupSpec epoch identifier (5 bits in hardware, Figure 7).
///
/// The epoch uniquely identifies the phase of execution between two cleanups.
/// Requests carry the epoch at which they were issued; a fill whose epoch no
/// longer matches the core's current epoch is dropped without changing cache
/// state (Section 3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct EpochId(u8);

impl EpochId {
    /// Number of architectural bits (paper: 5).
    pub const BITS: u32 = 5;

    /// First epoch.
    pub const fn zero() -> Self {
        EpochId(0)
    }

    /// The next epoch, wrapping at 2^5 like the hardware counter.
    #[must_use]
    pub const fn next(self) -> Self {
        EpochId((self.0 + 1) % (1 << Self::BITS))
    }

    /// Raw counter value.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// CleanupSpec load identifier (8 bits in hardware, Figure 7).
///
/// Orders the cache-state changes made by loads so that cleanup can reverse
/// them in the opposite order (Section 3.4, "Squashing Re-ordered Loads").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LoadId(pub u64);

impl LoadId {
    /// The next load identifier.
    #[must_use]
    pub const fn next(self) -> Self {
        LoadId(self.0 + 1)
    }

    /// Architectural width (paper: 8 bits); the simulator uses a wider
    /// counter for convenience but charges storage for 8 bits.
    pub const BITS: u32 = 8;
}

impl fmt::Display for LoadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ld{}", self.0)
    }
}

/// Identifies the speculative installer of a cache line during the window of
/// speculation (Section 3.6): which core installed it and under which epoch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpecTag {
    /// Core whose transient load installed the line.
    pub core: CoreId,
    /// Epoch in which the install happened.
    pub epoch: EpochId,
    /// The installing load.
    pub load: LoadId,
    /// Cycle of the install, for window-expiry bookkeeping.
    pub installed_at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_roundtrip() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.line().base_addr().raw(), 0xdead_beef & !63);
        assert_eq!(a.line_offset(), 0xdead_beef % 64);
    }

    #[test]
    fn line_step_wraps() {
        let l = LineAddr::new(10);
        assert_eq!(l.step(-3), LineAddr::new(7));
        assert_eq!(l.step(5).raw(), 15);
    }

    #[test]
    fn epoch_wraps_at_five_bits() {
        let mut e = EpochId::zero();
        for _ in 0..32 {
            e = e.next();
        }
        assert_eq!(e, EpochId::zero());
        assert_ne!(EpochId::zero().next(), EpochId::zero());
    }

    #[test]
    fn load_id_orders() {
        assert!(LoadId(3) < LoadId(4));
        assert_eq!(LoadId(3).next(), LoadId(4));
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert_eq!(format!("{}", CoreId(2)), "core2");
        assert_eq!(format!("{}", EpochId::zero()), "e0");
        assert_eq!(format!("{}", LoadId(7)), "ld7");
        assert_eq!(format!("{}", Addr::new(64)), "0x40");
        assert_eq!(format!("{}", LineAddr::new(1)), "L0x1");
    }
}
