//! Miss-status holding registers (MSHRs) extended with CleanupSpec's
//! Side-Effect Entry (SEFE) fields (Figure 7).
//!
//! Every outstanding miss carries the epoch in which it was issued. A
//! cleanup bumps the core's current epoch; fills whose epoch no longer
//! matches are *dropped*: the data returns from memory but no cache state is
//! changed, and the entry is then freed (Section 3.3). This is what makes
//! squashing still-inflight loads free.

use crate::types::{CoreId, Cycle, EpochId, LineAddr, LoadId};
use cleanupspec_obs::{Observer, PathKind, SimEvent};

/// Where a load was (or will be) serviced from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadPath {
    /// Hit in the local L1 data cache.
    L1Hit,
    /// Missed L1, hit the shared L2.
    L2Hit,
    /// Hit a remote L1 holding the line in M/E (serviced via coherence).
    RemoteL1,
    /// Missed the whole hierarchy; serviced by DRAM.
    Mem,
    /// Serviced as a *dummy miss* by window protection (Section 3.6): the
    /// line was present but transiently installed by another core, so it is
    /// served with miss latency and no state change.
    DummyMiss,
}

impl LoadPath {
    /// True if the load needed a fill (i.e. it was an L1 miss with installs).
    pub fn is_l1_miss(self) -> bool {
        !matches!(self, LoadPath::L1Hit)
    }
}

impl std::fmt::Display for LoadPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LoadPath::L1Hit => "l1-hit",
            LoadPath::L2Hit => "l2-hit",
            LoadPath::RemoteL1 => "remote-l1",
            LoadPath::Mem => "mem",
            LoadPath::DummyMiss => "dummy-miss",
        };
        f.write_str(s)
    }
}

impl From<LoadPath> for PathKind {
    fn from(p: LoadPath) -> PathKind {
        match p {
            LoadPath::L1Hit => PathKind::L1Hit,
            LoadPath::L2Hit => PathKind::L2Hit,
            LoadPath::RemoteL1 => PathKind::RemoteHit,
            LoadPath::Mem => PathKind::Mem,
            LoadPath::DummyMiss => PathKind::Dummy,
        }
    }
}

/// The Side-Effect Entry contents returned with the load data and retained
/// in the load queue until retirement (Figure 7).
#[derive(Clone, Copy, Debug, Default)]
pub struct SefeRecord {
    /// The load installed a line in the L1 (`L1-Fill`).
    pub l1_fill: bool,
    /// The load installed a line in the L2 (`L2-Fill`).
    pub l2_fill: bool,
    /// Line evicted from the L1 by this load's install (`L1-Evict Lineaddr`).
    pub l1_evict: Option<LineAddr>,
    /// Whether the evicted victim held dirty data; the restore must
    /// reinstate the dirty bit (and pull ownership of the dirty data back
    /// from the L2) so the cleaned-up cache is byte-for-byte the
    /// pre-speculation one.
    pub l1_evict_dirty: bool,
}

impl SefeRecord {
    /// Whether cleanup has any work to do for this load.
    pub fn needs_cleanup(&self) -> bool {
        self.l1_fill || self.l2_fill
    }
}

/// Lifecycle of an MSHR entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MshrState {
    /// Miss outstanding; fill scheduled for `complete_at`.
    Pending,
    /// Fill performed; waiting for the core to collect the SEFE record.
    Filled,
    /// Squashed while inflight (epoch mismatch): the response will be
    /// dropped without changing cache state.
    Dropped,
}

/// One MSHR entry (plus its SEFE fields).
#[derive(Clone, Debug)]
pub struct MshrEntry {
    /// Missing line address.
    pub line: LineAddr,
    /// Requesting core.
    pub core: CoreId,
    /// Epoch at issue (SEFE `EpochID`).
    pub epoch: EpochId,
    /// Issuing load (SEFE `LoadID`).
    pub load: LoadId,
    /// Whether the load was speculative at issue (SEFE `isSpec`).
    pub is_spec: bool,
    /// Cycle at which the response arrives.
    pub complete_at: Cycle,
    /// Service path decided at issue.
    pub path: LoadPath,
    /// Whether the fill should install into the L2 as well (L2 miss).
    pub wants_l2_fill: bool,
    /// Entry lifecycle state.
    pub state: MshrState,
    /// SEFE produced by the fill (valid once `state == Filled`).
    pub record: SefeRecord,
    /// In insecure modes, a squashed load's fill still installs (the leak
    /// CleanupSpec closes). Set by the squash handler instead of `Dropped`.
    pub orphan: bool,
    /// Cleanup episode whose epoch bump dropped this entry (stamped by
    /// [`MshrFile::drop_pending`]; 0 while the entry is live). The fill
    /// lands cycles after the bump, so the `DroppedFill` event reads its
    /// episode from here rather than from the then-current registration.
    pub episode: u64,
    /// Allocation generation, to invalidate stale tokens.
    pub gen: u64,
}

/// Handle to an MSHR entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MshrToken {
    pub(crate) core: CoreId,
    pub(crate) idx: usize,
    pub(crate) gen: u64,
}

/// A fixed-capacity MSHR file for one core.
#[derive(Clone, Debug)]
pub struct MshrFile {
    core: CoreId,
    slots: Vec<Option<MshrEntry>>,
    gen: u64,
    high_water: usize,
    obs: Observer,
    // Entry lifecycle methods (alloc/free) lack a cycle parameter; the
    // hierarchy stamps the file each `advance` so emitted events carry the
    // current cycle without widening every public signature.
    now_hint: Cycle,
}

/// Error returned when the MSHR file is full (the core must stall the load).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrFullError;

impl std::fmt::Display for MshrFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("all MSHR entries in use")
    }
}

impl std::error::Error for MshrFullError {}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    pub fn new(core: CoreId, capacity: usize) -> Self {
        MshrFile {
            core,
            slots: (0..capacity).map(|_| None).collect(),
            gen: 0,
            high_water: 0,
            obs: Observer::disabled(),
            now_hint: 0,
        }
    }

    /// Attaches the event observer (shared with the rest of the hierarchy).
    pub fn set_observer(&mut self, obs: Observer) {
        self.obs = obs;
    }

    /// Updates the cycle stamp used by emitted lifecycle events.
    #[inline]
    pub fn stamp(&mut self, now: Cycle) {
        self.now_hint = now;
    }

    /// Allocates an entry.
    ///
    /// # Errors
    /// Returns [`MshrFullError`] when no slot is free; the caller should
    /// retry the access on a later cycle.
    pub fn alloc(&mut self, entry: MshrEntry) -> Result<MshrToken, MshrFullError> {
        let idx = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .ok_or(MshrFullError)?;
        self.gen += 1;
        let token = MshrToken {
            core: self.core,
            idx,
            gen: self.gen,
        };
        let (line, is_spec) = (entry.line, entry.is_spec);
        self.slots[idx] = Some(MshrEntry {
            gen: self.gen,
            ..entry
        });
        let occupancy = self.occupancy();
        self.high_water = self.high_water.max(occupancy);
        self.obs.emit_with(self.now_hint, || SimEvent::MshrAlloc {
            core: self.core.0,
            line: line.raw(),
            spec: is_spec,
            occupancy: occupancy as u64,
        });
        Ok(token)
    }

    /// Looks up a live entry by token.
    pub fn get(&self, token: MshrToken) -> Option<&MshrEntry> {
        self.slots
            .get(token.idx)?
            .as_ref()
            .filter(|e| e.gen == token.gen)
    }

    /// Mutable lookup by token.
    pub fn get_mut(&mut self, token: MshrToken) -> Option<&mut MshrEntry> {
        self.slots
            .get_mut(token.idx)?
            .as_mut()
            .filter(|e| e.gen == token.gen)
    }

    /// Frees the entry addressed by `token` (no-op if stale).
    pub fn free(&mut self, token: MshrToken) {
        if self.get(token).is_some() {
            let entry = self.slots[token.idx].take().expect("checked live");
            self.emit_retire(&entry);
        }
    }

    fn emit_retire(&self, entry: &MshrEntry) {
        self.obs.emit_with(self.now_hint, || SimEvent::MshrRetire {
            core: self.core.0,
            line: entry.line.raw(),
            spec: entry.is_spec,
            occupancy: self.occupancy() as u64,
        });
    }

    /// Finds a pending entry for `line` (miss merging).
    pub fn find_pending(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.slots
            .iter()
            .flatten()
            .find(|e| e.line == line && e.state == MshrState::Pending)
    }

    /// Iterates over live entries.
    pub fn iter(&self) -> impl Iterator<Item = &MshrEntry> {
        self.slots.iter().flatten()
    }

    /// Iterates mutably with slot indices (for the hierarchy's fill pass).
    pub fn iter_mut_indexed(&mut self) -> impl Iterator<Item = (usize, &mut MshrEntry)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|e| (i, e)))
    }

    /// Removes the entry in `idx` (used by the fill pass after dropping).
    pub(crate) fn clear_slot(&mut self, idx: usize) {
        if let Some(entry) = self.slots[idx].take() {
            self.emit_retire(&entry);
        }
    }

    /// Live entry count.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Live speculation-tagged entry count (the SEFE occupancy).
    pub fn spec_occupancy(&self) -> usize {
        self.slots.iter().flatten().filter(|e| e.is_spec).count()
    }

    /// Maximum simultaneous occupancy seen.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Marks the still-pending entries of this core as dropped (CleanupSpec
    /// epoch bump) and returns how many were dropped. Each dropped entry is
    /// stamped with the cleanup `episode` doing the dropping, so the
    /// `DroppedFill` emitted when the response lands is attributed to the
    /// episode that orphaned it, not whatever episode is current then.
    pub fn drop_pending(&mut self, episode: u64) -> usize {
        let mut n = 0;
        for e in self.slots.iter_mut().flatten() {
            if e.state == MshrState::Pending {
                e.state = MshrState::Dropped;
                e.episode = episode;
                n += 1;
            }
        }
        if n > 0 {
            self.obs.emit_with(self.now_hint, || SimEvent::MshrDrop {
                core: self.core.0,
                dropped: n as u64,
            });
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(line: u64, at: Cycle) -> MshrEntry {
        MshrEntry {
            line: LineAddr::new(line),
            core: CoreId(0),
            epoch: EpochId::zero(),
            load: LoadId(0),
            is_spec: true,
            complete_at: at,
            path: LoadPath::L2Hit,
            wants_l2_fill: false,
            state: MshrState::Pending,
            record: SefeRecord::default(),
            orphan: false,
            episode: 0,
            gen: 0,
        }
    }

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut m = MshrFile::new(CoreId(0), 2);
        let t = m.alloc(entry(1, 10)).unwrap();
        assert_eq!(m.get(t).unwrap().line, LineAddr::new(1));
        assert_eq!(m.occupancy(), 1);
        m.free(t);
        assert_eq!(m.occupancy(), 0);
        assert!(m.get(t).is_none(), "token is stale after free");
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut m = MshrFile::new(CoreId(0), 2);
        m.alloc(entry(1, 10)).unwrap();
        m.alloc(entry(2, 10)).unwrap();
        assert_eq!(m.alloc(entry(3, 10)), Err(MshrFullError));
        assert_eq!(m.high_water(), 2);
    }

    #[test]
    fn stale_token_does_not_alias_new_entry() {
        let mut m = MshrFile::new(CoreId(0), 1);
        let t1 = m.alloc(entry(1, 10)).unwrap();
        m.free(t1);
        let _t2 = m.alloc(entry(2, 20)).unwrap();
        assert!(m.get(t1).is_none(), "old token must not see the new entry");
    }

    #[test]
    fn find_pending_merges_only_pending() {
        let mut m = MshrFile::new(CoreId(0), 4);
        let t = m.alloc(entry(7, 10)).unwrap();
        assert!(m.find_pending(LineAddr::new(7)).is_some());
        m.get_mut(t).unwrap().state = MshrState::Filled;
        assert!(m.find_pending(LineAddr::new(7)).is_none());
    }

    #[test]
    fn drop_pending_marks_all_pending() {
        let mut m = MshrFile::new(CoreId(0), 4);
        let t1 = m.alloc(entry(1, 10)).unwrap();
        let t2 = m.alloc(entry(2, 10)).unwrap();
        m.get_mut(t2).unwrap().state = MshrState::Filled;
        assert_eq!(m.drop_pending(3), 1);
        assert_eq!(m.get(t1).unwrap().state, MshrState::Dropped);
        assert_eq!(m.get(t1).unwrap().episode, 3, "drop stamps the episode");
        assert_eq!(m.get(t2).unwrap().state, MshrState::Filled);
        assert_eq!(m.get(t2).unwrap().episode, 0, "filled entry untouched");
    }

    #[test]
    fn sefe_needs_cleanup_logic() {
        assert!(!SefeRecord::default().needs_cleanup());
        assert!(SefeRecord {
            l1_fill: true,
            ..Default::default()
        }
        .needs_cleanup());
        assert!(SefeRecord {
            l2_fill: true,
            ..Default::default()
        }
        .needs_cleanup());
    }

    #[test]
    fn load_path_l1_miss_classification() {
        assert!(!LoadPath::L1Hit.is_l1_miss());
        assert!(LoadPath::L2Hit.is_l1_miss());
        assert!(LoadPath::Mem.is_l1_miss());
        assert!(LoadPath::RemoteL1.is_l1_miss());
    }
}
