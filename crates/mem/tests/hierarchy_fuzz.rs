//! Randomized tests driving the memory hierarchy with random operation
//! sequences and checking the structural invariants (inclusion, directory
//! consistency, single-writer) plus CleanupSpec's state-restoration
//! guarantees after every step.
//!
//! The always-on tests below generate their sequences from the workspace's
//! deterministic `SplitMix64` so they run hermetically (no registry
//! dependencies). The original shrinking-capable property tests are kept
//! behind the off-by-default `proptest` feature; enabling it requires
//! restoring the `proptest` dev-dependency on a networked machine.

use cleanupspec_mem::hierarchy::{LoadKind, LoadReq, MemConfig, MemHierarchy};
use cleanupspec_mem::rng::SplitMix64;
use cleanupspec_mem::types::{CoreId, Cycle, LineAddr, LoadId};

#[derive(Clone, Copy, Debug)]
enum Op {
    Load {
        core: u8,
        line: u64,
        spec: bool,
        downgrade: bool,
    },
    InvisibleLoad {
        core: u8,
        line: u64,
    },
    Store {
        core: u8,
        line: u64,
    },
    Clflush {
        core: u8,
        line: u64,
    },
    DropInflight {
        core: u8,
    },
    Advance {
        cycles: u16,
    },
    Retire {
        core: u8,
        line: u64,
    },
}

/// Draws one operation; weights mirror the original proptest strategy
/// (5:1:2:1:1:4:1). A small line universe forces heavy aliasing and
/// eviction traffic.
fn gen_op(rng: &mut SplitMix64) -> Op {
    let core = rng.below(3) as u8;
    let line = rng.below(96);
    match rng.below(15) {
        0..=4 => Op::Load {
            core,
            line,
            spec: rng.below(2) == 1,
            downgrade: rng.below(2) == 1,
        },
        5 => Op::InvisibleLoad { core, line },
        6 | 7 => Op::Store { core, line },
        8 => Op::Clflush { core, line },
        9 => Op::DropInflight { core },
        10..=13 => Op::Advance {
            cycles: 1 + rng.below(299) as u16,
        },
        _ => Op::Retire { core, line },
    }
}

fn gen_ops(rng: &mut SplitMix64, max_len: u64) -> Vec<Op> {
    let n = rng.below(max_len) as usize + 1;
    (0..n).map(|_| gen_op(rng)).collect()
}

fn tiny_mem(window: bool) -> MemHierarchy {
    tiny_mem_skewed(window, 1)
}

fn tiny_mem_skewed(window: bool, skews: usize) -> MemHierarchy {
    MemHierarchy::new(MemConfig {
        num_cores: 3,
        l1_capacity: 4 * 64 * 2, // 2 sets x 4 ways = 8 lines: constant eviction
        l1_ways: 4,
        l2_capacity: 8 * 64 * 4, // 8 sets x 4 ways = 32 lines
        l2_ways: 4,
        l2_randomized: window,
        l2_skews: skews,
        window_protection: window,
        mshrs_per_core: 8,
        ..MemConfig::default()
    })
}

fn apply(mem: &mut MemHierarchy, now: &mut Cycle, load_seq: &mut u64, o: Op) {
    match o {
        Op::Load {
            core,
            line,
            spec,
            downgrade,
        } => {
            *load_seq += 1;
            let _ = mem.load(
                CoreId(core as usize),
                LineAddr::new(line),
                *now,
                LoadReq {
                    load: LoadId(*load_seq),
                    spec,
                    allow_downgrade: downgrade || !spec,
                    kind: LoadKind::Demand,
                    tag_spec_install: spec,
                },
            );
        }
        Op::InvisibleLoad { core, line } => {
            *load_seq += 1;
            let _ = mem.load(
                CoreId(core as usize),
                LineAddr::new(line),
                *now,
                LoadReq {
                    kind: LoadKind::Invisible,
                    ..LoadReq::non_spec(LoadId(*load_seq))
                },
            );
        }
        Op::Store { core, line } => {
            mem.store(CoreId(core as usize), LineAddr::new(line), *now);
        }
        Op::Clflush { core, line } => {
            mem.clflush(CoreId(core as usize), LineAddr::new(line), *now);
        }
        Op::DropInflight { core } => {
            mem.drop_core_inflight(CoreId(core as usize));
        }
        Op::Advance { cycles } => {
            *now += cycles as Cycle;
            mem.advance(*now);
        }
        Op::Retire { core, line } => {
            mem.retire_load(CoreId(core as usize), LineAddr::new(line));
        }
    }
}

/// Invariants hold after every operation of a random sequence, with and
/// without randomization/window protection, and with a skewed (CEASER-S)
/// L2.
#[test]
fn invariants_hold_under_random_traffic() {
    for case in 0..48u64 {
        let mut rng = SplitMix64::new(0xF0_22ED_1147 ^ case);
        let window = rng.below(2) == 1;
        let skewed = rng.below(2) == 1;
        let ops = gen_ops(&mut rng, 119);
        let mut mem = tiny_mem_skewed(window, if skewed && window { 2 } else { 1 });
        let mut now: Cycle = 0;
        let mut seq = 0u64;
        for o in ops {
            apply(&mut mem, &mut now, &mut seq, o);
            mem.advance(now);
            if let Err(e) = mem.check_invariants() {
                panic!("case {case}: invariant violated after {o:?}: {e}");
            }
        }
        // Drain everything and re-check.
        now += 10_000;
        mem.advance(now);
        mem.check_invariants().unwrap();
    }
}

/// An invisible load never changes any snapshot, no matter the state it is
/// issued in.
#[test]
fn invisible_loads_change_nothing() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0x1771_51B1_E000 ^ case);
        let setup = gen_ops(&mut rng, 60);
        let core = rng.below(3) as u8;
        let line = rng.below(96);
        let mut mem = tiny_mem(false);
        let mut now: Cycle = 0;
        let mut seq = 0u64;
        for o in setup {
            apply(&mut mem, &mut now, &mut seq, o);
        }
        now += 5_000;
        mem.advance(now);
        let l1_before: Vec<_> = (0..3).map(|c| mem.l1_snapshot(CoreId(c))).collect();
        let l2_before = mem.l2_snapshot();
        apply(
            &mut mem,
            &mut now,
            &mut seq,
            Op::InvisibleLoad { core, line },
        );
        now += 1_000;
        mem.advance(now);
        for (c, before) in l1_before.iter().enumerate() {
            assert_eq!(before, &mem.l1_snapshot(CoreId(c)), "case {case}");
        }
        assert_eq!(l2_before, mem.l2_snapshot(), "case {case}");
    }
}

/// Dropping inflight loads always prevents their fills, regardless of
/// surrounding traffic.
#[test]
fn dropped_loads_never_fill() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xD20_BBED ^ case);
        let setup = gen_ops(&mut rng, 40);
        let core = rng.below(3) as usize;
        let line = 200 + rng.below(40); // outside the setup universe
        let mut mem = tiny_mem(false);
        let mut now: Cycle = 0;
        let mut seq = 0u64;
        for o in setup {
            apply(&mut mem, &mut now, &mut seq, o);
        }
        now += 5_000;
        mem.advance(now);
        seq += 1;
        let out = mem.load(
            CoreId(core),
            LineAddr::new(line),
            now,
            LoadReq {
                spec: true,
                ..LoadReq::non_spec(LoadId(seq))
            },
        );
        if out.is_err() {
            continue; // MSHR full after setup: nothing to check
        }
        mem.drop_core_inflight(CoreId(core));
        now += 5_000;
        mem.advance(now);
        assert!(
            mem.l1(CoreId(core)).probe(LineAddr::new(line)).is_none(),
            "case {case}"
        );
        assert!(mem.l2().probe(LineAddr::new(line)).is_none(), "case {case}");
        mem.check_invariants().unwrap();
    }
}

// The original shrinking property tests. Enabling this feature requires
// restoring the `proptest` dev-dependency (removed so the workspace builds
// with no registry access).
#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    fn op() -> impl Strategy<Value = Op> {
        let line = 0u64..96;
        let core = 0u8..3;
        prop_oneof![
            5 => (core.clone(), line.clone(), any::<bool>(), any::<bool>())
                .prop_map(|(c, l, s, d)| Op::Load { core: c, line: l, spec: s, downgrade: d }),
            1 => (core.clone(), line.clone()).prop_map(|(c, l)| Op::InvisibleLoad { core: c, line: l }),
            2 => (core.clone(), line.clone()).prop_map(|(c, l)| Op::Store { core: c, line: l }),
            1 => (core.clone(), line.clone()).prop_map(|(c, l)| Op::Clflush { core: c, line: l }),
            1 => core.clone().prop_map(|c| Op::DropInflight { core: c }),
            4 => (1u16..300).prop_map(|n| Op::Advance { cycles: n }),
            1 => (core, line).prop_map(|(c, l)| Op::Retire { core: c, line: l }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_invariants_hold_under_random_traffic(
            ops in proptest::collection::vec(op(), 1..120),
            window in any::<bool>(),
            skewed in any::<bool>(),
        ) {
            let mut mem = tiny_mem_skewed(window, if skewed && window { 2 } else { 1 });
            let mut now: Cycle = 0;
            let mut seq = 0u64;
            for o in ops {
                apply(&mut mem, &mut now, &mut seq, o);
                mem.advance(now);
                if let Err(e) = mem.check_invariants() {
                    panic!("invariant violated after {o:?}: {e}");
                }
            }
            now += 10_000;
            mem.advance(now);
            mem.check_invariants().unwrap();
        }
    }
}
