//! Property tests driving the memory hierarchy with random operation
//! sequences and checking the structural invariants (inclusion, directory
//! consistency, single-writer) plus CleanupSpec's state-restoration
//! guarantees after every step.

use cleanupspec_mem::hierarchy::{LoadKind, LoadReq, MemConfig, MemHierarchy};
use cleanupspec_mem::types::{CoreId, Cycle, LineAddr, LoadId};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    Load { core: u8, line: u64, spec: bool, downgrade: bool },
    InvisibleLoad { core: u8, line: u64 },
    Store { core: u8, line: u64 },
    Clflush { core: u8, line: u64 },
    DropInflight { core: u8 },
    Advance { cycles: u16 },
    Retire { core: u8, line: u64 },
}

fn op() -> impl Strategy<Value = Op> {
    // A small line universe forces heavy aliasing and eviction traffic.
    let line = 0u64..96;
    let core = 0u8..3;
    prop_oneof![
        5 => (core.clone(), line.clone(), any::<bool>(), any::<bool>())
            .prop_map(|(c, l, s, d)| Op::Load { core: c, line: l, spec: s, downgrade: d }),
        1 => (core.clone(), line.clone()).prop_map(|(c, l)| Op::InvisibleLoad { core: c, line: l }),
        2 => (core.clone(), line.clone()).prop_map(|(c, l)| Op::Store { core: c, line: l }),
        1 => (core.clone(), line.clone()).prop_map(|(c, l)| Op::Clflush { core: c, line: l }),
        1 => core.clone().prop_map(|c| Op::DropInflight { core: c }),
        4 => (1u16..300).prop_map(|n| Op::Advance { cycles: n }),
        1 => (core, line).prop_map(|(c, l)| Op::Retire { core: c, line: l }),
    ]
}

fn tiny_mem(window: bool) -> MemHierarchy {
    tiny_mem_skewed(window, 1)
}

fn tiny_mem_skewed(window: bool, skews: usize) -> MemHierarchy {
    MemHierarchy::new(MemConfig {
        num_cores: 3,
        l1_capacity: 4 * 64 * 2, // 2 sets x 4 ways = 8 lines: constant eviction
        l1_ways: 4,
        l2_capacity: 8 * 64 * 4, // 8 sets x 4 ways = 32 lines
        l2_ways: 4,
        l2_randomized: window,
        l2_skews: skews,
        window_protection: window,
        mshrs_per_core: 8,
        ..MemConfig::default()
    })
}

fn apply(mem: &mut MemHierarchy, now: &mut Cycle, load_seq: &mut u64, o: Op) {
    match o {
        Op::Load {
            core,
            line,
            spec,
            downgrade,
        } => {
            *load_seq += 1;
            let _ = mem.load(
                CoreId(core as usize),
                LineAddr::new(line),
                *now,
                LoadReq {
                    load: LoadId(*load_seq),
                    spec,
                    allow_downgrade: downgrade || !spec,
                    kind: LoadKind::Demand,
                    tag_spec_install: spec,
                },
            );
        }
        Op::InvisibleLoad { core, line } => {
            *load_seq += 1;
            let _ = mem.load(
                CoreId(core as usize),
                LineAddr::new(line),
                *now,
                LoadReq {
                    kind: LoadKind::Invisible,
                    ..LoadReq::non_spec(LoadId(*load_seq))
                },
            );
        }
        Op::Store { core, line } => {
            mem.store(CoreId(core as usize), LineAddr::new(line), *now);
        }
        Op::Clflush { core, line } => {
            mem.clflush(CoreId(core as usize), LineAddr::new(line), *now);
        }
        Op::DropInflight { core } => {
            mem.drop_core_inflight(CoreId(core as usize));
        }
        Op::Advance { cycles } => {
            *now += cycles as Cycle;
            mem.advance(*now);
        }
        Op::Retire { core, line } => {
            mem.retire_load(CoreId(core as usize), LineAddr::new(line));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants hold after every operation of a random sequence, with
    /// and without randomization/window protection, and with a skewed
    /// (CEASER-S) L2.
    #[test]
    fn prop_invariants_hold_under_random_traffic(
        ops in proptest::collection::vec(op(), 1..120),
        window in any::<bool>(),
        skewed in any::<bool>(),
    ) {
        let mut mem = tiny_mem_skewed(window, if skewed && window { 2 } else { 1 });
        let mut now: Cycle = 0;
        let mut seq = 0u64;
        for o in ops {
            apply(&mut mem, &mut now, &mut seq, o);
            mem.advance(now);
            if let Err(e) = mem.check_invariants() {
                panic!("invariant violated after {o:?}: {e}");
            }
        }
        // Drain everything and re-check.
        now += 10_000;
        mem.advance(now);
        mem.check_invariants().unwrap();
    }

    /// An invisible load never changes any snapshot, no matter the state
    /// it is issued in.
    #[test]
    fn prop_invisible_loads_change_nothing(
        setup in proptest::collection::vec(op(), 0..60),
        core in 0u8..3,
        line in 0u64..96,
    ) {
        let mut mem = tiny_mem(false);
        let mut now: Cycle = 0;
        let mut seq = 0u64;
        for o in setup {
            apply(&mut mem, &mut now, &mut seq, o);
        }
        now += 5_000;
        mem.advance(now);
        let l1_before: Vec<_> = (0..3).map(|c| mem.l1_snapshot(CoreId(c))).collect();
        let l2_before = mem.l2_snapshot();
        apply(&mut mem, &mut now, &mut seq, Op::InvisibleLoad { core, line });
        now += 1_000;
        mem.advance(now);
        for c in 0..3 {
            prop_assert_eq!(&l1_before[c], &mem.l1_snapshot(CoreId(c)));
        }
        prop_assert_eq!(l2_before, mem.l2_snapshot());
    }

    /// Dropping inflight loads always prevents their fills, regardless of
    /// surrounding traffic.
    #[test]
    fn prop_dropped_loads_never_fill(
        setup in proptest::collection::vec(op(), 0..40),
        core in 0u8..3,
        line in 200u64..240, // outside the setup universe
    ) {
        let mut mem = tiny_mem(false);
        let mut now: Cycle = 0;
        let mut seq = 0u64;
        for o in setup {
            apply(&mut mem, &mut now, &mut seq, o);
        }
        now += 5_000;
        mem.advance(now);
        seq += 1;
        let out = mem.load(
            CoreId(core as usize),
            LineAddr::new(line),
            now,
            LoadReq {
                spec: true,
                ..LoadReq::non_spec(LoadId(seq))
            },
        );
        prop_assume!(out.is_ok());
        mem.drop_core_inflight(CoreId(core as usize));
        now += 5_000;
        mem.advance(now);
        prop_assert!(mem.l1(CoreId(core as usize)).probe(LineAddr::new(line)).is_none());
        prop_assert!(mem.l2().probe(LineAddr::new(line)).is_none());
        mem.check_invariants().unwrap();
    }
}
