//! Log2-bucketed histograms for latency and occupancy distributions.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket `k`
//! (k >= 1) holds values in `[2^(k-1), 2^k)`. Recording is two
//! instructions (leading-zeros + increment), cheap enough to leave on
//! unconditionally in the hierarchy's hot paths.

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    counts: [u64; 65],
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; 65],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        i => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of all samples (NaN-free: 0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile: the inclusive upper bound of the bucket
    /// containing the `q`-th sample (`q` in `[0, 1]`). Exact for
    /// distributions that land in single buckets; otherwise conservative
    /// (reports high by at most 2x).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
    }

    /// Decomposes into raw parts `(counts, total, sum, max)` for exact
    /// serialization (cs-snap checkpoints). `sum` is the full `u128`
    /// sample sum — serialize it as a decimal string, not a JSON number.
    pub fn raw_parts(&self) -> (&[u64; 65], u64, u128, u64) {
        (&self.counts, self.total, self.sum, self.max)
    }

    /// Rebuilds a histogram from [`Self::raw_parts`] output (cs-snap
    /// checkpoint load). The parts are trusted as-is; consistency is
    /// enforced by the checkpoint's digest, not here.
    pub fn from_raw_parts(counts: [u64; 65], total: u64, sum: u128, max: u64) -> Self {
        Histogram {
            counts,
            total,
            sum,
            max,
        }
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Writes this histogram as a JSON object under `key`:
    /// `{"count", "mean", "max", "p50", "p95", "p99", "buckets": [{lo,hi,n}]}`.
    pub fn write_json(&self, w: &mut crate::json::JsonWriter, key: &str) {
        self.write_summary_json(w, key, true);
    }

    /// Writes the summary stats only — `{"count", "mean", "max", "p50",
    /// "p95", "p99"}` — without the bucket list (report JSON surfaces these
    /// directly so consumers need no trace sink to recover them).
    pub fn write_summary(&self, w: &mut crate::json::JsonWriter, key: &str) {
        self.write_summary_json(w, key, false);
    }

    fn write_summary_json(&self, w: &mut crate::json::JsonWriter, key: &str, buckets: bool) {
        w.open_object(Some(key))
            .int("count", self.total)
            .float("mean", self.mean())
            .int("max", self.max)
            .int("p50", self.quantile(0.50))
            .int("p95", self.quantile(0.95))
            .int("p99", self.quantile(0.99));
        if buckets {
            w.open_array("buckets");
            for (lo, hi, n) in self.buckets() {
                w.open_object(None)
                    .int("lo", lo)
                    .int("hi", hi)
                    .int("n", n)
                    .close_object();
            }
            w.close_array();
        }
        w.close_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_powers_land_in_expected_buckets() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(u64::MAX), 64);
    }

    #[test]
    fn bounds_partition_the_domain() {
        for i in 1..64 {
            assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1));
            assert_eq!(bucket(bucket_lo(i)), i);
            assert_eq!(bucket(bucket_hi(i)), i);
        }
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        // 499 lives in [256, 511]; the bucket bound must cover it.
        assert!((499 / 2..=999).contains(&p50));
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(900);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 900);
        assert!((a.mean() - 304.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new();
        h.record(10);
        let mut w = crate::json::JsonWriter::new();
        w.open_object(None);
        h.write_json(&mut w, "lat");
        w.close_object();
        let j = w.finish();
        assert!(j.contains("\"lat\""), "{j}");
        assert!(j.contains("\"p95\""), "{j}");
        assert!(j.contains("\"p99\""), "{j}");
        assert!(j.contains("\"buckets\""), "{j}");
    }

    #[test]
    fn summary_json_omits_buckets() {
        let mut h = Histogram::new();
        h.record(10);
        let mut w = crate::json::JsonWriter::new();
        w.open_object(None);
        h.write_summary(&mut w, "lat");
        w.close_object();
        let j = w.finish();
        assert!(j.contains("\"p50\""), "{j}");
        assert!(j.contains("\"p95\""), "{j}");
        assert!(!j.contains("\"buckets\""), "{j}");
    }
}
