//! Crash-safe file replacement shared by the file-producing writers.
//!
//! `std::fs::write` straight onto the target path leaves a torn,
//! half-written file behind if the process dies mid-write — and the
//! trace/metrics writers run on `Drop` paths, which is exactly when a
//! crashing process fires them. This helper writes to a tmp name unique
//! to this writer (pid + process-wide counter, so two sinks flushing the
//! same path never clobber each other's tmp file), fsyncs, then renames
//! into place: readers only ever observe the previous complete file or
//! the new complete one.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces `path` with `bytes` (unique tmp + fsync + rename).
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let leaf = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    let unique = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_file_name(format!(".{leaf}.tmp-{}-{unique}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_content_and_leaves_no_tmp_litter() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cs-atomicio-{}.txt", std::process::id()));
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            assert!(
                !name.contains("cs-atomicio") || !name.contains(".tmp-"),
                "tmp file left behind: {name}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_write_keeps_the_old_file() {
        // Writing under a path whose parent is a regular file must fail
        // without touching anything else.
        let dir = std::env::temp_dir();
        let blocker = dir.join(format!("cs-atomicio-block-{}", std::process::id()));
        std::fs::write(&blocker, b"not a dir").unwrap();
        let target = blocker.join("child.txt");
        assert!(atomic_write(&target, b"payload").is_err());
        assert_eq!(std::fs::read(&blocker).unwrap(), b"not a dir");
        let _ = std::fs::remove_file(&blocker);
    }
}
