//! Bounded in-memory ring buffer sink.

use crate::event::SimEvent;
use crate::observer::EventSink;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One recorded event with its cycle stamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventRecord {
    /// Simulation cycle the event occurred at.
    pub cycle: u64,
    /// The event.
    pub event: SimEvent,
}

/// Keeps the most recent `capacity` events; older ones are discarded.
///
/// This subsumes the core-local `TraceBuffer`: the same bounded-window
/// semantics, but fed by every layer of the machine.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<EventRecord>,
    total: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            total: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf.iter()
    }

    /// The retained events as an owned vector, oldest first.
    pub fn to_vec(&self) -> Vec<EventRecord> {
        self.buf.iter().copied().collect()
    }

    /// Total events ever recorded (including discarded ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events discarded because the ring was full — the backpressure
    /// signal a sizing flag (`--ring-capacity`) is tuned against.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Human-readable dump, one line per retained event.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.buf {
            let _ = writeln!(out, "c{:>8} {}", r.cycle, r.event);
        }
        out
    }
}

impl EventSink for RingSink {
    fn record(&mut self, cycle: u64, event: &SimEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(EventRecord {
            cycle,
            event: *event,
        });
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(line: u64) -> SimEvent {
        SimEvent::DramWriteback { line }
    }

    #[test]
    fn keeps_most_recent_when_full() {
        let mut r = RingSink::new(3);
        for i in 0..5 {
            r.record(i, &ev(i));
        }
        assert_eq!(r.total_recorded(), 5);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped(), 2);
        let lines: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(lines, vec![2, 3, 4]);
    }

    #[test]
    fn dump_contains_cycle_and_kind() {
        let mut r = RingSink::new(8);
        r.record(42, &ev(0x99));
        let d = r.dump();
        assert!(d.contains("c      42"), "{d}");
        assert!(d.contains("dram-writeback"), "{d}");
        assert!(d.contains("line=0x99"), "{d}");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingSink::new(0);
        r.record(1, &ev(1));
        r.record(2, &ev(2));
        assert_eq!(r.events().count(), 1);
    }
}
