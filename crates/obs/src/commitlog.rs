//! Per-core committed-instruction log.
//!
//! Records every [`SimEvent::Commit`] as `(pc, line)` in commit order, one
//! stream per core. The `cs-smith` architectural-equivalence oracle
//! compares these streams across security schemes and against the in-order
//! reference interpreter: schemes may reorder *execution* freely, but the
//! committed stream is architecture and must be identical everywhere.

use crate::event::SimEvent;
use crate::observer::EventSink;

/// One committed instruction: its PC and, for loads, the accessed line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommitEntry {
    /// Program counter.
    pub pc: u64,
    /// Raw line address for loads; `None` for other instructions (and for
    /// loads whose line was unavailable at commit, e.g. a load-queue entry
    /// already released to an off-critical-path validation).
    pub line: Option<u64>,
}

/// An [`EventSink`] accumulating per-core commit streams.
#[derive(Default, Debug)]
pub struct CommitLogSink {
    streams: Vec<Vec<CommitEntry>>,
}

impl CommitLogSink {
    /// An empty log; per-core streams appear as cores commit.
    pub fn new() -> Self {
        CommitLogSink::default()
    }

    /// The commit stream of `core` (empty if it never committed).
    pub fn stream(&self, core: usize) -> &[CommitEntry] {
        self.streams.get(core).map_or(&[], Vec::as_slice)
    }

    /// Number of cores that have committed at least one instruction.
    pub fn cores(&self) -> usize {
        self.streams.len()
    }

    /// The committed PCs of `core` (the scheme-invariant part of the
    /// stream: `line` may legitimately be absent under schemes that
    /// release the load queue early).
    pub fn pcs(&self, core: usize) -> Vec<u64> {
        self.stream(core).iter().map(|e| e.pc).collect()
    }

    /// Total commits across all cores.
    pub fn total(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }
}

impl EventSink for CommitLogSink {
    fn record(&mut self, _cycle: u64, event: &SimEvent) {
        if let SimEvent::Commit { core, pc, line, .. } = event {
            if self.streams.len() <= *core {
                self.streams.resize_with(*core + 1, Vec::new);
            }
            self.streams[*core].push(CommitEntry {
                pc: *pc,
                line: *line,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_core_streams_in_order() {
        let mut s = CommitLogSink::new();
        s.record(
            1,
            &SimEvent::Commit {
                core: 0,
                seq: 0,
                pc: 10,
                line: None,
            },
        );
        s.record(
            2,
            &SimEvent::Commit {
                core: 1,
                seq: 0,
                pc: 20,
                line: Some(0x40),
            },
        );
        s.record(
            3,
            &SimEvent::Commit {
                core: 0,
                seq: 1,
                pc: 11,
                line: None,
            },
        );
        // Non-commit events are ignored.
        s.record(4, &SimEvent::DramWriteback { line: 1 });
        assert_eq!(s.cores(), 2);
        assert_eq!(s.pcs(0), vec![10, 11]);
        assert_eq!(s.stream(1)[0].line, Some(0x40));
        assert_eq!(s.total(), 3);
        assert!(s.stream(7).is_empty());
    }
}
