//! Chrome trace-event / Perfetto exporter.
//!
//! Renders the recorded run as the JSON object format accepted by
//! `chrome://tracing` and <https://ui.perfetto.dev>: a `traceEvents`
//! array of metadata (`ph: "M"`), complete (`"X"`), instant (`"i"`), and
//! counter (`"C"`) events. One simulation cycle maps to one microsecond
//! of trace time (the viewer's native unit), so cycle deltas read
//! directly off the timeline.
//!
//! Track layout: each [`Layer`] is a "process" (pid), each core a
//! "thread" (tid) within it. Loads and cleanups render as duration slices
//! (`"X"` with `dur` = latency/stall); everything else is an instant.
//! MSHR alloc/retire additionally drive an occupancy counter track.

use crate::event::{Layer, SimEvent};
use crate::json::JsonWriter;
use crate::metrics::CounterSample;
use crate::observer::EventSink;
use crate::ring::EventRecord;
use std::collections::{BTreeMap, BTreeSet};

fn pid(layer: Layer) -> u64 {
    match layer {
        Layer::Pipeline => 1,
        Layer::Cache => 2,
        Layer::Mshr => 3,
        Layer::Cleanup => 4,
        Layer::Dram => 5,
    }
}

/// Synthetic process id for host-side self-profiling counter tracks
/// ([`crate::MetricsRegistry`] samples); distinct from every [`Layer`] pid.
const HOST_PID: u64 = 6;

/// Accumulates events and renders them as Chrome trace-event JSON.
///
/// With an output path configured ([`PerfettoSink::with_output`]) the
/// trace is written on [`EventSink::finish`] and — if `finish` never ran,
/// e.g. the run panicked mid-simulation — on `Drop`, so a crashing run
/// still leaves a loadable trace of everything up to the crash.
#[derive(Debug, Default)]
pub struct PerfettoSink {
    events: Vec<EventRecord>,
    host_counters: Vec<CounterSample>,
    output: Option<std::path::PathBuf>,
    flushed: bool,
}

impl PerfettoSink {
    /// An empty sink; the caller renders and writes the trace itself.
    pub fn new() -> Self {
        PerfettoSink::default()
    }

    /// An empty sink that writes its trace to `path` on finish/drop.
    pub fn with_output(path: impl Into<std::path::PathBuf>) -> Self {
        PerfettoSink {
            events: Vec::new(),
            host_counters: Vec::new(),
            output: Some(path.into()),
            flushed: false,
        }
    }

    /// Attaches host-side counter samples (from a
    /// [`crate::MetricsRegistry`]) so they render as counter tracks under
    /// a dedicated "host" process, alongside the simulation's tracks.
    pub fn add_host_counters(&mut self, samples: impl IntoIterator<Item = CounterSample>) {
        self.host_counters.extend(samples);
    }

    /// Events captured so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders and writes the trace to the configured output path (no-op
    /// without one), atomically — a crash mid-write can never leave a
    /// torn, unloadable trace where a previous complete one stood.
    /// Returns the number of bytes written.
    pub fn write_output(&mut self) -> std::io::Result<usize> {
        let Some(path) = self.output.clone() else {
            return Ok(0);
        };
        let json = self.render();
        crate::atomicio::atomic_write(&path, json.as_bytes())?;
        self.flushed = true;
        Ok(json.len())
    }

    /// Renders the full trace as a JSON string.
    pub fn render(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.open_array("traceEvents");

        // Track-naming metadata for every (layer, core) pair that appears.
        let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
        for r in &self.events {
            let layer = r.event.layer();
            let tid = r.event.core().unwrap_or(0) as u64;
            tracks.insert((pid(layer), tid));
        }
        for layer in Layer::ALL {
            if tracks.iter().any(|&(p, _)| p == pid(layer)) {
                w.open_object(None)
                    .string("ph", "M")
                    .string("name", "process_name")
                    .int("pid", pid(layer));
                w.open_object(Some("args")).string("name", layer.as_str());
                w.close_object().close_object();
            }
        }
        for &(p, t) in &tracks {
            w.open_object(None)
                .string("ph", "M")
                .string("name", "thread_name")
                .int("pid", p)
                .int("tid", t);
            w.open_object(Some("args"))
                .string("name", &format!("core{t}"));
            w.close_object().close_object();
        }
        if !self.host_counters.is_empty() {
            w.open_object(None)
                .string("ph", "M")
                .string("name", "process_name")
                .int("pid", HOST_PID);
            w.open_object(Some("args")).string("name", "host");
            w.close_object().close_object();
        }

        for r in &self.events {
            self.write_event(&mut w, r);
        }
        self.write_episode_spans(&mut w);
        for s in &self.host_counters {
            w.open_object(None)
                .string("name", &s.name)
                .string("ph", "C")
                .int("pid", HOST_PID)
                .int("tid", 0)
                .int("ts", s.ts);
            w.open_object(Some("args")).float("value", s.value);
            w.close_object().close_object();
        }
        w.close_array();
        w.string("displayTimeUnit", "ms");
        w.close_object();
        w.finish()
    }

    /// One async ("b"/"e") span per cleanup episode, on the cleanup
    /// process's core track: the whole squash-to-resume window reads as
    /// a single named slice stacked above the individual undo events.
    /// Episodes still open when the trace ends render as unterminated
    /// begins (Perfetto draws them to the end of the timeline).
    fn write_episode_spans(&self, w: &mut JsonWriter) {
        let mut begins: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut ends: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for r in &self.events {
            match r.event {
                SimEvent::Squash { core, episode, .. } if episode != 0 => {
                    begins.entry((core as u64, episode)).or_insert(r.cycle);
                }
                SimEvent::CleanupEnd { core, episode, .. } if episode != 0 => {
                    ends.insert((core as u64, episode), r.cycle);
                }
                _ => {}
            }
        }
        for (&(core, ep), &start) in &begins {
            let id = format!("c{core}e{ep}");
            let name = format!("episode {ep}");
            let mut span = |ph: &str, ts: u64| {
                w.open_object(None)
                    .string("name", &name)
                    .string("cat", "episode")
                    .string("ph", ph)
                    .string("id", &id)
                    .int("pid", pid(Layer::Cleanup))
                    .int("tid", core)
                    .int("ts", ts);
                w.open_object(Some("args")).int("episode", ep);
                w.close_object().close_object();
            };
            span("b", start);
            if let Some(&end) = ends.get(&(core, ep)) {
                span("e", end.max(start));
            }
        }
    }

    fn write_event(&self, w: &mut JsonWriter, r: &EventRecord) {
        let e = &r.event;
        let layer = e.layer();
        let tid = e.core().unwrap_or(0) as u64;

        // Duration slices where the span is known at emission time.
        let dur = match *e {
            SimEvent::LoadIssue { latency, .. } => Some(latency.max(1)),
            SimEvent::CleanupStart { stall, .. } => Some(stall.max(1)),
            _ => None,
        };

        w.open_object(None)
            .string("name", e.kind())
            .string("cat", layer.as_str())
            .int("pid", pid(layer))
            .int("tid", tid)
            .int("ts", r.cycle);
        match dur {
            Some(d) => {
                w.string("ph", "X").int("dur", d);
            }
            None => {
                w.string("ph", "i").string("s", "t");
            }
        }
        w.open_object(Some("args"));
        for (name, value) in e.fields() {
            match value {
                crate::event::FieldValue::U64(v) => w.int(name, v),
                crate::event::FieldValue::Bool(v) => w.bool(name, v),
                crate::event::FieldValue::Str(v) => w.string(name, v),
            };
        }
        w.close_object().close_object();

        // Occupancy counter track fed by MSHR lifecycle events.
        if let SimEvent::MshrAlloc {
            core, occupancy, ..
        }
        | SimEvent::MshrRetire {
            core, occupancy, ..
        } = *e
        {
            w.open_object(None)
                .string("name", "mshr_occupancy")
                .string("ph", "C")
                .int("pid", pid(Layer::Mshr))
                .int("tid", core as u64)
                .int("ts", r.cycle);
            w.open_object(Some("args")).int("entries", occupancy);
            w.close_object().close_object();
        }
    }
}

impl EventSink for PerfettoSink {
    fn record(&mut self, cycle: u64, event: &SimEvent) {
        self.events.push(EventRecord {
            cycle,
            event: *event,
        });
    }

    fn finish(&mut self) {
        if let Err(e) = self.write_output() {
            eprintln!("warning: cannot write perfetto trace: {e}");
        }
    }
}

impl Drop for PerfettoSink {
    fn drop(&mut self) {
        if !self.flushed {
            if let Err(e) = self.write_output() {
                eprintln!("warning: cannot write perfetto trace: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheLevel, PathKind};

    fn sample() -> PerfettoSink {
        let mut s = PerfettoSink::new();
        s.record(
            10,
            &SimEvent::LoadIssue {
                core: 0,
                seq: 1,
                line: 0x40,
                path: PathKind::Mem,
                spec: true,
                latency: 100,
            },
        );
        s.record(
            110,
            &SimEvent::Fill {
                core: 0,
                line: 0x40,
                level: CacheLevel::L1,
                spec: true,
            },
        );
        s.record(
            111,
            &SimEvent::MshrAlloc {
                core: 0,
                line: 0x40,
                spec: true,
                occupancy: 1,
            },
        );
        s
    }

    #[test]
    fn render_is_balanced_json_with_trace_events() {
        let j = sample().render();
        assert!(crate::json::tests::balanced(&j), "{j}");
        assert!(j.starts_with('{'));
        assert!(j.contains("\"traceEvents\""));
    }

    #[test]
    fn loads_are_complete_events_with_duration() {
        let j = sample().render();
        assert!(j.contains("\"ph\": \"X\""), "{j}");
        assert!(j.contains("\"dur\": 100"), "{j}");
    }

    #[test]
    fn instants_carry_scope() {
        let j = sample().render();
        assert!(j.contains("\"ph\": \"i\""), "{j}");
        assert!(j.contains("\"s\": \"t\""), "{j}");
    }

    #[test]
    fn metadata_names_layers_and_cores() {
        let j = sample().render();
        assert!(j.contains("\"process_name\""), "{j}");
        assert!(j.contains("\"name\": \"pipeline\""), "{j}");
        assert!(j.contains("\"name\": \"core0\""), "{j}");
    }

    #[test]
    fn mshr_events_feed_a_counter_track() {
        let j = sample().render();
        assert!(j.contains("\"ph\": \"C\""), "{j}");
        assert!(j.contains("\"mshr_occupancy\""), "{j}");
    }

    #[test]
    fn host_counters_render_under_host_process() {
        let mut s = sample();
        s.add_host_counters(vec![
            CounterSample {
                name: "sim_kips".to_string(),
                ts: 50,
                value: 123.5,
            },
            CounterSample {
                name: "events_per_sec".to_string(),
                ts: 50,
                value: 1e6,
            },
        ]);
        let j = s.render();
        assert!(crate::json::tests::balanced(&j), "{j}");
        assert!(j.contains("\"name\": \"host\""), "{j}");
        assert!(j.contains("\"sim_kips\""), "{j}");
        assert!(j.contains(&format!("\"pid\": {HOST_PID}")), "{j}");
    }

    #[test]
    fn episodes_render_as_async_spans() {
        let mut s = PerfettoSink::new();
        s.record(
            10,
            &SimEvent::Squash {
                core: 0,
                seq: 1,
                squashed: 3,
                episode: 1,
            },
        );
        s.record(
            30,
            &SimEvent::CleanupEnd {
                core: 0,
                stall: 20,
                episode: 1,
            },
        );
        // A second episode left open: begin only.
        s.record(
            50,
            &SimEvent::Squash {
                core: 0,
                seq: 9,
                squashed: 1,
                episode: 2,
            },
        );
        let j = s.render();
        assert!(crate::json::tests::balanced(&j), "{j}");
        assert!(j.contains("\"ph\": \"b\""), "{j}");
        assert!(j.contains("\"ph\": \"e\""), "{j}");
        assert!(j.contains("\"id\": \"c0e1\""), "{j}");
        assert!(j.contains("\"name\": \"episode 1\""), "{j}");
        assert_eq!(
            j.matches("\"id\": \"c0e2\"").count(),
            1,
            "open = begin only"
        );
    }

    #[test]
    fn empty_trace_still_renders() {
        let j = PerfettoSink::new().render();
        assert!(crate::json::tests::balanced(&j), "{j}");
        assert!(j.contains("\"traceEvents\": []"), "{j}");
    }

    #[test]
    fn drop_writes_configured_output() {
        let path =
            std::env::temp_dir().join(format!("cs-perfetto-drop-{}.json", std::process::id()));
        {
            let mut s = PerfettoSink::with_output(&path);
            s.record(
                7,
                &SimEvent::Fill {
                    core: 0,
                    line: 0x40,
                    level: CacheLevel::L2,
                    spec: true,
                },
            );
            // No finish(): the Drop impl must write the trace.
        }
        let j = std::fs::read_to_string(&path).unwrap();
        assert!(crate::json::tests::balanced(&j), "{j}");
        assert!(j.contains("\"traceEvents\""), "{j}");
        assert!(j.contains("\"fill\""), "{j}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finish_writes_once_and_drop_does_not_rewrite() {
        let path =
            std::env::temp_dir().join(format!("cs-perfetto-fin-{}.json", std::process::id()));
        {
            let mut s = PerfettoSink::with_output(&path);
            s.record(1, &SimEvent::DramWriteback { line: 2 });
            s.finish();
            std::fs::remove_file(&path).unwrap();
            // Drop must not resurrect the file after an explicit finish.
        }
        assert!(!path.exists());
    }
}
