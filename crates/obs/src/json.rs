//! A minimal dependency-free JSON writer.
//!
//! Shared by the report serializer in the `cleanupspec` crate and the
//! JSONL/Perfetto sinks here. Hand-rolled: everything serialized in this
//! workspace is a flat tree of numbers and short strings, so a writer
//! beats a serde dependency (which could not be resolved offline anyway).

use std::fmt::Write as _;

/// A minimal JSON value writer.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<bool>, // per open object/array: "has at least one element"
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn comma(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.out.push_str(", ");
            }
            *has = true;
        }
    }

    /// Opens an object (optionally as the value of `key`).
    pub fn open_object(&mut self, key: Option<&str>) -> &mut Self {
        self.comma();
        if let Some(k) = key {
            let _ = write!(self.out, "\"{}\": ", escape(k));
        }
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn close_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Opens an array as the value of `key`.
    pub fn open_array(&mut self, key: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": [", escape(key));
        self.stack.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn close_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Writes a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": \"{}\"", escape(key), escape(value));
        self
    }

    /// Writes an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": {value}", escape(key));
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": {value}", escape(key));
        self
    }

    /// Writes a float field (NaN/inf become null).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.comma();
        if value.is_finite() {
            let _ = write!(self.out, "\"{}\": {value:.6}", escape(key));
        } else {
            let _ = write!(self.out, "\"{}\": null", escape(key));
        }
        self
    }

    /// Finishes and returns the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced open/close");
        self.out
    }
}

fn escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o
}

/// Serializes one event (with its cycle stamp) as a single-line JSON
/// object: `{"cycle": N, "layer": "...", "kind": "...", ...fields}`.
pub fn event_to_json(cycle: u64, event: &crate::event::SimEvent) -> String {
    use crate::event::FieldValue;
    let mut w = JsonWriter::new();
    w.open_object(None)
        .int("cycle", cycle)
        .string("layer", event.layer().as_str())
        .string("kind", event.kind());
    for (name, value) in event.fields() {
        match value {
            FieldValue::U64(v) => w.int(name, v),
            FieldValue::Bool(v) => w.bool(name, v),
            FieldValue::Str(v) => w.string(name, v),
        };
    }
    w.close_object();
    w.finish()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::event::{CacheLevel, SimEvent};

    pub(crate) fn balanced(s: &str) -> bool {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.open_object(None)
            .string("k\"ey", "va\\lue\nnewline")
            .close_object();
        let j = w.finish();
        assert!(j.contains("k\\\"ey"));
        assert!(j.contains("va\\\\lue\\nnewline"));
        assert!(balanced(&j));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.open_object(None).float("x", f64::NAN).close_object();
        assert!(w.finish().contains("\"x\": null"));
    }

    #[test]
    fn bools_are_bare() {
        let mut w = JsonWriter::new();
        w.open_object(None).bool("b", true).close_object();
        assert!(w.finish().contains("\"b\": true"));
    }

    #[test]
    fn arrays_separate_elements() {
        let mut w = JsonWriter::new();
        w.open_object(None).open_array("a");
        for i in 0..3 {
            w.open_object(None).int("i", i).close_object();
        }
        w.close_array().close_object();
        let j = w.finish();
        assert_eq!(j.matches("{\"i\"").count(), 3);
        assert_eq!(j.matches("}, {").count(), 2);
        assert!(balanced(&j));
    }

    #[test]
    fn event_json_has_cycle_kind_and_fields() {
        let j = event_to_json(
            7,
            &SimEvent::Fill {
                core: 0,
                line: 0x40,
                level: CacheLevel::L1,
                spec: true,
            },
        );
        assert!(balanced(&j), "{j}");
        assert!(j.contains("\"cycle\": 7"), "{j}");
        assert!(j.contains("\"kind\": \"fill\""), "{j}");
        assert!(j.contains("\"line\": 64"), "{j}");
        assert!(j.contains("\"spec\": true"), "{j}");
    }
}
