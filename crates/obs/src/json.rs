//! A minimal dependency-free JSON writer.
//!
//! Shared by the report serializer in the `cleanupspec` crate and the
//! JSONL/Perfetto sinks here. Hand-rolled: everything serialized in this
//! workspace is a flat tree of numbers and short strings, so a writer
//! beats a serde dependency (which could not be resolved offline anyway).

use crate::event::SimEvent;
use std::fmt::Write as _;

/// A minimal JSON value writer.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<bool>, // per open object/array: "has at least one element"
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn comma(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.out.push_str(", ");
            }
            *has = true;
        }
    }

    /// Opens an object (optionally as the value of `key`).
    pub fn open_object(&mut self, key: Option<&str>) -> &mut Self {
        self.comma();
        if let Some(k) = key {
            let _ = write!(self.out, "\"{}\": ", escape(k));
        }
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn close_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Opens an array as the value of `key`.
    pub fn open_array(&mut self, key: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": [", escape(key));
        self.stack.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn close_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Writes a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": \"{}\"", escape(key), escape(value));
        self
    }

    /// Writes an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": {value}", escape(key));
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": {value}", escape(key));
        self
    }

    /// Writes a bare string element into the open array.
    pub fn string_item(&mut self, value: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\"", escape(value));
        self
    }

    /// Writes a float field (NaN/inf become null).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.comma();
        if value.is_finite() {
            let _ = write!(self.out, "\"{}\": {value:.6}", escape(key));
        } else {
            let _ = write!(self.out, "\"{}\": null", escape(key));
        }
        self
    }

    /// Finishes and returns the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced open/close");
        self.out
    }
}

fn escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o
}

/// Serializes one event (with its cycle stamp) as a single-line JSON
/// object: `{"cycle": N, "layer": "...", "kind": "...", ...fields}`.
pub fn event_to_json(cycle: u64, event: &crate::event::SimEvent) -> String {
    use crate::event::FieldValue;
    let mut w = JsonWriter::new();
    w.open_object(None)
        .int("cycle", cycle)
        .string("layer", event.layer().as_str())
        .string("kind", event.kind());
    for (name, value) in event.fields() {
        match value {
            FieldValue::U64(v) => w.int(name, v),
            FieldValue::Bool(v) => w.bool(name, v),
            FieldValue::Str(v) => w.string(name, v),
        };
    }
    w.close_object();
    w.finish()
}

/// Deserializes one JSONL trace line back into `(cycle, event)` — the
/// exact inverse of [`event_to_json`], used by `cs-report` to replay
/// traces. Returns a descriptive error for unknown kinds or missing
/// fields (a symptom of reading a trace from a different schema version).
pub fn event_from_json(value: &crate::jsonparse::JsonValue) -> Result<(u64, SimEvent), String> {
    use crate::event::{CacheLevel, PathKind};
    use crate::jsonparse::JsonValue;
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"kind\"")?;
    let u = |field: &str| -> Result<u64, String> {
        value
            .get(field)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("{kind}: missing or non-integer \"{field}\""))
    };
    let us = |field: &str| -> Result<usize, String> { u(field).map(|v| v as usize) };
    let b = |field: &str| -> Result<bool, String> {
        match value.get(field) {
            Some(JsonValue::Bool(v)) => Ok(*v),
            _ => Err(format!("{kind}: missing or non-bool \"{field}\"")),
        }
    };
    let s = |field: &str| -> Result<&str, String> {
        value
            .get(field)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{kind}: missing or non-string \"{field}\""))
    };
    let level = |field: &str| -> Result<CacheLevel, String> {
        match s(field)? {
            "l1" => Ok(CacheLevel::L1),
            "l2" => Ok(CacheLevel::L2),
            other => Err(format!("{kind}: unknown cache level {other:?}")),
        }
    };
    let path = |field: &str| -> Result<PathKind, String> {
        let name = s(field)?;
        PathKind::ALL
            .into_iter()
            .find(|p| p.as_str() == name)
            .ok_or_else(|| format!("{kind}: unknown path {name:?}"))
    };
    let cycle = u("cycle")?;
    let event = match kind {
        "dispatch" => SimEvent::Dispatch {
            core: us("core")?,
            seq: u("seq")?,
            pc: u("pc")?,
        },
        "load-issue" => SimEvent::LoadIssue {
            core: us("core")?,
            seq: u("seq")?,
            line: u("line")?,
            path: path("path")?,
            spec: b("spec")?,
            latency: u("latency")?,
        },
        "commit" => SimEvent::Commit {
            core: us("core")?,
            seq: u("seq")?,
            pc: u("pc")?,
            line: value.get("line").and_then(JsonValue::as_u64),
        },
        "squash" => SimEvent::Squash {
            core: us("core")?,
            seq: u("seq")?,
            squashed: u("squashed")?,
            episode: u("episode")?,
        },
        "squashed-load" => SimEvent::SquashedLoad {
            core: us("core")?,
            line: u("line")?,
            issued: b("issued")?,
            episode: u("episode")?,
        },
        "fault" => SimEvent::Fault {
            core: us("core")?,
            seq: u("seq")?,
            pc: u("pc")?,
        },
        "cleanup-start" => SimEvent::CleanupStart {
            core: us("core")?,
            loads: u("loads")?,
            stall: u("stall")?,
            episode: u("episode")?,
        },
        "cleanup-end" => SimEvent::CleanupEnd {
            core: us("core")?,
            stall: u("stall")?,
            episode: u("episode")?,
        },
        "fill" => SimEvent::Fill {
            core: us("core")?,
            line: u("line")?,
            level: level("level")?,
            spec: b("spec")?,
        },
        "evict" => SimEvent::Evict {
            core: us("core")?,
            line: u("line")?,
            level: level("level")?,
            dirty: b("dirty")?,
            evictor: if b("by_spec")? {
                Some(u("evictor")?)
            } else {
                None
            },
        },
        "back-inval" => SimEvent::BackInval {
            core: us("core")?,
            line: u("line")?,
        },
        "clflush" => SimEvent::Clflush {
            core: us("core")?,
            line: u("line")?,
        },
        "dummy-miss" => SimEvent::DummyMiss {
            core: us("core")?,
            line: u("line")?,
            owner: us("owner")?,
            episode: u("episode")?,
        },
        "gets-safe-defer" => SimEvent::GetsSafeDefer {
            core: us("core")?,
            line: u("line")?,
            owner: us("owner")?,
        },
        "downgrade" => SimEvent::Downgrade {
            owner: us("owner")?,
            line: u("line")?,
            spec: b("spec")?,
        },
        "livelock" => SimEvent::Livelock {
            core: us("core")?,
            stalled_for: u("stalled_for")?,
            rob: u("rob")?,
            head_pc: u("head_pc")?,
            mshr: u("mshr")?,
            sefes: u("sefes")?,
        },
        "snapshot-taken" => SimEvent::SnapshotTaken { at: u("at")? },
        "snapshot-restored" => SimEvent::SnapshotRestored { at: u("at")? },
        "mshr-alloc" => SimEvent::MshrAlloc {
            core: us("core")?,
            line: u("line")?,
            spec: b("spec")?,
            occupancy: u("occupancy")?,
        },
        "mshr-retire" => SimEvent::MshrRetire {
            core: us("core")?,
            line: u("line")?,
            spec: b("spec")?,
            occupancy: u("occupancy")?,
        },
        "mshr-drop" => SimEvent::MshrDrop {
            core: us("core")?,
            dropped: u("dropped")?,
        },
        "sefe-overflow" => SimEvent::SefeOverflow {
            core: us("core")?,
            line: u("line")?,
        },
        "dropped-fill" => SimEvent::DroppedFill {
            core: us("core")?,
            line: u("line")?,
            episode: u("episode")?,
        },
        "orphan-fill" => SimEvent::OrphanFill {
            core: us("core")?,
            line: u("line")?,
        },
        "cleanup-inval" => SimEvent::CleanupInval {
            core: us("core")?,
            line: u("line")?,
            l1: b("l1")?,
            l2: b("l2")?,
            seq: u("seq")?,
            episode: u("episode")?,
        },
        "cleanup-restore" => SimEvent::CleanupRestore {
            core: us("core")?,
            line: u("line")?,
            evictor: u("evictor")?,
            seq: u("seq")?,
            episode: u("episode")?,
        },
        "epoch-bump" => SimEvent::EpochBump {
            core: us("core")?,
            epoch: u("epoch")?,
            dropped: u("dropped")?,
            episode: u("episode")?,
        },
        "spec-retire" => SimEvent::SpecRetire {
            core: us("core")?,
            line: u("line")?,
        },
        "ceaser-remap" => SimEvent::CeaserRemap {
            level: level("level")?,
            epoch: u("epoch")?,
        },
        "dram-read" => SimEvent::DramRead {
            core: us("core")?,
            line: u("line")?,
        },
        "dram-writeback" => SimEvent::DramWriteback { line: u("line")? },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok((cycle, event))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::event::{CacheLevel, SimEvent};

    pub(crate) fn balanced(s: &str) -> bool {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.open_object(None)
            .string("k\"ey", "va\\lue\nnewline")
            .close_object();
        let j = w.finish();
        assert!(j.contains("k\\\"ey"));
        assert!(j.contains("va\\\\lue\\nnewline"));
        assert!(balanced(&j));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.open_object(None).float("x", f64::NAN).close_object();
        assert!(w.finish().contains("\"x\": null"));
    }

    #[test]
    fn bools_are_bare() {
        let mut w = JsonWriter::new();
        w.open_object(None).bool("b", true).close_object();
        assert!(w.finish().contains("\"b\": true"));
    }

    #[test]
    fn arrays_separate_elements() {
        let mut w = JsonWriter::new();
        w.open_object(None).open_array("a");
        for i in 0..3 {
            w.open_object(None).int("i", i).close_object();
        }
        w.close_array().close_object();
        let j = w.finish();
        assert_eq!(j.matches("{\"i\"").count(), 3);
        assert_eq!(j.matches("}, {").count(), 2);
        assert!(balanced(&j));
    }

    /// Every event variant survives a JSONL round trip bit-exactly —
    /// the property `cs-report` trace replay depends on.
    #[test]
    fn every_event_round_trips_through_json() {
        for (i, event) in crate::event::sample_events().iter().enumerate() {
            let cycle = 10 + i as u64;
            let line = event_to_json(cycle, event);
            let parsed = crate::jsonparse::JsonValue::parse(&line).unwrap();
            let (c, e) = event_from_json(&parsed).unwrap_or_else(|err| {
                panic!("{}: {err}", event.kind());
            });
            assert_eq!(c, cycle, "{}", event.kind());
            assert_eq!(&e, event, "{}", event.kind());
        }
    }

    /// A `commit` without a line field (non-load) round trips too —
    /// the one variant whose field list is dynamic.
    #[test]
    fn commit_without_line_round_trips() {
        let e = SimEvent::Commit {
            core: 1,
            seq: 9,
            pc: 0x40,
            line: None,
        };
        let parsed = crate::jsonparse::JsonValue::parse(&event_to_json(3, &e)).unwrap();
        assert_eq!(event_from_json(&parsed).unwrap(), (3, e));
    }

    #[test]
    fn event_from_json_rejects_unknown_kind_and_missing_fields() {
        let bad =
            crate::jsonparse::JsonValue::parse(r#"{"cycle": 1, "kind": "warp-drive", "core": 0}"#)
                .unwrap();
        assert!(event_from_json(&bad).unwrap_err().contains("warp-drive"));
        let missing =
            crate::jsonparse::JsonValue::parse(r#"{"cycle": 1, "kind": "squash", "core": 0}"#)
                .unwrap();
        assert!(event_from_json(&missing).unwrap_err().contains("seq"));
    }

    #[test]
    fn event_json_has_cycle_kind_and_fields() {
        let j = event_to_json(
            7,
            &SimEvent::Fill {
                core: 0,
                line: 0x40,
                level: CacheLevel::L1,
                spec: true,
            },
        );
        assert!(balanced(&j), "{j}");
        assert!(j.contains("\"cycle\": 7"), "{j}");
        assert!(j.contains("\"kind\": \"fill\""), "{j}");
        assert!(j.contains("\"line\": 64"), "{j}");
        assert!(j.contains("\"spec\": true"), "{j}");
    }
}
