//! The shared [`Observer`] handle instrumented code emits through, and the
//! [`EventSink`] trait sinks implement.

use crate::event::SimEvent;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A consumer of simulation events.
///
/// Sinks are driven strictly in emission order from the simulation thread
/// (the `Mutex` in [`Observer`] exists only to make the handle `Send` for
/// the parallel bench runner; there is no concurrent emission per run).
pub trait EventSink: Send {
    /// Consumes one event. `cycle` is the simulation cycle it occurred at.
    fn record(&mut self, cycle: u64, event: &SimEvent);

    /// Flushes buffered output. Called once when the run finishes.
    fn finish(&mut self) {}
}

/// The shared fan-out list behind an enabled [`Observer`].
type SinkList = Arc<Mutex<Vec<Box<dyn EventSink>>>>;

/// A cloneable handle that fans events out to attached sinks.
///
/// The disabled handle (no sinks, the default) costs one branch per
/// emission site — the same contract as the pipeline's legacy
/// `Option<TraceBuffer>` tracing.
#[derive(Clone, Default)]
pub struct Observer {
    sinks: Option<SinkList>,
}

impl Observer {
    /// A handle with no sinks; every `emit` is a no-op.
    pub fn disabled() -> Self {
        Observer::default()
    }

    /// A handle fanning out to `sinks` (disabled if the list is empty).
    pub fn new(sinks: Vec<Box<dyn EventSink>>) -> Self {
        if sinks.is_empty() {
            Observer::disabled()
        } else {
            Observer {
                sinks: Some(Arc::new(Mutex::new(sinks))),
            }
        }
    }

    /// A handle with a single sink.
    pub fn single(sink: Box<dyn EventSink>) -> Self {
        Observer::new(vec![sink])
    }

    /// Whether any sink is attached. Use to guard emission sites whose
    /// event *construction* is itself costly.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sinks.is_some()
    }

    /// Records `event` at `cycle` in every sink. No-op when disabled.
    #[inline]
    pub fn emit(&self, cycle: u64, event: SimEvent) {
        if let Some(sinks) = &self.sinks {
            let mut sinks = sinks.lock().expect("observer sink poisoned");
            for s in sinks.iter_mut() {
                s.record(cycle, &event);
            }
        }
    }

    /// Records the event produced by `make` — which runs only when a sink
    /// is attached, keeping argument computation off the disabled path.
    #[inline]
    pub fn emit_with(&self, cycle: u64, make: impl FnOnce() -> SimEvent) {
        if self.is_enabled() {
            self.emit(cycle, make());
        }
    }

    /// Calls [`EventSink::finish`] on every sink.
    pub fn finish(&self) {
        if let Some(sinks) = &self.sinks {
            let mut sinks = sinks.lock().expect("observer sink poisoned");
            for s in sinks.iter_mut() {
                s.finish();
            }
        }
    }
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.sinks {
            Some(s) => {
                let n = s.lock().map(|v| v.len()).unwrap_or(0);
                write!(f, "Observer({n} sinks)")
            }
            None => write!(f, "Observer(disabled)"),
        }
    }
}

/// A sink wrapper that keeps an inspectable handle on the caller's side.
///
/// [`Observer::new`] takes ownership of its sinks, but tests and the
/// `cs-trace` CLI need to read a sink back after the run (dump the ring,
/// ask the audit for its verdict). `Shared` clones hand the same
/// underlying sink to both sides:
///
/// ```
/// use cleanupspec_obs::{Observer, RingSink, Shared, SimEvent};
/// let ring = Shared::new(RingSink::new(16));
/// let obs = Observer::single(Box::new(ring.clone()));
/// obs.emit(3, SimEvent::DramWriteback { line: 0x40 });
/// assert_eq!(ring.with(|r| r.total_recorded()), 1);
/// ```
pub struct Shared<S>(Arc<Mutex<S>>);

impl<S> Clone for Shared<S> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<S: EventSink> Shared<S> {
    /// Wraps a sink for shared access.
    pub fn new(sink: S) -> Self {
        Shared(Arc::new(Mutex::new(sink)))
    }

    /// Runs `f` with exclusive access to the wrapped sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.lock().expect("shared sink poisoned"))
    }
}

impl<S: EventSink> EventSink for Shared<S> {
    fn record(&mut self, cycle: u64, event: &SimEvent) {
        self.0
            .lock()
            .expect("shared sink poisoned")
            .record(cycle, event);
    }

    fn finish(&mut self) {
        self.0.lock().expect("shared sink poisoned").finish();
    }
}

impl<S: fmt::Debug> fmt::Debug for Shared<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        seen: u64,
        finished: bool,
    }
    impl EventSink for Counting {
        fn record(&mut self, _cycle: u64, _event: &SimEvent) {
            self.seen += 1;
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        obs.emit(1, SimEvent::DramWriteback { line: 1 });
        obs.finish(); // must not panic
    }

    #[test]
    fn emit_fans_out_to_all_sinks() {
        let a = Shared::new(Counting::default());
        let b = Shared::new(Counting::default());
        let obs = Observer::new(vec![Box::new(a.clone()), Box::new(b.clone())]);
        assert!(obs.is_enabled());
        for c in 0..5 {
            obs.emit(c, SimEvent::DramWriteback { line: c });
        }
        obs.finish();
        assert_eq!(a.with(|s| s.seen), 5);
        assert_eq!(b.with(|s| s.seen), 5);
        assert!(a.with(|s| s.finished));
    }

    #[test]
    fn emit_with_skips_construction_when_disabled() {
        let obs = Observer::disabled();
        let mut called = false;
        obs.emit_with(0, || {
            called = true;
            SimEvent::DramWriteback { line: 0 }
        });
        assert!(!called);
    }

    #[test]
    fn empty_sink_list_is_disabled() {
        assert!(!Observer::new(Vec::new()).is_enabled());
    }

    #[test]
    fn clones_share_sinks() {
        let a = Shared::new(Counting::default());
        let obs = Observer::single(Box::new(a.clone()));
        let obs2 = obs.clone();
        obs.emit(0, SimEvent::DramWriteback { line: 0 });
        obs2.emit(1, SimEvent::DramWriteback { line: 1 });
        assert_eq!(a.with(|s| s.seen), 2);
    }
}
