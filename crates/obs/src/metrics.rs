//! Host-side self-profiling: a registry of wall-clock timers, counters,
//! and gauges describing the *simulator's* performance (sim KIPS,
//! events/sec, sink backpressure, wall-clock per subsystem) — as opposed
//! to the simulated machine's performance, which [`crate::event::SimEvent`]
//! streams cover.
//!
//! The registry renders to JSON (for `BENCH_*.json` host sections) and can
//! hand timestamped [`CounterSample`]s to [`crate::PerfettoSink`] so host
//! metrics appear as counter tracks alongside the simulation's event
//! tracks. Like the Jsonl and Perfetto sinks, a registry configured with an
//! output path flushes on [`MetricsRegistry::finish`] and — if that never
//! ran — on `Drop`, so a crashing run still leaves its metrics behind.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::time::Instant;

/// One timestamped host-counter sample, attachable to a Perfetto counter
/// track (`ts` is the simulated cycle the sample describes).
#[derive(Clone, Debug, PartialEq)]
pub struct CounterSample {
    /// Counter-track name (e.g. `"sim_kips"`).
    pub name: String,
    /// Trace timestamp: the simulated cycle this sample is attached to.
    pub ts: u64,
    /// Sampled value.
    pub value: f64,
}

/// Registry of host-side metrics. All maps are ordered so rendered JSON is
/// deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    /// Accumulated wall-clock seconds per named subsystem.
    timers: BTreeMap<String, f64>,
    samples: Vec<CounterSample>,
    output: Option<std::path::PathBuf>,
    flushed: bool,
}

impl MetricsRegistry {
    /// An empty registry; the caller reads values back itself.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// An empty registry that writes its JSON to `path` on finish/drop.
    pub fn with_output(path: impl Into<std::path::PathBuf>) -> Self {
        MetricsRegistry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            timers: BTreeMap::new(),
            samples: Vec::new(),
            output: Some(path.into()),
            flushed: false,
        }
    }

    /// Adds `n` to a monotonically increasing counter.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an instantaneous value.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of a gauge (0.0 if never set).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Runs `f`, adding its wall-clock duration to the `name` timer.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_timing(name, start.elapsed().as_secs_f64());
        out
    }

    /// Adds pre-measured wall-clock seconds to the `name` timer.
    pub fn add_timing(&mut self, name: &str, secs: f64) {
        *self.timers.entry(name.to_string()).or_insert(0.0) += secs;
    }

    /// Accumulated wall-clock seconds of a timer (0.0 if never used).
    pub fn timer_secs(&self, name: &str) -> f64 {
        self.timers.get(name).copied().unwrap_or(0.0)
    }

    /// Records a timestamped counter sample for Perfetto export.
    pub fn sample(&mut self, name: &str, ts: u64, value: f64) {
        self.samples.push(CounterSample {
            name: name.to_string(),
            ts,
            value,
        });
    }

    /// All recorded counter samples, in insertion order.
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Writes the registry into an open JSON object as three sub-objects:
    /// `"counters"`, `"gauges"`, `"timers_secs"`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.open_object(Some("counters"));
        for (k, v) in &self.counters {
            w.int(k, *v);
        }
        w.close_object();
        w.open_object(Some("gauges"));
        for (k, v) in &self.gauges {
            w.float(k, *v);
        }
        w.close_object();
        w.open_object(Some("timers_secs"));
        for (k, v) in &self.timers {
            w.float(k, *v);
        }
        w.close_object();
    }

    /// Renders the registry as a standalone JSON object string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object(None);
        self.write_json(&mut w);
        w.close_object();
        w.finish()
    }

    /// Writes the JSON rendering to the configured output path (no-op
    /// without one), atomically — a crash mid-write can never leave a
    /// torn metrics file where a previous complete one stood. Returns
    /// the number of bytes written.
    pub fn write_output(&mut self) -> std::io::Result<usize> {
        let Some(path) = self.output.clone() else {
            return Ok(0);
        };
        let json = self.to_json();
        crate::atomicio::atomic_write(&path, json.as_bytes())?;
        self.flushed = true;
        Ok(json.len())
    }

    /// Flushes to the configured output, mirroring [`crate::EventSink::finish`].
    pub fn finish(&mut self) {
        if let Err(e) = self.write_output() {
            eprintln!("warning: cannot write metrics output: {e}");
        }
    }
}

impl Drop for MetricsRegistry {
    fn drop(&mut self) {
        if !self.flushed {
            if let Err(e) = self.write_output() {
                eprintln!("warning: cannot write metrics output: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_timers_accumulate() {
        let mut m = MetricsRegistry::new();
        m.add("events", 10);
        m.add("events", 5);
        m.set_gauge("kips", 1234.5);
        m.add_timing("sim", 0.25);
        m.add_timing("sim", 0.25);
        assert_eq!(m.counter("events"), 15);
        assert_eq!(m.counter("untouched"), 0);
        assert!((m.gauge("kips") - 1234.5).abs() < 1e-9);
        assert!((m.timer_secs("sim") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scoped_timer_returns_value_and_records_time() {
        let mut m = MetricsRegistry::new();
        let v = m.time("work", || 42);
        assert_eq!(v, 42);
        assert!(m.timer_secs("work") >= 0.0);
    }

    #[test]
    fn json_rendering_is_deterministic_and_balanced() {
        let mut m = MetricsRegistry::new();
        m.add("b_counter", 2);
        m.add("a_counter", 1);
        m.set_gauge("g", 0.5);
        m.add_timing("t", 1.0);
        let j = m.to_json();
        assert!(crate::json::tests::balanced(&j), "{j}");
        assert!(j.contains("\"counters\""), "{j}");
        assert!(j.contains("\"gauges\""), "{j}");
        assert!(j.contains("\"timers_secs\""), "{j}");
        // BTreeMap ordering: a_counter before b_counter.
        assert!(j.find("a_counter").unwrap() < j.find("b_counter").unwrap());
    }

    #[test]
    fn samples_are_kept_in_order() {
        let mut m = MetricsRegistry::new();
        m.sample("sim_kips", 100, 50.0);
        m.sample("sim_kips", 200, 75.0);
        assert_eq!(m.samples().len(), 2);
        assert_eq!(m.samples()[0].ts, 100);
        assert_eq!(m.samples()[1].value, 75.0);
    }

    #[test]
    fn drop_writes_configured_output() {
        let path =
            std::env::temp_dir().join(format!("cs-metrics-drop-{}.json", std::process::id()));
        {
            let mut m = MetricsRegistry::with_output(&path);
            m.add("events", 3);
            // No finish(): the Drop impl must write the file.
        }
        let j = std::fs::read_to_string(&path).unwrap();
        assert!(j.contains("\"events\": 3"), "{j}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finish_writes_once_and_drop_does_not_rewrite() {
        let path = std::env::temp_dir().join(format!("cs-metrics-fin-{}.json", std::process::id()));
        {
            let mut m = MetricsRegistry::with_output(&path);
            m.add("events", 1);
            m.finish();
            std::fs::remove_file(&path).unwrap();
        }
        assert!(!path.exists());
    }
}
