//! Speculation-episode forensics: online reconstruction of cleanup
//! *episodes* from the event stream, plus an undo-coverage ledger.
//!
//! An **episode** is one invocation of a scheme's cleanup: it opens with
//! the first [`SimEvent::Squash`] that finds no cleanup already pending
//! (squashes that merge into a wait-for-inflight phase share the episode
//! of the cleanup they widen), and closes with the matching
//! [`SimEvent::CleanupEnd`]. Every cleanup-related event carries the
//! episode id (see [`SimEvent::episode`]), so the builder can run either
//! live (attached as a sink) or offline over a replayed JSONL trace and
//! produce identical records.
//!
//! The **undo-coverage ledger** extends the leakage audit's invariant to
//! episode granularity: every speculative fill belonging to a squashed
//! load must be accounted for as *invalidated* (possibly raced — the fill
//! landed after the squash and was still unwound), *never installed*
//! (epoch-dropped in flight), or legitimized by the correct path. Every
//! victim displaced by a squashed install must be restored. Anything left
//! over becomes an [`EpisodeLeak`] finding, attributed to the episode
//! whose cleanup should have covered it — the same residue classes the
//! [`crate::audit::LeakageAuditSink`] reports globally, but pinned to the
//! squash that leaked them.

use crate::event::{CacheLevel, SimEvent};
use crate::observer::EventSink;
use std::collections::HashMap;

/// What a cleanup episode failed to undo.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LeakKind {
    /// A transiently filled line survived in L1 past its episode.
    TransientInstallL1,
    /// A transiently filled line survived in L2 past its episode.
    TransientInstallL2,
    /// A victim of a speculative eviction was never restored.
    MissingRestore,
    /// A line was cleanup-invalidated twice with no fill in between.
    DoubleUndo,
    /// A speculative request downgraded a remote modified copy.
    SpeculativeDowngrade,
    /// A squashed load's fill installed anyway (orphan fill).
    OrphanInstall,
}

impl LeakKind {
    /// Stable kebab-case name (used by cs-report output).
    pub fn as_str(self) -> &'static str {
        match self {
            LeakKind::TransientInstallL1 => "transient-install-l1",
            LeakKind::TransientInstallL2 => "transient-install-l2",
            LeakKind::MissingRestore => "missing-restore",
            LeakKind::DoubleUndo => "double-undo",
            LeakKind::SpeculativeDowngrade => "speculative-downgrade",
            LeakKind::OrphanInstall => "orphan-install",
        }
    }
}

impl std::fmt::Display for LeakKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One ledger imbalance: undo state that outlived (or violated) its
/// episode.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct EpisodeLeak {
    /// The core whose speculation leaked.
    pub core: usize,
    /// The episode whose cleanup should have covered it (0 = the leak
    /// could not be attributed to any episode, e.g. a speculative
    /// downgrade whose requester never squashed).
    pub episode: u64,
    /// The affected cache line.
    pub line: u64,
    /// What leaked.
    pub kind: LeakKind,
}

impl std::fmt::Display for EpisodeLeak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "core{} episode{} line=0x{:x}: {}",
            self.core, self.episode, self.line, self.kind
        )
    }
}

/// The reconstructed shape of one cleanup episode.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpisodeRecord {
    /// Squashing core.
    pub core: usize,
    /// Episode id (1-based, per-core monotonic).
    pub id: u64,
    /// Sequence number of the first squash that opened the episode.
    pub seq: u64,
    /// Cycle of the opening squash.
    pub start: u64,
    /// Cycle cleanup was handed to the scheme (0 until seen).
    pub cleanup_start: u64,
    /// Cycle issue resumed (0 while the episode is still open).
    pub end: u64,
    /// Squash events merged into the episode (>= 1).
    pub squashes: u64,
    /// Instructions squashed, summed over merged squashes.
    pub squashed_insns: u64,
    /// Squashed loads with a known line.
    pub loads: u64,
    /// Of those, loads that had issued to the hierarchy.
    pub loads_issued: u64,
    /// CleanupSpec invalidations performed.
    pub invals: u64,
    /// CleanupSpec victim restores performed.
    pub restores: u64,
    /// Fills epoch-dropped in flight (never installed).
    pub dropped_fills: u64,
    /// Invalidated fills that had landed *after* the squash — the race
    /// CleanupSpec's wait-for-inflight phase exists to unwind.
    pub raced_fills: u64,
    /// Window-protection dummy misses other cores took against this
    /// episode's transient lines (claimed from the prospective buffer
    /// when the episode opens).
    pub dummy_misses: u64,
    /// Epoch bumps (in-flight drop points) in the episode.
    pub epoch_bumps: u64,
    /// Issue-stall cycles the cleanup charged.
    pub stall: u64,
    /// High-water mark of live SEFE (speculative MSHR) entries while the
    /// episode was open.
    pub sefe_high: u64,
    /// Cycles the *next* squash on this core arrived before this
    /// episode's resume (0 = no overlap).
    pub overlap_next: u64,
    /// Whether the episode's CleanupEnd was seen.
    pub closed: bool,
}

impl EpisodeRecord {
    /// Full duration: opening squash to issue resume. 0 while open.
    pub fn duration(&self) -> u64 {
        if self.closed {
            self.end.saturating_sub(self.start)
        } else {
            0
        }
    }
}

/// The builder's verdict over a run (or a replayed trace).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpisodeReport {
    /// All reconstructed episodes, sorted by (core, id).
    pub episodes: Vec<EpisodeRecord>,
    /// All ledger imbalances, sorted.
    pub leaks: Vec<EpisodeLeak>,
}

impl EpisodeReport {
    /// Whether every episode closed with a balanced ledger.
    pub fn clean(&self) -> bool {
        self.leaks.is_empty()
    }

    /// Episodes still open when the run ended (truncation, livelock).
    pub fn open_episodes(&self) -> usize {
        self.episodes.iter().filter(|e| !e.closed).count()
    }
}

impl std::fmt::Display for EpisodeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "episodes: {} reconstructed ({} open at end of run)",
            self.episodes.len(),
            self.open_episodes()
        )?;
        if self.clean() {
            write!(f, "episodes: BALANCED — every undo ledger closed clean")
        } else {
            writeln!(f, "episodes: LEAKY — {} finding(s):", self.leaks.len())?;
            for l in &self.leaks {
                writeln!(f, "  {l}")?;
            }
            Ok(())
        }
    }
}

/// Per-line speculative-fill watch (episode-attributed twin of the
/// audit's `WatchState`).
#[derive(Clone, Copy, Default, Debug)]
struct Watch {
    /// Episode the line's squash joined (0 = not squashed yet).
    episode: u64,
    squashed: bool,
    /// Cycle of the SquashedLoad event (valid when `squashed`).
    squashed_at: u64,
    present_l1: bool,
    present_l2: bool,
    /// Cycle of the most recent fill per level (valid when present).
    fill_l1_at: u64,
    fill_l2_at: u64,
    /// A cleanup-inval already ran with no fill since.
    cleaned: bool,
    /// Marked by OrphanFill: presence is a leak no matter what.
    orphan: bool,
}

/// A victim owed a restore if its evictor is squashed.
#[derive(Clone, Copy, Debug)]
struct Owed {
    evictor: u64,
    /// Episode of the evictor's squash (0 until due).
    episode: u64,
    due: bool,
    settled: bool,
}

#[derive(Default, Debug)]
struct CoreState {
    /// Episodes keyed by id, so re-emission after a snapshot restore
    /// overwrites instead of duplicating.
    episodes: HashMap<u64, EpisodeRecord>,
    /// Id of the currently open episode, if any.
    open: Option<u64>,
    watch: HashMap<u64, Watch>,
    owed: HashMap<u64, Owed>,
    /// Dummy misses carrying a *prospective* episode id (the protected
    /// window has not squashed yet): `(prospective_id, line)`. Claimed
    /// when the episode opens, discarded when the protected line retires.
    pending_dummy: Vec<(u64, u64)>,
    /// Live speculative MSHR entries (SEFEs), tracked from alloc/retire.
    sefe_live: u64,
}

impl CoreState {
    fn forgive_evictor(&mut self, evictor: u64) {
        self.owed.retain(|_, o| o.evictor != evictor);
    }

    fn rec(&mut self, id: u64, core: usize) -> &mut EpisodeRecord {
        self.episodes.entry(id).or_insert_with(|| EpisodeRecord {
            core,
            id,
            ..EpisodeRecord::default()
        })
    }
}

/// Internal leak entry: the emission cycle rides along so snapshot
/// restores can drop findings from the abandoned timeline.
#[derive(Clone, Copy, Debug)]
struct EagerLeak {
    at: u64,
    leak: EpisodeLeak,
}

/// Online reconstruction of cleanup episodes + undo-coverage ledger.
///
/// Attach as a sink ([`crate::observer::Shared`] makes it retrievable
/// afterwards), or feed it a replayed trace event by event; call
/// [`EpisodeBuilder::report`] once the run has drained.
#[derive(Default, Debug)]
pub struct EpisodeBuilder {
    cores: Vec<CoreState>,
    /// Speculative downgrades awaiting attribution: `(line, owner)`.
    /// Claimed by the requester's SquashedLoad of the same line;
    /// reported unattributed (episode 0) otherwise.
    pending_downgrades: Vec<(u64, usize)>,
    eager: Vec<EagerLeak>,
}

impl EpisodeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        EpisodeBuilder::default()
    }

    fn core(&mut self, i: usize) -> &mut CoreState {
        if self.cores.len() <= i {
            self.cores.resize_with(i + 1, CoreState::default);
        }
        &mut self.cores[i]
    }

    /// Computes the verdict from the events seen so far. Call after the
    /// simulation has drained: late orphan fills are leaks too.
    pub fn report(&self) -> EpisodeReport {
        let mut leaks: Vec<EpisodeLeak> = self.eager.iter().map(|e| e.leak).collect();
        for (ci, c) in self.cores.iter().enumerate() {
            for (&line, w) in &c.watch {
                if !w.squashed && !w.orphan {
                    continue; // in flight or committed — not undo residue
                }
                if w.present_l1 {
                    leaks.push(EpisodeLeak {
                        core: ci,
                        episode: w.episode,
                        line,
                        kind: if w.orphan {
                            LeakKind::OrphanInstall
                        } else {
                            LeakKind::TransientInstallL1
                        },
                    });
                }
                if w.present_l2 {
                    leaks.push(EpisodeLeak {
                        core: ci,
                        episode: w.episode,
                        line,
                        kind: LeakKind::TransientInstallL2,
                    });
                }
            }
            for (&line, o) in &c.owed {
                if o.due && !o.settled {
                    leaks.push(EpisodeLeak {
                        core: ci,
                        episode: o.episode,
                        line,
                        kind: LeakKind::MissingRestore,
                    });
                }
            }
        }
        for &(line, owner) in &self.pending_downgrades {
            leaks.push(EpisodeLeak {
                core: owner,
                episode: 0,
                line,
                kind: LeakKind::SpeculativeDowngrade,
            });
        }
        leaks.sort();
        leaks.dedup();
        let mut episodes: Vec<EpisodeRecord> = self
            .cores
            .iter()
            .flat_map(|c| c.episodes.values().cloned())
            .collect();
        episodes.sort_by_key(|e| (e.core, e.id));
        // Overlap: how far the next squash on the same core cut into this
        // episode's stall window.
        for i in 0..episodes.len().saturating_sub(1) {
            let (a, b) = (&episodes[i], &episodes[i + 1]);
            if a.core == b.core && a.closed && b.start < a.end {
                let overlap = a.end - b.start;
                episodes[i].overlap_next = overlap;
            }
        }
        EpisodeReport { episodes, leaks }
    }
}

impl EventSink for EpisodeBuilder {
    fn record(&mut self, cycle: u64, event: &SimEvent) {
        match *event {
            SimEvent::Squash {
                core,
                seq,
                squashed,
                episode,
            } if episode != 0 => {
                let c = self.core(core);
                let fresh = !c.episodes.contains_key(&episode);
                let r = c.rec(episode, core);
                if fresh {
                    r.seq = seq;
                    r.start = cycle;
                }
                r.squashes += 1;
                r.squashed_insns += squashed;
                c.open = Some(episode);
                // Claim window-protection dummies buffered under this
                // (previously prospective) episode id; ids that never
                // opened stay buffered until their line retires or the
                // run ends.
                let mut claimed = 0;
                c.pending_dummy.retain(|&(id, _)| {
                    if id == episode {
                        claimed += 1;
                        false
                    } else {
                        true
                    }
                });
                c.rec(episode, core).dummy_misses += claimed;
            }
            SimEvent::SquashedLoad {
                core,
                line,
                issued,
                episode,
            } => {
                let c = self.core(core);
                if episode != 0 {
                    let r = c.rec(episode, core);
                    r.loads += 1;
                    r.loads_issued += u64::from(issued);
                }
                let w = c.watch.entry(line).or_default();
                w.squashed = true;
                w.squashed_at = cycle;
                w.episode = episode;
                for o in c.owed.values_mut() {
                    if o.evictor == line {
                        o.due = true;
                        o.episode = episode;
                    }
                }
                // A speculative downgrade caused by this load's request
                // is now attributable: the requester squashed.
                let mut i = 0;
                while i < self.pending_downgrades.len() {
                    if self.pending_downgrades[i].0 == line {
                        self.pending_downgrades.swap_remove(i);
                        self.eager.push(EagerLeak {
                            at: cycle,
                            leak: EpisodeLeak {
                                core,
                                episode,
                                line,
                                kind: LeakKind::SpeculativeDowngrade,
                            },
                        });
                    } else {
                        i += 1;
                    }
                }
            }
            SimEvent::CleanupStart {
                core,
                stall,
                episode,
                ..
            } if episode != 0 => {
                let r = self.core(core).rec(episode, core);
                r.cleanup_start = cycle;
                r.stall = stall;
            }
            SimEvent::CleanupEnd {
                core,
                stall,
                episode,
            } if episode != 0 => {
                let c = self.core(core);
                let r = c.rec(episode, core);
                r.end = cycle;
                r.stall = stall;
                r.closed = true;
                if c.open == Some(episode) {
                    c.open = None;
                }
            }
            SimEvent::CleanupInval {
                core,
                line,
                l1,
                l2,
                episode,
                ..
            } => {
                let c = self.core(core);
                let mut raced = false;
                let mut double = false;
                if let Some(w) = c.watch.get_mut(&line) {
                    double = w.cleaned;
                    w.cleaned = true;
                    if w.squashed {
                        raced = (l1 && w.present_l1 && w.fill_l1_at > w.squashed_at)
                            || (l2 && w.present_l2 && w.fill_l2_at > w.squashed_at);
                    }
                    if l1 {
                        w.present_l1 = false;
                    }
                    if l2 {
                        w.present_l2 = false;
                    }
                }
                if episode != 0 {
                    let r = c.rec(episode, core);
                    r.invals += 1;
                    r.raced_fills += u64::from(raced);
                }
                if double {
                    self.eager.push(EagerLeak {
                        at: cycle,
                        leak: EpisodeLeak {
                            core,
                            episode,
                            line,
                            kind: LeakKind::DoubleUndo,
                        },
                    });
                }
            }
            SimEvent::CleanupRestore {
                core,
                line,
                episode,
                ..
            } => {
                let c = self.core(core);
                if episode != 0 {
                    c.rec(episode, core).restores += 1;
                }
                c.owed
                    .entry(line)
                    .or_insert(Owed {
                        evictor: line,
                        episode,
                        due: false,
                        settled: true,
                    })
                    .settled = true;
            }
            SimEvent::DroppedFill {
                core,
                line,
                episode,
            } => {
                let c = self.core(core);
                if episode != 0 {
                    c.rec(episode, core).dropped_fills += 1;
                }
                // The fill never installed: if nothing else is on the
                // books for the line, the watch is finished business.
                if let Some(w) = c.watch.get(&line) {
                    if w.squashed && !w.present_l1 && !w.present_l2 {
                        c.watch.remove(&line);
                    }
                }
            }
            SimEvent::EpochBump { core, episode, .. } if episode != 0 => {
                self.core(core).rec(episode, core).epoch_bumps += 1;
            }
            SimEvent::DummyMiss {
                line,
                owner,
                episode,
                ..
            } if episode != 0 => {
                // Prospective attribution: buffered under the episode id
                // the owner's squash *would* open.
                let c = self.core(owner);
                if c.episodes.contains_key(&episode) {
                    // The episode already opened (more squashes merged
                    // in while its cleanup waits): claim directly.
                    c.rec(episode, owner).dummy_misses += 1;
                } else {
                    c.pending_dummy.push((episode, line));
                }
            }
            SimEvent::LoadIssue {
                core, line, spec, ..
            } => {
                let c = self.core(core);
                if spec {
                    let w = c.watch.entry(line).or_default();
                    if w.squashed && !w.present_l1 && !w.present_l2 && !w.orphan {
                        *w = Watch::default();
                    }
                } else {
                    c.watch.remove(&line);
                    if let Some(o) = c.owed.get_mut(&line) {
                        o.settled = true;
                    }
                    c.forgive_evictor(line);
                }
            }
            SimEvent::Fill {
                core,
                line,
                level,
                spec,
            } => {
                let c = self.core(core);
                if let Some(w) = c.watch.get_mut(&line) {
                    if !w.squashed || spec {
                        w.cleaned = false;
                        match level {
                            CacheLevel::L1 => {
                                w.present_l1 = true;
                                w.fill_l1_at = cycle;
                            }
                            CacheLevel::L2 => {
                                w.present_l2 = true;
                                w.fill_l2_at = cycle;
                            }
                        }
                    } else {
                        // Untagged install after the squash was undone
                        // (restore, RFO, demand refill) — architectural.
                        c.watch.remove(&line);
                    }
                }
                if level == CacheLevel::L1 {
                    if let Some(o) = c.owed.get_mut(&line) {
                        o.settled = true;
                    }
                }
            }
            SimEvent::OrphanFill { core, line } => {
                let c = self.core(core);
                let last = c.open.or_else(|| c.episodes.keys().max().copied());
                let w = c.watch.entry(line).or_default();
                w.squashed = true;
                w.present_l1 = true;
                w.orphan = true;
                if w.episode == 0 {
                    w.episode = last.unwrap_or(0);
                }
            }
            SimEvent::Evict {
                core,
                line,
                level,
                evictor,
                ..
            } => {
                let c = self.core(core);
                if let Some(w) = c.watch.get_mut(&line) {
                    match level {
                        CacheLevel::L1 => w.present_l1 = false,
                        CacheLevel::L2 => w.present_l2 = false,
                    }
                }
                if let Some(evictor) = evictor {
                    if level == CacheLevel::L1 && !c.watch.contains_key(&line) {
                        c.owed.insert(
                            line,
                            Owed {
                                evictor,
                                episode: 0,
                                due: false,
                                settled: false,
                            },
                        );
                    }
                }
            }
            SimEvent::BackInval { core, line } => {
                if let Some(w) = self.core(core).watch.get_mut(&line) {
                    w.present_l1 = false;
                }
            }
            SimEvent::Clflush { line, .. } => {
                for c in &mut self.cores {
                    if let Some(w) = c.watch.get_mut(&line) {
                        w.present_l1 = false;
                        w.present_l2 = false;
                    }
                    c.owed.remove(&line);
                }
            }
            SimEvent::Commit {
                core,
                line: Some(line),
                ..
            } => {
                let c = self.core(core);
                c.watch.remove(&line);
                if let Some(o) = c.owed.get_mut(&line) {
                    o.settled = true;
                }
                c.forgive_evictor(line);
            }
            SimEvent::SpecRetire { core, line } => {
                let c = self.core(core);
                c.forgive_evictor(line);
                // The protected window retired without squashing: its
                // prospective dummy misses belong to no episode.
                c.pending_dummy.retain(|&(_, l)| l != line);
            }
            SimEvent::Downgrade { owner, line, spec } if spec => {
                self.pending_downgrades.push((line, owner));
            }
            SimEvent::MshrAlloc { core, spec, .. } => {
                let c = self.core(core);
                if spec {
                    c.sefe_live += 1;
                    if let Some(id) = c.open {
                        let live = c.sefe_live;
                        let r = c.rec(id, core);
                        r.sefe_high = r.sefe_high.max(live);
                    }
                }
            }
            SimEvent::MshrRetire { core, spec, .. } if spec => {
                let c = self.core(core);
                c.sefe_live = c.sefe_live.saturating_sub(1);
            }
            SimEvent::SnapshotRestored { at } => {
                // The timeline rewinds to `at`: episodes that closed
                // before it are final; everything else will be re-emitted
                // (possibly differently) on the resumed path, so drop the
                // volatile state rather than double-count it.
                for c in &mut self.cores {
                    c.episodes.retain(|_, r| r.closed && r.end <= at);
                    c.open = None;
                    c.watch.clear();
                    c.owed.clear();
                    c.pending_dummy.clear();
                    c.sefe_live = 0;
                }
                self.pending_downgrades.clear();
                self.eager.retain(|e| e.at <= at);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PathKind;

    fn issue(core: usize, line: u64, spec: bool) -> SimEvent {
        SimEvent::LoadIssue {
            core,
            seq: 0,
            line,
            path: PathKind::Mem,
            spec,
            latency: 100,
        }
    }

    fn fill(core: usize, line: u64, level: CacheLevel) -> SimEvent {
        SimEvent::Fill {
            core,
            line,
            level,
            spec: true,
        }
    }

    fn squash(core: usize, seq: u64, episode: u64) -> SimEvent {
        SimEvent::Squash {
            core,
            seq,
            squashed: 3,
            episode,
        }
    }

    fn squashed_load(core: usize, line: u64, episode: u64) -> SimEvent {
        SimEvent::SquashedLoad {
            core,
            line,
            issued: true,
            episode,
        }
    }

    fn inval(core: usize, line: u64, episode: u64) -> SimEvent {
        SimEvent::CleanupInval {
            core,
            line,
            l1: true,
            l2: true,
            seq: 1,
            episode,
        }
    }

    fn end(core: usize, episode: u64, stall: u64) -> SimEvent {
        SimEvent::CleanupEnd {
            core,
            stall,
            episode,
        }
    }

    /// Full clean episode: squash -> cleanup -> inval + restore -> end.
    #[test]
    fn clean_episode_reconstructs_and_balances() {
        let mut b = EpisodeBuilder::new();
        b.record(0, &issue(0, 7, true));
        b.record(5, &fill(0, 7, CacheLevel::L2));
        b.record(5, &fill(0, 7, CacheLevel::L1));
        b.record(
            6,
            &SimEvent::Evict {
                core: 0,
                line: 5,
                level: CacheLevel::L1,
                dirty: false,
                evictor: Some(7),
            },
        );
        b.record(10, &squash(0, 1, 1));
        b.record(10, &squashed_load(0, 7, 1));
        b.record(
            11,
            &SimEvent::CleanupStart {
                core: 0,
                loads: 1,
                stall: 20,
                episode: 1,
            },
        );
        b.record(11, &inval(0, 7, 1));
        b.record(
            12,
            &SimEvent::CleanupRestore {
                core: 0,
                line: 5,
                evictor: 7,
                seq: 1,
                episode: 1,
            },
        );
        b.record(31, &end(0, 1, 20));
        let r = b.report();
        assert!(r.clean(), "{r}");
        assert_eq!(r.episodes.len(), 1);
        let e = &r.episodes[0];
        assert_eq!((e.core, e.id, e.seq), (0, 1, 1));
        assert_eq!((e.start, e.cleanup_start, e.end), (10, 11, 31));
        assert_eq!(e.duration(), 21);
        assert_eq!((e.loads, e.invals, e.restores), (1, 1, 1));
        assert_eq!(e.stall, 20);
        assert!(e.closed);
    }

    #[test]
    fn missing_restore_is_attributed_to_its_episode() {
        let mut b = EpisodeBuilder::new();
        b.record(
            0,
            &SimEvent::Evict {
                core: 0,
                line: 5,
                level: CacheLevel::L1,
                dirty: false,
                evictor: Some(9),
            },
        );
        b.record(1, &squash(0, 1, 4));
        b.record(1, &squashed_load(0, 9, 4));
        b.record(2, &end(0, 4, 5));
        let r = b.report();
        assert_eq!(r.leaks.len(), 1);
        assert_eq!(r.leaks[0].kind, LeakKind::MissingRestore);
        assert_eq!(r.leaks[0].episode, 4);
        assert_eq!(r.leaks[0].line, 5);
    }

    #[test]
    fn skipped_inval_leaks_transient_install_with_episode() {
        let mut b = EpisodeBuilder::new();
        b.record(0, &issue(0, 7, true));
        b.record(1, &fill(0, 7, CacheLevel::L1));
        b.record(2, &squash(0, 1, 2));
        b.record(2, &squashed_load(0, 7, 2));
        b.record(3, &end(0, 2, 5));
        let r = b.report();
        assert_eq!(r.leaks.len(), 1);
        assert_eq!(r.leaks[0].kind, LeakKind::TransientInstallL1);
        assert_eq!(r.leaks[0].episode, 2);
    }

    #[test]
    fn double_undo_is_eager_and_episode_tagged() {
        let mut b = EpisodeBuilder::new();
        b.record(0, &issue(0, 7, true));
        b.record(1, &fill(0, 7, CacheLevel::L1));
        b.record(2, &squash(0, 1, 1));
        b.record(2, &squashed_load(0, 7, 1));
        b.record(3, &inval(0, 7, 1));
        b.record(4, &inval(0, 7, 1));
        let r = b.report();
        assert!(r.leaks.contains(&EpisodeLeak {
            core: 0,
            episode: 1,
            line: 7,
            kind: LeakKind::DoubleUndo,
        }));
    }

    /// A fill landing after the squash but unwound by the cleanup is a
    /// raced fill, not a leak.
    #[test]
    fn raced_fill_is_counted_and_clean() {
        let mut b = EpisodeBuilder::new();
        b.record(0, &issue(0, 7, true));
        b.record(5, &squash(0, 1, 1));
        b.record(5, &squashed_load(0, 7, 1));
        // Fill lands during the wait-for-inflight phase...
        b.record(8, &fill(0, 7, CacheLevel::L1));
        // ...and the cleanup still unwinds it.
        b.record(9, &inval(0, 7, 1));
        b.record(10, &end(0, 1, 5));
        let r = b.report();
        assert!(r.clean(), "{r}");
        assert_eq!(r.episodes[0].raced_fills, 1);
        assert_eq!(r.episodes[0].invals, 1);
    }

    #[test]
    fn dropped_fill_settles_the_ledger() {
        let mut b = EpisodeBuilder::new();
        b.record(0, &issue(0, 3, true));
        b.record(1, &squash(0, 1, 1));
        b.record(1, &squashed_load(0, 3, 1));
        b.record(
            2,
            &SimEvent::EpochBump {
                core: 0,
                epoch: 1,
                dropped: 1,
                episode: 1,
            },
        );
        b.record(3, &end(0, 1, 5));
        b.record(
            40,
            &SimEvent::DroppedFill {
                core: 0,
                line: 3,
                episode: 1,
            },
        );
        let r = b.report();
        assert!(r.clean(), "{r}");
        assert_eq!(r.episodes[0].dropped_fills, 1);
        assert_eq!(r.episodes[0].epoch_bumps, 1);
    }

    #[test]
    fn orphan_fill_is_a_leak() {
        let mut b = EpisodeBuilder::new();
        b.record(0, &issue(0, 9, true));
        b.record(1, &squash(0, 1, 1));
        b.record(1, &squashed_load(0, 9, 1));
        b.record(2, &end(0, 1, 0));
        b.record(50, &fill(0, 9, CacheLevel::L1));
        b.record(50, &SimEvent::OrphanFill { core: 0, line: 9 });
        let r = b.report();
        assert!(!r.clean());
        assert!(r
            .leaks
            .iter()
            .any(|l| l.kind == LeakKind::OrphanInstall && l.episode == 1));
    }

    /// Merged squashes (arriving while a cleanup waits on in-flight
    /// loads) widen the episode instead of opening a new one.
    #[test]
    fn merged_squashes_share_one_episode() {
        let mut b = EpisodeBuilder::new();
        b.record(10, &squash(0, 1, 1));
        b.record(10, &squashed_load(0, 7, 1));
        b.record(15, &squash(0, 2, 1));
        b.record(15, &squashed_load(0, 8, 1));
        b.record(30, &end(0, 1, 10));
        let r = b.report();
        assert_eq!(r.episodes.len(), 1);
        let e = &r.episodes[0];
        assert_eq!(e.squashes, 2);
        assert_eq!(e.loads, 2);
        assert_eq!(e.seq, 1, "episode keeps the opening squash's seq");
        assert_eq!(e.start, 10, "and its cycle");
    }

    /// Window-protection dummies carry a prospective episode id: claimed
    /// if that episode opens, dropped if the protected line retires.
    #[test]
    fn prospective_dummy_misses_claimed_on_open() {
        let mut b = EpisodeBuilder::new();
        let dummy = SimEvent::DummyMiss {
            core: 1,
            line: 7,
            owner: 0,
            episode: 1,
        };
        b.record(5, &dummy);
        b.record(6, &dummy);
        b.record(10, &squash(0, 1, 1));
        b.record(11, &end(0, 1, 0));
        let r = b.report();
        assert_eq!(r.episodes[0].dummy_misses, 2);
    }

    #[test]
    fn dummy_misses_for_retired_window_are_discarded() {
        let mut b = EpisodeBuilder::new();
        b.record(
            5,
            &SimEvent::DummyMiss {
                core: 1,
                line: 7,
                owner: 0,
                episode: 1,
            },
        );
        // The protected load retires: no episode 1 from this window.
        b.record(8, &SimEvent::SpecRetire { core: 0, line: 7 });
        // A later, unrelated squash opens episode 1.
        b.record(20, &squash(0, 9, 1));
        b.record(21, &end(0, 1, 0));
        let r = b.report();
        assert_eq!(r.episodes[0].dummy_misses, 0);
    }

    #[test]
    fn speculative_downgrade_attributed_via_squashed_load() {
        let mut b = EpisodeBuilder::new();
        b.record(
            0,
            &SimEvent::Downgrade {
                owner: 1,
                line: 3,
                spec: true,
            },
        );
        b.record(1, &squash(0, 1, 1));
        b.record(1, &squashed_load(0, 3, 1));
        b.record(2, &inval(0, 3, 1));
        b.record(3, &end(0, 1, 0));
        let r = b.report();
        assert_eq!(r.leaks.len(), 1);
        let l = r.leaks[0];
        assert_eq!(l.kind, LeakKind::SpeculativeDowngrade);
        assert_eq!((l.core, l.episode), (0, 1), "pinned to the requester");
    }

    #[test]
    fn unclaimed_downgrade_reports_unattributed() {
        let mut b = EpisodeBuilder::new();
        b.record(
            0,
            &SimEvent::Downgrade {
                owner: 1,
                line: 3,
                spec: true,
            },
        );
        let r = b.report();
        assert_eq!(r.leaks.len(), 1);
        assert_eq!(r.leaks[0].episode, 0);
        assert_eq!(r.leaks[0].core, 1, "falls back to the victim owner");
    }

    #[test]
    fn sefe_high_water_tracks_open_episode() {
        let mut b = EpisodeBuilder::new();
        let alloc = |occ| SimEvent::MshrAlloc {
            core: 0,
            line: occ,
            spec: true,
            occupancy: occ,
        };
        b.record(0, &alloc(1));
        b.record(1, &squash(0, 1, 1));
        b.record(2, &alloc(2));
        b.record(3, &alloc(3));
        b.record(
            4,
            &SimEvent::MshrRetire {
                core: 0,
                line: 1,
                spec: true,
                occupancy: 2,
            },
        );
        b.record(10, &end(0, 1, 0));
        let r = b.report();
        assert_eq!(r.episodes[0].sefe_high, 3);
    }

    #[test]
    fn overlap_with_next_squash_is_computed() {
        let mut b = EpisodeBuilder::new();
        b.record(10, &squash(0, 1, 1));
        b.record(30, &end(0, 1, 20));
        // Next squash lands 5 cycles before episode 1's resume would
        // have completed... (distinct episode: cleanup had finished its
        // wait phase, but the resume window still overlaps)
        b.record(25, &squash(0, 2, 2));
        b.record(40, &end(0, 2, 10));
        let r = b.report();
        assert_eq!(r.episodes[0].overlap_next, 5);
        assert_eq!(r.episodes[1].overlap_next, 0);
    }

    /// Snapshot restore: closed episodes are final; open/volatile state
    /// belongs to the abandoned timeline and is dropped, so re-emission
    /// neither double-counts nor orphans episodes.
    #[test]
    fn snapshot_restore_drops_abandoned_timeline() {
        let mut b = EpisodeBuilder::new();
        // Episode 1 closes before the snapshot point.
        b.record(10, &squash(0, 1, 1));
        b.record(10, &squashed_load(0, 7, 1));
        b.record(12, &end(0, 1, 2));
        // Episode 2 opens after it — then the run rewinds to cycle 20.
        b.record(30, &squash(0, 2, 2));
        b.record(30, &squashed_load(0, 8, 2));
        b.record(0, &SimEvent::SnapshotRestored { at: 20 });
        // The resumed timeline re-emits episode 2 (same id, forked path).
        b.record(35, &squash(0, 2, 2));
        b.record(35, &squashed_load(0, 8, 2));
        b.record(36, &inval(0, 8, 2));
        b.record(40, &end(0, 2, 5));
        let r = b.report();
        assert_eq!(r.episodes.len(), 2, "no duplicate episode 2");
        let e2 = &r.episodes[1];
        assert_eq!(e2.squashes, 1, "pre-restore squash not double-counted");
        assert_eq!(e2.loads, 1);
        assert_eq!(e2.start, 35, "record reflects the resumed timeline");
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn truncated_episode_stays_open_in_report() {
        let mut b = EpisodeBuilder::new();
        b.record(10, &squash(0, 1, 1));
        b.record(10, &squashed_load(0, 7, 1));
        // Run ends (max_cycles / livelock) before CleanupEnd.
        let r = b.report();
        assert_eq!(r.open_episodes(), 1);
        assert!(!r.episodes[0].closed);
        assert_eq!(r.episodes[0].duration(), 0);
    }

    #[test]
    fn report_display_mentions_verdict() {
        let b = EpisodeBuilder::new();
        assert!(b.report().to_string().contains("BALANCED"));
    }
}
