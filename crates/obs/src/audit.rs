//! The leakage-audit sink: checks the paper's "undo leaves no trace"
//! invariant by correlating the event stream.
//!
//! The audit watches every speculative load issue. Fills on a watched
//! line mark speculation-attributable *presence* per cache level; evicts,
//! back-invalidations, flushes, and CleanupSpec invalidations clear it.
//! When the load commits, its presence becomes architectural and the
//! watch is dropped. When it is squashed instead, the presence must be
//! gone by the end of the run — any remaining bit is exactly the
//! secret-dependent footprint a cache side channel reads out.
//!
//! Symmetrically, a speculative install that evicts a victim line puts
//! the victim on an *owed-restore* list, tagged with the evicting line.
//! The debt comes *due* only if the evicting load is squashed — a
//! speculative load that retires keeps its eviction, exactly as a
//! non-speculative one would. A `cleanup-restore`, an L1 refill, or an
//! architectural re-access settles the debt; a retire of the evictor
//! forgives it.
//!
//! The verdict is computed lazily by [`LeakageAuditSink::report`] so that
//! orphan fills landing cycles after the squash (the classic insecure-
//! mode leak — drain the simulation before asking!) are still caught.

use crate::event::{CacheLevel, SimEvent};
use crate::observer::EventSink;
use std::collections::HashMap;

#[derive(Clone, Copy, Default, Debug)]
struct WatchState {
    squashed: bool,
    present_l1: bool,
    present_l2: bool,
    /// A `cleanup-inval` already targeted this line and no fill has landed
    /// since: a second inval is a double undo, which on real hardware would
    /// invalidate state the cleanup walk no longer owns.
    cleaned: bool,
}

#[derive(Clone, Copy, Debug)]
struct OwedRestore {
    /// The line whose speculative install displaced the victim.
    evictor: u64,
    /// The evictor was squashed, so the restore is actually owed.
    due: bool,
    /// The victim came back (cleanup-restore, refill, re-access).
    settled: bool,
}

#[derive(Default, Debug)]
struct CoreAudit {
    /// Speculatively accessed lines -> speculation-attributable presence.
    watch: HashMap<u64, WatchState>,
    /// Victims of speculative evictions -> the restore they may be owed.
    owed: HashMap<u64, OwedRestore>,
}

impl CoreAudit {
    /// Forgives restores owed to `evictor`'s install: the line retired
    /// (or was re-accessed architecturally), so the install that did the
    /// evicting is architectural and the eviction stands. This also
    /// covers debts marked due by a squashed *younger duplicate* load of
    /// the same line — under MSHR merging, several in-flight instances
    /// share one install, and only the install's own fate (retire vs.
    /// squash-and-cleanup) decides whether the victim is owed a restore.
    fn forgive_evictor(&mut self, evictor: u64) {
        self.owed.retain(|_, o| o.evictor != evictor);
    }
}

/// What kind of residue a squash left behind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResidueKind {
    /// A transiently filled line survived in L1.
    InstallL1,
    /// A transiently filled line survived in L2.
    InstallL2,
    /// A victim of a speculative eviction was never restored.
    MissingRestore,
    /// A speculative request downgraded a remote modified copy — forbidden
    /// under GetS-Safe (the downgrade itself is a cross-core channel).
    SpeculativeDowngrade,
    /// A line was cleanup-invalidated twice with no fill in between: the
    /// undo walk ran over state it no longer owned.
    DoubleCleanup,
}

impl std::fmt::Display for ResidueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResidueKind::InstallL1 => "transient install survived in L1",
            ResidueKind::InstallL2 => "transient install survived in L2",
            ResidueKind::MissingRestore => "speculatively evicted victim never restored",
            ResidueKind::SpeculativeDowngrade => "speculative request downgraded a remote M copy",
            ResidueKind::DoubleCleanup => "line cleanup-invalidated twice without a refill",
        })
    }
}

/// One piece of speculation-attributable state that outlived its squash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuditResidue {
    /// The core whose speculation caused it.
    pub core: usize,
    /// The affected cache line.
    pub line: u64,
    /// What survived.
    pub kind: ResidueKind,
}

/// The audit's verdict over a whole run.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Squash events observed.
    pub squashes: u64,
    /// Squashed loads observed.
    pub squashed_loads: u64,
    /// CleanupSpec invalidations observed.
    pub cleanup_invals: u64,
    /// CleanupSpec restores observed.
    pub cleanup_restores: u64,
    /// Speculation-attributable state that survived. Empty = clean.
    pub residue: Vec<AuditResidue>,
}

impl AuditReport {
    /// Whether the undo invariant held: no residue.
    pub fn clean(&self) -> bool {
        self.residue.is_empty()
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "audit: {} squashes, {} squashed loads, {} cleanup invals, {} restores",
            self.squashes, self.squashed_loads, self.cleanup_invals, self.cleanup_restores
        )?;
        if self.clean() {
            write!(
                f,
                "audit: CLEAN — no speculation-attributable state survived"
            )
        } else {
            writeln!(f, "audit: DIRTY — {} residue item(s):", self.residue.len())?;
            for r in &self.residue {
                writeln!(f, "  core{} line=0x{:x}: {}", r.core, r.line, r.kind)?;
            }
            Ok(())
        }
    }
}

/// Event-correlating audit of the CleanupSpec undo invariant.
#[derive(Default, Debug)]
pub struct LeakageAuditSink {
    cores: Vec<CoreAudit>,
    squashes: u64,
    squashed_loads: u64,
    cleanup_invals: u64,
    cleanup_restores: u64,
    /// Residues detected eagerly at record time (protocol violations that
    /// are wrong the moment they happen, independent of how the run ends).
    eager: Vec<AuditResidue>,
}

impl LeakageAuditSink {
    /// An empty audit.
    pub fn new() -> Self {
        LeakageAuditSink::default()
    }

    fn core(&mut self, i: usize) -> &mut CoreAudit {
        if self.cores.len() <= i {
            self.cores.resize_with(i + 1, CoreAudit::default);
        }
        &mut self.cores[i]
    }

    /// Computes the verdict from the events seen so far.
    ///
    /// Call after the simulation has *drained* (in-flight fills landed):
    /// insecure modes leak precisely via fills that complete after the
    /// squash, and those must be on the books before judging.
    pub fn report(&self) -> AuditReport {
        let mut residue = self.eager.clone();
        for (ci, c) in self.cores.iter().enumerate() {
            for (&line, w) in &c.watch {
                if !w.squashed {
                    // Still in flight when the run ended (or committed —
                    // those entries are removed at commit). Not evidence
                    // of a broken undo.
                    continue;
                }
                if w.present_l1 {
                    residue.push(AuditResidue {
                        core: ci,
                        line,
                        kind: ResidueKind::InstallL1,
                    });
                }
                if w.present_l2 {
                    residue.push(AuditResidue {
                        core: ci,
                        line,
                        kind: ResidueKind::InstallL2,
                    });
                }
            }
            for (&line, o) in &c.owed {
                if o.due && !o.settled {
                    residue.push(AuditResidue {
                        core: ci,
                        line,
                        kind: ResidueKind::MissingRestore,
                    });
                }
            }
        }
        residue.sort_by_key(|r| (r.core, r.line));
        AuditReport {
            squashes: self.squashes,
            squashed_loads: self.squashed_loads,
            cleanup_invals: self.cleanup_invals,
            cleanup_restores: self.cleanup_restores,
            residue,
        }
    }
}

impl EventSink for LeakageAuditSink {
    fn record(&mut self, _cycle: u64, event: &SimEvent) {
        match *event {
            SimEvent::LoadIssue {
                core, line, spec, ..
            } => {
                let c = self.core(core);
                if spec {
                    let w = c.watch.entry(line).or_default();
                    // A previous squashed episode of this line that was
                    // fully undone is finished business: this issue opens
                    // a fresh episode. (Leaving the stale `squashed` bit
                    // would misattribute the new instance's fills.)
                    if w.squashed && !w.present_l1 && !w.present_l2 {
                        *w = WatchState::default();
                    }
                } else {
                    // An architectural access legitimizes the line's
                    // presence, refills an evicted victim, and makes any
                    // eviction this line's install caused architectural.
                    c.watch.remove(&line);
                    if let Some(o) = c.owed.get_mut(&line) {
                        o.settled = true;
                    }
                    c.forgive_evictor(line);
                }
            }
            SimEvent::Fill {
                core,
                line,
                level,
                spec,
            } => {
                let c = self.core(core);
                if let Some(w) = c.watch.get_mut(&line) {
                    if !w.squashed || spec {
                        // The speculative load's own fill (insecure modes
                        // install untagged, so an open episode claims any
                        // fill on its line, tagged or not).
                        w.cleaned = false;
                        match level {
                            CacheLevel::L1 => w.present_l1 = true,
                            CacheLevel::L2 => w.present_l2 = true,
                        }
                    } else {
                        // An untagged install landing *after* the episode
                        // was squashed and undone — a cleanup restore, a
                        // committed store's RFO, a demand refill — makes
                        // the line's presence architectural and must not
                        // be charged to the stale watch. (A squashed
                        // load's own late fill is re-flagged by the
                        // `OrphanFill` the MSHR emits right after.)
                        c.watch.remove(&line);
                    }
                }
                if level == CacheLevel::L1 {
                    if let Some(o) = c.owed.get_mut(&line) {
                        o.settled = true;
                    }
                }
            }
            SimEvent::OrphanFill { core, line } => {
                // A squashed load's fill landed anyway (insecure modes
                // keep the MSHR entry alive): speculation-attributable
                // presence, no matter what the preceding plain `Fill` on
                // this line looked like.
                let w = self.core(core).watch.entry(line).or_default();
                w.squashed = true;
                w.present_l1 = true;
            }
            SimEvent::Evict {
                core,
                line,
                level,
                evictor,
                ..
            } => {
                let c = self.core(core);
                if let Some(w) = c.watch.get_mut(&line) {
                    match level {
                        CacheLevel::L1 => w.present_l1 = false,
                        CacheLevel::L2 => w.present_l2 = false,
                    }
                }
                // A speculative install displacing a *non-transient* L1
                // victim owes that victim a restore — due only if the
                // evictor is later squashed. (Transient victims are
                // settled by their own cleanup entries.)
                if let Some(evictor) = evictor {
                    if level == CacheLevel::L1 && !c.watch.contains_key(&line) {
                        c.owed.insert(
                            line,
                            OwedRestore {
                                evictor,
                                due: false,
                                settled: false,
                            },
                        );
                    }
                }
            }
            SimEvent::BackInval { core, line } => {
                if let Some(w) = self.core(core).watch.get_mut(&line) {
                    w.present_l1 = false;
                }
            }
            SimEvent::Clflush { line, .. } => {
                // clflush removes the line everywhere, for every core.
                for c in &mut self.cores {
                    if let Some(w) = c.watch.get_mut(&line) {
                        w.present_l1 = false;
                        w.present_l2 = false;
                    }
                    c.owed.remove(&line);
                }
            }
            SimEvent::Squash { .. } => self.squashes += 1,
            SimEvent::SquashedLoad { core, line, .. } => {
                self.squashed_loads += 1;
                let c = self.core(core);
                c.watch.entry(line).or_default().squashed = true;
                // Any eviction this load's install caused is now due a
                // restore.
                for o in c.owed.values_mut() {
                    if o.evictor == line {
                        o.due = true;
                    }
                }
            }
            SimEvent::Commit {
                core,
                line: Some(line),
                ..
            } => {
                let c = self.core(core);
                c.watch.remove(&line);
                if let Some(o) = c.owed.get_mut(&line) {
                    o.settled = true;
                }
                c.forgive_evictor(line);
            }
            SimEvent::CleanupInval {
                core, line, l1, l2, ..
            } => {
                self.cleanup_invals += 1;
                let double = if let Some(w) = self.core(core).watch.get_mut(&line) {
                    let double = w.cleaned;
                    w.cleaned = true;
                    if l1 {
                        w.present_l1 = false;
                    }
                    if l2 {
                        w.present_l2 = false;
                    }
                    double
                } else {
                    false
                };
                if double {
                    self.eager.push(AuditResidue {
                        core,
                        line,
                        kind: ResidueKind::DoubleCleanup,
                    });
                }
            }
            SimEvent::CleanupRestore { core, line, .. } => {
                self.cleanup_restores += 1;
                self.core(core)
                    .owed
                    .entry(line)
                    .or_insert(OwedRestore {
                        evictor: line,
                        due: false,
                        settled: true,
                    })
                    .settled = true;
            }
            SimEvent::SpecRetire { core, line } => {
                // The load left the speculative window without a squash:
                // its eviction (if any) is as architectural as its fill.
                self.core(core).forgive_evictor(line);
            }
            SimEvent::Downgrade { owner, line, spec } if spec => {
                self.eager.push(AuditResidue {
                    core: owner,
                    line,
                    kind: ResidueKind::SpeculativeDowngrade,
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PathKind;

    fn issue(core: usize, line: u64, spec: bool) -> SimEvent {
        SimEvent::LoadIssue {
            core,
            seq: 0,
            line,
            path: PathKind::Mem,
            spec,
            latency: 100,
        }
    }

    fn fill(core: usize, line: u64, level: CacheLevel) -> SimEvent {
        SimEvent::Fill {
            core,
            line,
            level,
            spec: true,
        }
    }

    #[test]
    fn cleaned_squash_is_clean() {
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 7, true));
        a.record(1, &fill(0, 7, CacheLevel::L2));
        a.record(1, &fill(0, 7, CacheLevel::L1));
        a.record(
            2,
            &SimEvent::Squash {
                core: 0,
                seq: 1,
                squashed: 3,
                episode: 1,
            },
        );
        a.record(
            2,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 7,
                issued: true,
                episode: 1,
            },
        );
        a.record(
            3,
            &SimEvent::CleanupInval {
                core: 0,
                line: 7,
                l1: true,
                l2: true,
                seq: 1,
                episode: 1,
            },
        );
        let r = a.report();
        assert!(r.clean(), "{r}");
        assert_eq!(r.squashes, 1);
        assert_eq!(r.cleanup_invals, 1);
    }

    #[test]
    fn uncleaned_squash_is_dirty() {
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 7, true));
        a.record(1, &fill(0, 7, CacheLevel::L1));
        a.record(
            2,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 7,
                issued: true,
                episode: 1,
            },
        );
        let r = a.report();
        assert!(!r.clean());
        assert_eq!(r.residue[0].kind, ResidueKind::InstallL1);
        assert_eq!(r.residue[0].line, 7);
    }

    #[test]
    fn orphan_fill_after_squash_is_dirty() {
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 9, true));
        a.record(
            1,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 9,
                issued: true,
                episode: 1,
            },
        );
        // The fill lands AFTER the squash (insecure-mode orphan).
        a.record(50, &fill(0, 9, CacheLevel::L1));
        assert!(!a.report().clean());
    }

    #[test]
    fn committed_load_is_architectural() {
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 7, true));
        a.record(1, &fill(0, 7, CacheLevel::L1));
        a.record(
            2,
            &SimEvent::Commit {
                core: 0,
                seq: 1,
                pc: 0,
                line: Some(7),
            },
        );
        assert!(a.report().clean());
    }

    #[test]
    fn missing_restore_is_dirty_and_restore_settles_it() {
        let mut a = LeakageAuditSink::new();
        a.record(
            0,
            &SimEvent::Evict {
                core: 0,
                line: 5,
                level: CacheLevel::L1,
                dirty: false,
                evictor: Some(9),
            },
        );
        // Not due until the evicting load is squashed.
        assert!(a.report().clean());
        a.record(
            1,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 9,
                issued: true,
                episode: 1,
            },
        );
        assert_eq!(a.report().residue[0].kind, ResidueKind::MissingRestore);
        a.record(
            2,
            &SimEvent::CleanupRestore {
                core: 0,
                line: 5,
                evictor: 9,
                seq: 1,
                episode: 1,
            },
        );
        let r = a.report();
        assert!(r.clean(), "{r}");
        assert_eq!(r.cleanup_restores, 1);
    }

    #[test]
    fn retired_evictor_keeps_its_eviction() {
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 9, true));
        a.record(
            1,
            &SimEvent::Evict {
                core: 0,
                line: 5,
                level: CacheLevel::L1,
                dirty: false,
                evictor: Some(9),
            },
        );
        // The evicting load retires (correct path): no restore is owed,
        // even if line 9 is squashed in some *later* episode.
        a.record(2, &SimEvent::SpecRetire { core: 0, line: 9 });
        a.record(
            3,
            &SimEvent::Commit {
                core: 0,
                seq: 1,
                pc: 0,
                line: Some(9),
            },
        );
        assert!(a.report().clean());
        a.record(
            4,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 9,
                issued: true,
                episode: 1,
            },
        );
        let r = a.report();
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn duplicate_squash_then_retire_forgives_the_debt() {
        // MSHR merging: several in-flight loads of line 9 share one
        // install. A younger duplicate is squashed (marking the owed
        // restore due), but the oldest instance retires — the install,
        // and the eviction it caused, are architectural.
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 9, true));
        a.record(
            1,
            &SimEvent::Evict {
                core: 0,
                line: 5,
                level: CacheLevel::L1,
                dirty: false,
                evictor: Some(9),
            },
        );
        a.record(
            2,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 9,
                issued: true,
                episode: 1,
            },
        );
        assert!(!a.report().clean(), "due until the install's fate is known");
        a.record(3, &SimEvent::SpecRetire { core: 0, line: 9 });
        a.record(
            4,
            &SimEvent::Commit {
                core: 0,
                seq: 1,
                pc: 0,
                line: Some(9),
            },
        );
        let r = a.report();
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn non_spec_eviction_owes_nothing() {
        let mut a = LeakageAuditSink::new();
        a.record(
            0,
            &SimEvent::Evict {
                core: 0,
                line: 5,
                level: CacheLevel::L1,
                dirty: true,
                evictor: None,
            },
        );
        a.record(
            1,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 9,
                issued: true,
                episode: 1,
            },
        );
        assert!(a.report().clean());
    }

    #[test]
    fn cleaned_episode_reset_on_reissue() {
        // Episode 1: spec load squashed, fill dropped in flight (never
        // present). Episode 2: same line re-issued speculatively, fills,
        // and is still unresolved when the run ends — not residue.
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 7, true));
        a.record(
            1,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 7,
                issued: true,
                episode: 1,
            },
        );
        a.record(
            2,
            &SimEvent::DroppedFill {
                core: 0,
                line: 7,
                episode: 1,
            },
        );
        a.record(3, &issue(0, 7, true));
        a.record(4, &fill(0, 7, CacheLevel::L1));
        let r = a.report();
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn dropped_fill_never_sets_presence() {
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 3, true));
        a.record(
            1,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 3,
                issued: true,
                episode: 1,
            },
        );
        a.record(
            2,
            &SimEvent::DroppedFill {
                core: 0,
                line: 3,
                episode: 1,
            },
        );
        assert!(a.report().clean());
    }

    #[test]
    fn architectural_reaccess_legitimizes() {
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 7, true));
        a.record(1, &fill(0, 7, CacheLevel::L1));
        a.record(
            2,
            &SimEvent::SquashedLoad {
                core: 0,
                line: 7,
                issued: true,
                episode: 1,
            },
        );
        // The correct path re-executes the same load non-speculatively.
        a.record(3, &issue(0, 7, false));
        assert!(a.report().clean());
    }

    #[test]
    fn speculative_downgrade_is_dirty_architectural_is_not() {
        let mut a = LeakageAuditSink::new();
        a.record(
            0,
            &SimEvent::Downgrade {
                owner: 1,
                line: 3,
                spec: false,
            },
        );
        assert!(a.report().clean());
        a.record(
            1,
            &SimEvent::Downgrade {
                owner: 1,
                line: 3,
                spec: true,
            },
        );
        let r = a.report();
        assert_eq!(r.residue[0].kind, ResidueKind::SpeculativeDowngrade);
        assert_eq!(r.residue[0].core, 1);
    }

    #[test]
    fn double_cleanup_without_refill_is_dirty() {
        let inval = SimEvent::CleanupInval {
            core: 0,
            line: 7,
            l1: true,
            l2: true,
            seq: 1,
            episode: 1,
        };
        let squash = SimEvent::SquashedLoad {
            core: 0,
            line: 7,
            issued: true,
            episode: 1,
        };
        let mut a = LeakageAuditSink::new();
        a.record(0, &issue(0, 7, true));
        a.record(1, &fill(0, 7, CacheLevel::L1));
        a.record(2, &squash);
        a.record(3, &inval);
        assert!(a.report().clean(), "single cleanup is fine");
        a.record(4, &inval);
        let r = a.report();
        assert_eq!(r.residue[0].kind, ResidueKind::DoubleCleanup);

        // A fill between the two invals resets the flag: two separate,
        // correctly paired undo episodes.
        let mut b = LeakageAuditSink::new();
        b.record(0, &issue(0, 7, true));
        b.record(1, &fill(0, 7, CacheLevel::L1));
        b.record(2, &squash);
        b.record(3, &inval);
        b.record(4, &issue(0, 7, true));
        b.record(5, &fill(0, 7, CacheLevel::L1));
        b.record(6, &squash);
        b.record(7, &inval);
        let r = b.report();
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn report_display_mentions_verdict() {
        let a = LeakageAuditSink::new();
        assert!(a.report().to_string().contains("CLEAN"));
    }
}
