//! Cross-layer observability for the CleanupSpec simulator.
//!
//! Every layer of the simulated machine — pipeline, cache hierarchy, MSHR
//! file, CleanupSpec undo engine, DRAM — emits structured [`SimEvent`]s
//! through a shared [`Observer`] handle. The observer is a zero-cost
//! `Option` check when no sink is attached, so instrumented hot paths pay
//! one predictable branch in the common (disabled) case.
//!
//! Sinks implement [`EventSink`] and can be combined freely:
//!
//! * [`RingSink`] — a bounded in-memory ring buffer for test assertions
//!   and interactive dumps (subsumes the old core-local `TraceBuffer`).
//! * [`JsonlSink`] — streams one JSON object per event to any writer.
//! * [`PerfettoSink`] — renders the run as Chrome trace-event JSON that
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//!   directly.
//! * [`LeakageAuditSink`] — correlates speculative fills, squashes, and
//!   cleanup operations to verify the paper's core invariant at runtime:
//!   after a squash, no speculation-attributable cache state survives.
//!
//! This crate sits at the bottom of the workspace (no dependencies, not
//! even on `cleanupspec-mem`), so events carry primitive field types:
//! core indices are `usize`, cache-line addresses are the `u64` line
//! number (byte address divided by the 64-byte line size).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atomicio;
pub mod audit;
pub mod commitlog;
pub mod episode;
pub mod event;
pub mod histogram;
pub mod json;
pub mod jsonl;
pub mod jsonparse;
pub mod metrics;
pub mod observer;
pub mod perfetto;
pub mod ring;

pub use audit::{AuditReport, AuditResidue, LeakageAuditSink, ResidueKind};
pub use commitlog::{CommitEntry, CommitLogSink};
pub use episode::{EpisodeBuilder, EpisodeLeak, EpisodeRecord, EpisodeReport, LeakKind};
pub use event::{CacheLevel, FieldValue, Layer, PathKind, SimEvent, EVENT_SCHEMA_VERSION};
pub use histogram::Histogram;
pub use json::{event_from_json, event_to_json, JsonWriter};
pub use jsonl::JsonlSink;
pub use jsonparse::JsonValue;
pub use metrics::{CounterSample, MetricsRegistry};
pub use observer::{EventSink, Observer, Shared};
pub use perfetto::PerfettoSink;
pub use ring::{EventRecord, RingSink};
