//! The structured event vocabulary shared by every simulated layer.
//!
//! Events are plain data: primitive fields only, no references into
//! simulator state, so sinks can retain them past the emitting call and
//! across threads. `line` fields hold the cache-line number (byte address
//! divided by the line size), matching `LineAddr` in `cleanupspec-mem`.

use std::fmt;

/// Version tag of the event vocabulary + JSONL field layout. Written as
/// the first line of every JSONL trace (`{"schema": "cs-events-v2"}`) and
/// checked by `cs-report` before replaying a trace: a report built from a
/// trace with a different schema would silently mis-correlate episodes.
/// Bump when an event gains/loses/renames a field or a kind changes.
pub const EVENT_SCHEMA_VERSION: &str = "cs-events-v2";

/// Which layer of the machine emitted an event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Layer {
    /// Out-of-order core: fetch/dispatch, issue, commit, squash, fault.
    Pipeline,
    /// L1/L2 caches and coherence: fills, evictions, invalidations.
    Cache,
    /// MSHR file doubling as SEFE (speculative-entry) storage.
    Mshr,
    /// CleanupSpec undo engine: invalidate, restore, epoch bumps.
    Cleanup,
    /// DRAM backing store.
    Dram,
}

impl Layer {
    /// All layers, in emission-source order.
    pub const ALL: [Layer; 5] = [
        Layer::Pipeline,
        Layer::Cache,
        Layer::Mshr,
        Layer::Cleanup,
        Layer::Dram,
    ];

    /// Stable lowercase name (used for filtering and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Pipeline => "pipeline",
            Layer::Cache => "cache",
            Layer::Mshr => "mshr",
            Layer::Cleanup => "cleanup",
            Layer::Dram => "dram",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cache level an event refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CacheLevel {
    /// Per-core L1 data cache.
    L1,
    /// Shared L2 (the last-level cache in this model).
    L2,
}

impl CacheLevel {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheLevel::L1 => "l1",
            CacheLevel::L2 => "l2",
        }
    }
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a load was serviced — mirrors `LoadPath` in `cleanupspec-mem`
/// without creating a dependency on it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PathKind {
    /// Hit in the requesting core's L1.
    L1Hit,
    /// Hit in the shared L2.
    L2Hit,
    /// Serviced by another core's cache (coherence transfer).
    RemoteHit,
    /// Went to DRAM.
    Mem,
    /// CleanupSpec window-protection dummy miss (DRAM latency, no fill).
    Dummy,
}

impl PathKind {
    /// All paths, fastest first. Indexes histogram arrays.
    pub const ALL: [PathKind; 5] = [
        PathKind::L1Hit,
        PathKind::L2Hit,
        PathKind::RemoteHit,
        PathKind::Mem,
        PathKind::Dummy,
    ];

    /// Stable name matching `LoadPath`'s `Display` form.
    pub fn as_str(self) -> &'static str {
        match self {
            PathKind::L1Hit => "l1-hit",
            PathKind::L2Hit => "l2-hit",
            PathKind::RemoteHit => "remote-hit",
            PathKind::Mem => "mem",
            PathKind::Dummy => "dummy",
        }
    }

    /// Dense index for per-path arrays (same order as [`PathKind::ALL`]).
    pub fn index(self) -> usize {
        match self {
            PathKind::L1Hit => 0,
            PathKind::L2Hit => 1,
            PathKind::RemoteHit => 2,
            PathKind::Mem => 3,
            PathKind::Dummy => 4,
        }
    }
}

impl fmt::Display for PathKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One simulation event. See [`Layer`] for the grouping; field semantics
/// are documented per variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimEvent {
    // ------------------------------------------------------------ pipeline
    /// An instruction entered the window.
    Dispatch {
        /// Emitting core.
        core: usize,
        /// Dynamic sequence number.
        seq: u64,
        /// Static program counter.
        pc: u64,
    },
    /// A load left the load queue and probed the hierarchy.
    LoadIssue {
        /// Emitting core.
        core: usize,
        /// Dynamic sequence number.
        seq: u64,
        /// Requested cache line.
        line: u64,
        /// Where the load was serviced.
        path: PathKind,
        /// Whether the load was speculative (unresolved older branch).
        spec: bool,
        /// Cycles until the value returns.
        latency: u64,
    },
    /// An instruction retired architecturally. `line` is set for loads.
    Commit {
        /// Emitting core.
        core: usize,
        /// Dynamic sequence number.
        seq: u64,
        /// Static program counter.
        pc: u64,
        /// Cache line, for committed loads.
        line: Option<u64>,
    },
    /// A branch mispredict squashed the younger window.
    Squash {
        /// Emitting core.
        core: usize,
        /// Sequence number of the mispredicted branch.
        seq: u64,
        /// Instructions squashed.
        squashed: u64,
        /// Cleanup episode this squash opened or joined (1-based,
        /// monotonically increasing per core). Squashes that merge into a
        /// cleanup already waiting on in-flight loads share its episode.
        episode: u64,
    },
    /// One squashed load (one event per load with a known line).
    SquashedLoad {
        /// Emitting core.
        core: usize,
        /// The load's cache line.
        line: u64,
        /// Whether it had issued to the hierarchy before the squash.
        issued: bool,
        /// Cleanup episode the load's undo belongs to.
        episode: u64,
    },
    /// An architectural fault reached commit and flushed the window.
    Fault {
        /// Emitting core.
        core: usize,
        /// Dynamic sequence number.
        seq: u64,
        /// Static program counter.
        pc: u64,
    },
    /// The squash handler invoked the scheme's cleanup (duration known
    /// up front: the scheme returns its resume cycle).
    CleanupStart {
        /// Emitting core.
        core: usize,
        /// Squashed loads handed to the scheme.
        loads: u64,
        /// Cycles until issue resumes.
        stall: u64,
        /// Cleanup episode being executed.
        episode: u64,
    },
    /// Cleanup finished; stamped at the resume cycle.
    CleanupEnd {
        /// Emitting core.
        core: usize,
        /// Cycles the cleanup stalled issue.
        stall: u64,
        /// Cleanup episode that just closed.
        episode: u64,
    },

    // ------------------------------------------------------------ cache
    /// A line was installed.
    Fill {
        /// Requesting core.
        core: usize,
        /// Installed line.
        line: u64,
        /// Level installed into.
        level: CacheLevel,
        /// Whether the install is speculation-tagged (SEFE-tracked).
        spec: bool,
    },
    /// A line was evicted to make room.
    Evict {
        /// Core whose install caused the eviction (L2: requesting core).
        core: usize,
        /// Evicted line.
        line: u64,
        /// Level evicted from.
        level: CacheLevel,
        /// Whether the victim was dirty (writeback).
        dirty: bool,
        /// Line whose speculative install displaced it, if any
        /// (CleanupSpec owes this victim a restore if that load is
        /// squashed; if it retires, the eviction is architectural).
        evictor: Option<u64>,
    },
    /// Inclusion back-invalidation of an L1 copy after an L2 eviction.
    BackInval {
        /// Core whose L1 lost the line.
        core: usize,
        /// Invalidated line.
        line: u64,
    },
    /// Explicit `clflush`: the line left every cache level.
    Clflush {
        /// Core that executed the flush.
        core: usize,
        /// Flushed line.
        line: u64,
    },
    /// CleanupSpec window protection returned a dummy miss (DRAM latency,
    /// no state change).
    DummyMiss {
        /// Requesting core.
        core: usize,
        /// Requested line.
        line: u64,
        /// Core whose transient install is being hidden.
        owner: usize,
        /// The *prospective* cleanup episode of the owning core: the
        /// window being protected has not squashed yet, so the id names
        /// the episode that will open if it does (owner's last episode
        /// + 1).
        episode: u64,
    },
    /// GetS-Safe deferred a speculative request that would have downgraded
    /// another core's modified line.
    GetsSafeDefer {
        /// Requesting core.
        core: usize,
        /// Requested line.
        line: u64,
        /// Core owning the line in M state.
        owner: usize,
    },
    /// A demand access downgraded another core's modified copy (M -> S).
    Downgrade {
        /// Previous owner.
        owner: usize,
        /// Downgraded line.
        line: u64,
        /// Whether a *speculative* request forced the downgrade. Under
        /// GetS-Safe this must never happen — the leakage audit flags any
        /// `spec=true` downgrade as a residue.
        spec: bool,
    },
    /// The forward-progress watchdog fired: this core committed nothing
    /// for `stalled_for` cycles. One event per stuck core, mirroring the
    /// `DiagnosticDump` carried by `StopReason::Livelock`.
    Livelock {
        /// Stuck core.
        core: usize,
        /// Cycles since the last commit on any core.
        stalled_for: u64,
        /// Live ROB entries.
        rob: u64,
        /// PC of the ROB head (0 if the ROB is empty).
        head_pc: u64,
        /// Occupied MSHR entries.
        mshr: u64,
        /// Live speculation-tagged MSHR entries (pending SEFEs).
        sefes: u64,
    },
    /// cs-snap captured a full-state snapshot of the running system.
    SnapshotTaken {
        /// Simulated cycle at capture time.
        at: u64,
    },
    /// cs-snap rewound the system to a previously captured snapshot (or
    /// forked a new simulator from one).
    SnapshotRestored {
        /// Simulated cycle the restored state resumes from.
        at: u64,
    },

    // ------------------------------------------------------------ mshr
    /// An MSHR entry was allocated. `spec` entries double as SEFE
    /// allocations (the undo log of the speculative fill).
    MshrAlloc {
        /// Owning core.
        core: usize,
        /// Missing line.
        line: u64,
        /// Whether the entry is speculation-tagged (a SEFE allocation).
        spec: bool,
        /// Entries live after this allocation.
        occupancy: u64,
    },
    /// An MSHR entry was freed after its load was collected. `spec`
    /// entries double as SEFE frees.
    MshrRetire {
        /// Owning core.
        core: usize,
        /// The entry's line.
        line: u64,
        /// Whether the entry was speculation-tagged (a SEFE free).
        spec: bool,
        /// Entries live after this free.
        occupancy: u64,
    },
    /// An epoch bump marked pending entries as dropped.
    MshrDrop {
        /// Owning core.
        core: usize,
        /// Entries marked dropped.
        dropped: u64,
    },
    /// A speculative load found no free MSHR entry (SEFE overflow: the
    /// load retries rather than running unlogged).
    SefeOverflow {
        /// Requesting core.
        core: usize,
        /// Requested line.
        line: u64,
    },
    /// A dropped (epoch-stale) fill completed and was discarded without
    /// touching the caches.
    DroppedFill {
        /// Owning core.
        core: usize,
        /// The fill's line.
        line: u64,
        /// Cleanup episode whose epoch bump dropped the fill (stamped on
        /// the MSHR entry at drop time; the fill itself lands later).
        episode: u64,
    },
    /// An orphaned fill (owner squashed, entry kept alive in insecure
    /// modes) completed and installed anyway — the classic leak.
    OrphanFill {
        /// Owning core.
        core: usize,
        /// The fill's line.
        line: u64,
    },

    // ------------------------------------------------------------ cleanup
    /// CleanupSpec invalidated a transiently filled line.
    CleanupInval {
        /// Squashing core.
        core: usize,
        /// Invalidated (speculatively installed) line.
        line: u64,
        /// Whether the L1 copy was targeted.
        l1: bool,
        /// Whether the L2 copy was targeted.
        l2: bool,
        /// Sequence number of the squash that triggered the cleanup.
        seq: u64,
        /// Cleanup episode performing the undo.
        episode: u64,
    },
    /// CleanupSpec re-installed a victim displaced by a speculative fill.
    CleanupRestore {
        /// Squashing core.
        core: usize,
        /// Restored (victim) line.
        line: u64,
        /// The speculatively installed line whose eviction is being
        /// undone — the same line the paired [`SimEvent::CleanupInval`]
        /// targets.
        evictor: u64,
        /// Sequence number of the squash that triggered the cleanup.
        seq: u64,
        /// Cleanup episode performing the undo.
        episode: u64,
    },
    /// The core's load epoch advanced, orphan-dropping in-flight fills.
    EpochBump {
        /// Squashing core.
        core: usize,
        /// New epoch value.
        epoch: u64,
        /// Pending fills dropped by the bump.
        dropped: u64,
        /// Cleanup episode that bumped the epoch.
        episode: u64,
    },
    /// A speculative load committed; its SEFE/speculation tags cleared.
    SpecRetire {
        /// Committing core.
        core: usize,
        /// The load's line.
        line: u64,
    },
    /// A CEASER-randomized index function was (re)keyed.
    CeaserRemap {
        /// Randomized level.
        level: CacheLevel,
        /// Remap epoch (0 = initial keying).
        epoch: u64,
    },

    // ------------------------------------------------------------ dram
    /// A demand read reached DRAM.
    DramRead {
        /// Requesting core.
        core: usize,
        /// Read line.
        line: u64,
    },
    /// A dirty eviction wrote back to DRAM.
    DramWriteback {
        /// Written line.
        line: u64,
    },
}

/// A single typed field of an event, for generic rendering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (enum-like fields).
    Str(&'static str),
}

impl SimEvent {
    /// Every kind name [`Self::kind`] can return, in declaration order.
    /// CLI filters (`cs-trace --filter`) validate against this list so a
    /// typo is an error instead of a silently empty trace.
    pub const KINDS: [&'static str; 31] = [
        "dispatch",
        "load-issue",
        "commit",
        "squash",
        "squashed-load",
        "fault",
        "cleanup-start",
        "cleanup-end",
        "fill",
        "evict",
        "back-inval",
        "clflush",
        "dummy-miss",
        "gets-safe-defer",
        "downgrade",
        "livelock",
        "snapshot-taken",
        "snapshot-restored",
        "mshr-alloc",
        "mshr-retire",
        "mshr-drop",
        "sefe-overflow",
        "dropped-fill",
        "orphan-fill",
        "cleanup-inval",
        "cleanup-restore",
        "epoch-bump",
        "spec-retire",
        "ceaser-remap",
        "dram-read",
        "dram-writeback",
    ];

    /// Stable kebab-case event name.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::Dispatch { .. } => "dispatch",
            SimEvent::LoadIssue { .. } => "load-issue",
            SimEvent::Commit { .. } => "commit",
            SimEvent::Squash { .. } => "squash",
            SimEvent::SquashedLoad { .. } => "squashed-load",
            SimEvent::Fault { .. } => "fault",
            SimEvent::CleanupStart { .. } => "cleanup-start",
            SimEvent::CleanupEnd { .. } => "cleanup-end",
            SimEvent::Fill { .. } => "fill",
            SimEvent::Evict { .. } => "evict",
            SimEvent::BackInval { .. } => "back-inval",
            SimEvent::Clflush { .. } => "clflush",
            SimEvent::DummyMiss { .. } => "dummy-miss",
            SimEvent::GetsSafeDefer { .. } => "gets-safe-defer",
            SimEvent::Downgrade { .. } => "downgrade",
            SimEvent::Livelock { .. } => "livelock",
            SimEvent::SnapshotTaken { .. } => "snapshot-taken",
            SimEvent::SnapshotRestored { .. } => "snapshot-restored",
            SimEvent::MshrAlloc { .. } => "mshr-alloc",
            SimEvent::MshrRetire { .. } => "mshr-retire",
            SimEvent::MshrDrop { .. } => "mshr-drop",
            SimEvent::SefeOverflow { .. } => "sefe-overflow",
            SimEvent::DroppedFill { .. } => "dropped-fill",
            SimEvent::OrphanFill { .. } => "orphan-fill",
            SimEvent::CleanupInval { .. } => "cleanup-inval",
            SimEvent::CleanupRestore { .. } => "cleanup-restore",
            SimEvent::EpochBump { .. } => "epoch-bump",
            SimEvent::SpecRetire { .. } => "spec-retire",
            SimEvent::CeaserRemap { .. } => "ceaser-remap",
            SimEvent::DramRead { .. } => "dram-read",
            SimEvent::DramWriteback { .. } => "dram-writeback",
        }
    }

    /// The layer that emits this event.
    pub fn layer(&self) -> Layer {
        match self {
            SimEvent::Dispatch { .. }
            | SimEvent::LoadIssue { .. }
            | SimEvent::Commit { .. }
            | SimEvent::Squash { .. }
            | SimEvent::SquashedLoad { .. }
            | SimEvent::Fault { .. }
            | SimEvent::CleanupStart { .. }
            | SimEvent::CleanupEnd { .. }
            | SimEvent::Livelock { .. }
            | SimEvent::SnapshotTaken { .. }
            | SimEvent::SnapshotRestored { .. } => Layer::Pipeline,
            SimEvent::Fill { .. }
            | SimEvent::Evict { .. }
            | SimEvent::BackInval { .. }
            | SimEvent::Clflush { .. }
            | SimEvent::DummyMiss { .. }
            | SimEvent::GetsSafeDefer { .. }
            | SimEvent::Downgrade { .. } => Layer::Cache,
            SimEvent::MshrAlloc { .. }
            | SimEvent::MshrRetire { .. }
            | SimEvent::MshrDrop { .. }
            | SimEvent::SefeOverflow { .. }
            | SimEvent::DroppedFill { .. }
            | SimEvent::OrphanFill { .. } => Layer::Mshr,
            SimEvent::CleanupInval { .. }
            | SimEvent::CleanupRestore { .. }
            | SimEvent::EpochBump { .. }
            | SimEvent::SpecRetire { .. }
            | SimEvent::CeaserRemap { .. } => Layer::Cleanup,
            SimEvent::DramRead { .. } | SimEvent::DramWriteback { .. } => Layer::Dram,
        }
    }

    /// The core most directly associated with the event, if any.
    pub fn core(&self) -> Option<usize> {
        match *self {
            SimEvent::Dispatch { core, .. }
            | SimEvent::LoadIssue { core, .. }
            | SimEvent::Commit { core, .. }
            | SimEvent::Squash { core, .. }
            | SimEvent::SquashedLoad { core, .. }
            | SimEvent::Fault { core, .. }
            | SimEvent::CleanupStart { core, .. }
            | SimEvent::CleanupEnd { core, .. }
            | SimEvent::Fill { core, .. }
            | SimEvent::Evict { core, .. }
            | SimEvent::BackInval { core, .. }
            | SimEvent::Clflush { core, .. }
            | SimEvent::DummyMiss { core, .. }
            | SimEvent::GetsSafeDefer { core, .. }
            | SimEvent::MshrAlloc { core, .. }
            | SimEvent::MshrRetire { core, .. }
            | SimEvent::MshrDrop { core, .. }
            | SimEvent::SefeOverflow { core, .. }
            | SimEvent::DroppedFill { core, .. }
            | SimEvent::OrphanFill { core, .. }
            | SimEvent::CleanupInval { core, .. }
            | SimEvent::CleanupRestore { core, .. }
            | SimEvent::EpochBump { core, .. }
            | SimEvent::SpecRetire { core, .. }
            | SimEvent::Livelock { core, .. }
            | SimEvent::DramRead { core, .. } => Some(core),
            SimEvent::Downgrade { owner, .. } => Some(owner),
            SimEvent::CeaserRemap { .. }
            | SimEvent::DramWriteback { .. }
            | SimEvent::SnapshotTaken { .. }
            | SimEvent::SnapshotRestored { .. } => None,
        }
    }

    /// The cache line the event refers to, if any.
    pub fn line(&self) -> Option<u64> {
        match *self {
            SimEvent::LoadIssue { line, .. }
            | SimEvent::SquashedLoad { line, .. }
            | SimEvent::Fill { line, .. }
            | SimEvent::Evict { line, .. }
            | SimEvent::BackInval { line, .. }
            | SimEvent::Clflush { line, .. }
            | SimEvent::DummyMiss { line, .. }
            | SimEvent::GetsSafeDefer { line, .. }
            | SimEvent::Downgrade { line, .. }
            | SimEvent::MshrAlloc { line, .. }
            | SimEvent::MshrRetire { line, .. }
            | SimEvent::SefeOverflow { line, .. }
            | SimEvent::DroppedFill { line, .. }
            | SimEvent::OrphanFill { line, .. }
            | SimEvent::CleanupInval { line, .. }
            | SimEvent::CleanupRestore { line, .. }
            | SimEvent::SpecRetire { line, .. }
            | SimEvent::DramRead { line, .. }
            | SimEvent::DramWriteback { line } => Some(line),
            SimEvent::Commit { line, .. } => line,
            _ => None,
        }
    }

    /// The cleanup episode the event belongs to, if it carries one.
    /// `0` means "outside any attributed episode" (e.g. a cleanup call
    /// issued directly by a unit test, before any squash registered an
    /// episode) and is mapped to `None` here.
    pub fn episode(&self) -> Option<u64> {
        let ep = match *self {
            SimEvent::Squash { episode, .. }
            | SimEvent::SquashedLoad { episode, .. }
            | SimEvent::CleanupStart { episode, .. }
            | SimEvent::CleanupEnd { episode, .. }
            | SimEvent::DummyMiss { episode, .. }
            | SimEvent::DroppedFill { episode, .. }
            | SimEvent::CleanupInval { episode, .. }
            | SimEvent::CleanupRestore { episode, .. }
            | SimEvent::EpochBump { episode, .. } => episode,
            _ => return None,
        };
        (ep != 0).then_some(ep)
    }

    /// Every field as `(name, value)` pairs, in declaration order. Generic
    /// renderers (JSONL, Perfetto args, `Display`) are built on this.
    pub fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        use FieldValue::{Bool, Str, U64};
        match *self {
            SimEvent::Dispatch { core, seq, pc } => {
                vec![
                    ("core", U64(core as u64)),
                    ("seq", U64(seq)),
                    ("pc", U64(pc)),
                ]
            }
            SimEvent::LoadIssue {
                core,
                seq,
                line,
                path,
                spec,
                latency,
            } => vec![
                ("core", U64(core as u64)),
                ("seq", U64(seq)),
                ("line", U64(line)),
                ("path", Str(path.as_str())),
                ("spec", Bool(spec)),
                ("latency", U64(latency)),
            ],
            SimEvent::Commit {
                core,
                seq,
                pc,
                line,
            } => {
                let mut f = vec![
                    ("core", U64(core as u64)),
                    ("seq", U64(seq)),
                    ("pc", U64(pc)),
                ];
                if let Some(l) = line {
                    f.push(("line", U64(l)));
                }
                f
            }
            SimEvent::Squash {
                core,
                seq,
                squashed,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("seq", U64(seq)),
                ("squashed", U64(squashed)),
                ("episode", U64(episode)),
            ],
            SimEvent::SquashedLoad {
                core,
                line,
                issued,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("line", U64(line)),
                ("issued", Bool(issued)),
                ("episode", U64(episode)),
            ],
            SimEvent::Fault { core, seq, pc } => {
                vec![
                    ("core", U64(core as u64)),
                    ("seq", U64(seq)),
                    ("pc", U64(pc)),
                ]
            }
            SimEvent::CleanupStart {
                core,
                loads,
                stall,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("loads", U64(loads)),
                ("stall", U64(stall)),
                ("episode", U64(episode)),
            ],
            SimEvent::CleanupEnd {
                core,
                stall,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("stall", U64(stall)),
                ("episode", U64(episode)),
            ],
            SimEvent::Fill {
                core,
                line,
                level,
                spec,
            } => vec![
                ("core", U64(core as u64)),
                ("line", U64(line)),
                ("level", Str(level.as_str())),
                ("spec", Bool(spec)),
            ],
            SimEvent::Evict {
                core,
                line,
                level,
                dirty,
                evictor,
            } => {
                let mut f = vec![
                    ("core", U64(core as u64)),
                    ("line", U64(line)),
                    ("level", Str(level.as_str())),
                    ("dirty", Bool(dirty)),
                    ("by_spec", Bool(evictor.is_some())),
                ];
                if let Some(e) = evictor {
                    f.push(("evictor", U64(e)));
                }
                f
            }
            SimEvent::BackInval { core, line }
            | SimEvent::Clflush { core, line }
            | SimEvent::SefeOverflow { core, line }
            | SimEvent::OrphanFill { core, line }
            | SimEvent::SpecRetire { core, line }
            | SimEvent::DramRead { core, line } => {
                vec![("core", U64(core as u64)), ("line", U64(line))]
            }
            SimEvent::DummyMiss {
                core,
                line,
                owner,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("line", U64(line)),
                ("owner", U64(owner as u64)),
                ("episode", U64(episode)),
            ],
            SimEvent::DroppedFill {
                core,
                line,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("line", U64(line)),
                ("episode", U64(episode)),
            ],
            SimEvent::GetsSafeDefer { core, line, owner } => vec![
                ("core", U64(core as u64)),
                ("line", U64(line)),
                ("owner", U64(owner as u64)),
            ],
            SimEvent::Downgrade { owner, line, spec } => {
                vec![
                    ("owner", U64(owner as u64)),
                    ("line", U64(line)),
                    ("spec", Bool(spec)),
                ]
            }
            SimEvent::Livelock {
                core,
                stalled_for,
                rob,
                head_pc,
                mshr,
                sefes,
            } => vec![
                ("core", U64(core as u64)),
                ("stalled_for", U64(stalled_for)),
                ("rob", U64(rob)),
                ("head_pc", U64(head_pc)),
                ("mshr", U64(mshr)),
                ("sefes", U64(sefes)),
            ],
            SimEvent::SnapshotTaken { at } | SimEvent::SnapshotRestored { at } => {
                vec![("at", U64(at))]
            }
            SimEvent::MshrAlloc {
                core,
                line,
                spec,
                occupancy,
            }
            | SimEvent::MshrRetire {
                core,
                line,
                spec,
                occupancy,
            } => vec![
                ("core", U64(core as u64)),
                ("line", U64(line)),
                ("spec", Bool(spec)),
                ("occupancy", U64(occupancy)),
            ],
            SimEvent::MshrDrop { core, dropped } => {
                vec![("core", U64(core as u64)), ("dropped", U64(dropped))]
            }
            SimEvent::CleanupInval {
                core,
                line,
                l1,
                l2,
                seq,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("line", U64(line)),
                ("l1", Bool(l1)),
                ("l2", Bool(l2)),
                ("seq", U64(seq)),
                ("episode", U64(episode)),
            ],
            SimEvent::CleanupRestore {
                core,
                line,
                evictor,
                seq,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("line", U64(line)),
                ("evictor", U64(evictor)),
                ("seq", U64(seq)),
                ("episode", U64(episode)),
            ],
            SimEvent::EpochBump {
                core,
                epoch,
                dropped,
                episode,
            } => vec![
                ("core", U64(core as u64)),
                ("epoch", U64(epoch)),
                ("dropped", U64(dropped)),
                ("episode", U64(episode)),
            ],
            SimEvent::CeaserRemap { level, epoch } => {
                vec![("level", Str(level.as_str())), ("epoch", U64(epoch))]
            }
            SimEvent::DramWriteback { line } => vec![("line", U64(line))],
        }
    }
}

impl fmt::Display for SimEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.layer(), self.kind())?;
        for (name, value) in self.fields() {
            match value {
                // Lines and pcs read better in hex.
                FieldValue::U64(v) if name == "line" || name == "pc" || name == "evictor" => {
                    write!(f, " {name}=0x{v:x}")?
                }
                FieldValue::U64(v) => write!(f, " {name}={v}")?,
                FieldValue::Bool(v) => write!(f, " {name}={v}")?,
                FieldValue::Str(v) => write!(f, " {name}={v}")?,
            }
        }
        Ok(())
    }
}

/// One sample of every event variant, for exhaustiveness tests. Adding a
/// variant without extending this list fails the schema-pinning test
/// below, which is the point: every variant must be represented.
#[cfg(test)]
pub(crate) fn sample_events() -> Vec<SimEvent> {
    vec![
        SimEvent::Dispatch {
            core: 0,
            seq: 1,
            pc: 2,
        },
        SimEvent::LoadIssue {
            core: 0,
            seq: 1,
            line: 3,
            path: PathKind::Mem,
            spec: true,
            latency: 100,
        },
        SimEvent::Commit {
            core: 0,
            seq: 1,
            pc: 2,
            line: Some(3),
        },
        SimEvent::Squash {
            core: 0,
            seq: 1,
            squashed: 4,
            episode: 1,
        },
        SimEvent::SquashedLoad {
            core: 0,
            line: 3,
            issued: true,
            episode: 1,
        },
        SimEvent::Fault {
            core: 0,
            seq: 1,
            pc: 2,
        },
        SimEvent::CleanupStart {
            core: 0,
            loads: 2,
            stall: 20,
            episode: 1,
        },
        SimEvent::CleanupEnd {
            core: 0,
            stall: 20,
            episode: 1,
        },
        SimEvent::Fill {
            core: 0,
            line: 3,
            level: CacheLevel::L2,
            spec: false,
        },
        SimEvent::Evict {
            core: 0,
            line: 3,
            level: CacheLevel::L1,
            dirty: true,
            evictor: Some(9),
        },
        SimEvent::BackInval { core: 0, line: 3 },
        SimEvent::Clflush { core: 0, line: 3 },
        SimEvent::DummyMiss {
            core: 0,
            line: 3,
            owner: 1,
            episode: 2,
        },
        SimEvent::GetsSafeDefer {
            core: 0,
            line: 3,
            owner: 1,
        },
        SimEvent::Downgrade {
            owner: 1,
            line: 3,
            spec: false,
        },
        SimEvent::Livelock {
            core: 0,
            stalled_for: 200_000,
            rob: 4,
            head_pc: 0x10,
            mshr: 8,
            sefes: 8,
        },
        SimEvent::SnapshotTaken { at: 7 },
        SimEvent::SnapshotRestored { at: 7 },
        SimEvent::MshrAlloc {
            core: 0,
            line: 3,
            spec: true,
            occupancy: 1,
        },
        SimEvent::MshrRetire {
            core: 0,
            line: 3,
            spec: true,
            occupancy: 0,
        },
        SimEvent::MshrDrop {
            core: 0,
            dropped: 2,
        },
        SimEvent::SefeOverflow { core: 0, line: 3 },
        SimEvent::DroppedFill {
            core: 0,
            line: 3,
            episode: 1,
        },
        SimEvent::OrphanFill { core: 0, line: 3 },
        SimEvent::CleanupInval {
            core: 0,
            line: 3,
            l1: true,
            l2: false,
            seq: 1,
            episode: 1,
        },
        SimEvent::CleanupRestore {
            core: 0,
            line: 3,
            evictor: 9,
            seq: 1,
            episode: 1,
        },
        SimEvent::EpochBump {
            core: 0,
            epoch: 2,
            dropped: 1,
            episode: 1,
        },
        SimEvent::SpecRetire { core: 0, line: 3 },
        SimEvent::CeaserRemap {
            level: CacheLevel::L2,
            epoch: 0,
        },
        SimEvent::DramRead { core: 0, line: 3 },
        SimEvent::DramWriteback { line: 3 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_kebab() {
        let events = sample_events();
        let mut kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        let before = kinds.len();
        kinds.dedup();
        assert_eq!(kinds.len(), before, "duplicate event kind");
        for k in kinds {
            assert!(
                k.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "bad kind {k}"
            );
        }
    }

    #[test]
    fn every_layer_is_represented() {
        let events = sample_events();
        for layer in Layer::ALL {
            assert!(
                events.iter().any(|e| e.layer() == layer),
                "no event for {layer}"
            );
        }
    }

    #[test]
    fn display_includes_layer_kind_and_hex_line() {
        let e = SimEvent::Fill {
            core: 1,
            line: 0xabc,
            level: CacheLevel::L1,
            spec: true,
        };
        let s = e.to_string();
        assert!(s.contains("[cache] fill"), "{s}");
        assert!(s.contains("line=0xabc"), "{s}");
        assert!(s.contains("spec=true"), "{s}");
    }

    #[test]
    fn path_index_matches_all_order() {
        for (i, p) in PathKind::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    /// The pinned `cs-events-v2` schema: every event kind and the exact
    /// JSONL field names it emits, in order. Changing any line here is a
    /// schema break — bump [`EVENT_SCHEMA_VERSION`] and update every
    /// consumer (`cs-report` refuses traces with a different version).
    const PINNED_SCHEMA: &[(&str, &str)] = &[
        ("back-inval", "core,line"),
        ("ceaser-remap", "level,epoch"),
        ("cleanup-end", "core,stall,episode"),
        ("cleanup-inval", "core,line,l1,l2,seq,episode"),
        ("cleanup-restore", "core,line,evictor,seq,episode"),
        ("cleanup-start", "core,loads,stall,episode"),
        ("clflush", "core,line"),
        ("commit", "core,seq,pc,line"),
        ("dispatch", "core,seq,pc"),
        ("downgrade", "owner,line,spec"),
        ("dram-read", "core,line"),
        ("dram-writeback", "line"),
        ("dropped-fill", "core,line,episode"),
        ("dummy-miss", "core,line,owner,episode"),
        ("epoch-bump", "core,epoch,dropped,episode"),
        ("evict", "core,line,level,dirty,by_spec,evictor"),
        ("fault", "core,seq,pc"),
        ("fill", "core,line,level,spec"),
        ("gets-safe-defer", "core,line,owner"),
        ("livelock", "core,stalled_for,rob,head_pc,mshr,sefes"),
        ("load-issue", "core,seq,line,path,spec,latency"),
        ("mshr-alloc", "core,line,spec,occupancy"),
        ("mshr-drop", "core,dropped"),
        ("mshr-retire", "core,line,spec,occupancy"),
        ("orphan-fill", "core,line"),
        ("sefe-overflow", "core,line"),
        ("snapshot-restored", "at"),
        ("snapshot-taken", "at"),
        ("spec-retire", "core,line"),
        ("squash", "core,seq,squashed,episode"),
        ("squashed-load", "core,line,issued,episode"),
    ];

    /// Satellite: the `cs-events-v2` exhaustiveness test. Pins every
    /// `SimEvent::kind()` and its JSONL field layout against
    /// [`PINNED_SCHEMA`]; `sample_events()` must cover every variant
    /// (the count is asserted so a new variant cannot slip in unsampled).
    #[test]
    fn event_schema_is_pinned() {
        assert_eq!(EVENT_SCHEMA_VERSION, "cs-events-v2");
        let events = sample_events();
        let mut got: Vec<(String, String)> = events
            .iter()
            .map(|e| {
                let names: Vec<&str> = e.fields().iter().map(|(n, _)| *n).collect();
                (e.kind().to_string(), names.join(","))
            })
            .collect();
        got.sort();
        let want: Vec<(String, String)> = PINNED_SCHEMA
            .iter()
            .map(|(k, f)| (k.to_string(), f.to_string()))
            .collect();
        assert_eq!(
            got.len(),
            want.len(),
            "sample_events() covers {} kinds, pinned schema has {} — \
             a variant was added or removed without a schema decision",
            got.len(),
            want.len()
        );
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g, w, "event schema drifted; bump cs-events-v2 deliberately");
        }
    }

    #[test]
    fn kinds_list_matches_every_variant() {
        let mut from_samples: Vec<&str> = sample_events().iter().map(|e| e.kind()).collect();
        from_samples.sort_unstable();
        from_samples.dedup();
        let mut listed = SimEvent::KINDS.to_vec();
        listed.sort_unstable();
        assert_eq!(
            from_samples, listed,
            "SimEvent::KINDS drifted from the actual kind() names"
        );
    }

    #[test]
    fn episode_accessor_maps_zero_to_none() {
        let e = SimEvent::CleanupInval {
            core: 0,
            line: 3,
            l1: true,
            l2: false,
            seq: 7,
            episode: 4,
        };
        assert_eq!(e.episode(), Some(4));
        let unattributed = SimEvent::CleanupInval {
            core: 0,
            line: 3,
            l1: true,
            l2: false,
            seq: 0,
            episode: 0,
        };
        assert_eq!(unattributed.episode(), None);
        assert_eq!(SimEvent::DramWriteback { line: 1 }.episode(), None);
    }
}
