//! A minimal recursive-descent JSON parser, the read-side counterpart of
//! [`crate::json::JsonWriter`]. It exists so `cs-bench --compare` can read
//! back `BENCH_*.json` files without pulling a serde dependency into the
//! workspace. It accepts strict JSON (no comments, no trailing commas) and
//! parses numbers as `f64` — ample for the benchmark schema, whose largest
//! integers (cycle counts) sit well inside f64's 2^53 exact range.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, key-ordered for deterministic iteration.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is not.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup: `v.get("key")` on an object, else `None`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by JsonWriter;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not just one byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-2.5e1").unwrap(), JsonValue::Num(-25.0));
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": "x"}], "c": 3}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_u64), Some(3));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn round_trips_writer_output() {
        let mut w = crate::json::JsonWriter::new();
        w.open_object(None)
            .string("mode", "cleanup\"spec")
            .int("cycles", 123456)
            .float("ipc", 1.5);
        w.open_array("xs");
        w.open_object(None).int("i", 0).close_object();
        w.close_array().close_object();
        let v = JsonValue::parse(&w.finish()).unwrap();
        assert_eq!(
            v.get("mode").and_then(JsonValue::as_str),
            Some("cleanup\"spec")
        );
        assert_eq!(v.get("cycles").and_then(JsonValue::as_u64), Some(123456));
        assert_eq!(v.get("ipc").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("xs").and_then(JsonValue::as_arr).unwrap().len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_passthrough_and_escapes() {
        let v = JsonValue::parse("\"héllo \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo A"));
    }
}
