//! Streaming JSONL (one JSON object per line) sink.

use crate::event::{SimEvent, EVENT_SCHEMA_VERSION};
use crate::json::event_to_json;
use crate::observer::EventSink;
use std::io::Write;

/// Writes each event as one JSON line to an arbitrary writer.
///
/// The first line is a header naming the schema version
/// (`{"schema": "cs-events-v2"}`); consumers like `cs-report` refuse
/// traces whose header does not match the vocabulary they were built
/// against. Every following line has the shape
/// `{"cycle": N, "layer": "...", "kind": "...", ...fields}` — grep-able,
/// `jq`-able, and stable across runs for a fixed seed.
///
/// The writer is flushed on [`EventSink::finish`] **and** on `Drop`, so a
/// run that panics mid-simulation still leaves every recorded line on
/// disk (a `BufWriter` dropped without flushing would otherwise truncate
/// the trace at the last buffer boundary).
pub struct JsonlSink<W: Write + Send> {
    /// `None` only after [`into_inner`](JsonlSink::into_inner) took the
    /// writer out from under the `Drop` impl.
    out: Option<W>,
    written: u64,
    io_errors: u64,
    warned: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer and emits the schema header line. Buffer it
    /// yourself (`BufWriter`) for file targets.
    pub fn new(out: W) -> Self {
        let mut sink = JsonlSink {
            out: Some(out),
            written: 0,
            io_errors: 0,
            warned: false,
        };
        if let Some(out) = sink.out.as_mut() {
            if let Err(e) = writeln!(out, "{{\"schema\": \"{EVENT_SCHEMA_VERSION}\"}}") {
                sink.note_io_error("header write", &e);
            }
        }
        sink
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Write or flush failures so far. I/O errors never abort the
    /// simulation, but they are no longer silent either: the first one
    /// warns on stderr, every one is counted here, and `cs-trace`
    /// publishes the total as the `sink_io_errors` host counter.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    fn note_io_error(&mut self, what: &str, e: &std::io::Error) {
        self.io_errors += 1;
        if !self.warned {
            self.warned = true;
            eprintln!(
                "warning: jsonl sink {what} failed ({e}); \
                 continuing with dropped lines (counted in io_errors)"
            );
        }
    }

    /// Consumes the sink, returning the flushed writer.
    pub fn into_inner(mut self) -> W {
        let mut out = self.out.take().expect("writer taken only here");
        let _ = out.flush();
        out
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&mut self, cycle: u64, event: &SimEvent) {
        // I/O errors intentionally do not abort the simulation; the run
        // keeps going with a short file, a one-time warning, and an
        // exact dropped-line count.
        if let Some(out) = self.out.as_mut() {
            match writeln!(out, "{}", event_to_json(cycle, event)) {
                Ok(()) => self.written += 1,
                Err(e) => self.note_io_error("write", &e),
            }
        }
    }

    fn finish(&mut self) {
        if let Some(out) = self.out.as_mut() {
            if let Err(e) = out.flush() {
                self.note_io_error("flush", &e);
            }
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheLevel, SimEvent};
    use std::io::BufWriter;

    #[test]
    fn one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(1, &SimEvent::DramWriteback { line: 2 });
        sink.record(
            5,
            &SimEvent::Fill {
                core: 0,
                line: 3,
                level: CacheLevel::L1,
                spec: false,
            },
        );
        sink.finish();
        assert_eq!(sink.written(), 2, "header line is not counted as an event");
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"schema\": \"cs-events-v2\"}");
        assert!(lines[1].contains("\"kind\": \"dram-writeback\""));
        assert!(lines[2].contains("\"cycle\": 5"));
    }

    #[test]
    fn io_errors_are_counted_not_silently_dropped() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(FailingWriter);
        sink.record(1, &SimEvent::DramWriteback { line: 2 });
        sink.record(2, &SimEvent::DramWriteback { line: 3 });
        sink.finish();
        assert_eq!(sink.written(), 0);
        assert_eq!(sink.io_errors(), 3, "header + 2 events all failed");
    }

    #[test]
    fn drop_flushes_buffered_writer() {
        let path = std::env::temp_dir().join(format!("cs-jsonl-drop-{}.jsonl", std::process::id()));
        {
            let f = std::fs::File::create(&path).unwrap();
            let mut sink = JsonlSink::new(BufWriter::new(f));
            sink.record(1, &SimEvent::DramWriteback { line: 2 });
            sink.record(2, &SimEvent::DramWriteback { line: 3 });
            // No finish(): the Drop impl must flush the BufWriter.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().count(),
            3,
            "drop lost buffered lines: {text:?}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
