//! Streaming JSONL (one JSON object per line) sink.

use crate::event::SimEvent;
use crate::json::event_to_json;
use crate::observer::EventSink;
use std::io::Write;

/// Writes each event as one JSON line to an arbitrary writer.
///
/// Lines have the shape
/// `{"cycle": N, "layer": "...", "kind": "...", ...fields}` — grep-able,
/// `jq`-able, and stable across runs for a fixed seed.
pub struct JsonlSink<W: Write + Send> {
    out: W,
    written: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. Buffer it yourself (`BufWriter`) for file targets.
    pub fn new(out: W) -> Self {
        JsonlSink { out, written: 0 }
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&mut self, cycle: u64, event: &SimEvent) {
        // I/O errors intentionally do not abort the simulation; they
        // surface as a short file, which downstream tooling detects.
        let _ = writeln!(self.out, "{}", event_to_json(cycle, event));
        self.written += 1;
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheLevel, SimEvent};

    #[test]
    fn one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(1, &SimEvent::DramWriteback { line: 2 });
        sink.record(
            5,
            &SimEvent::Fill {
                core: 0,
                line: 3,
                level: CacheLevel::L1,
                spec: false,
            },
        );
        sink.finish();
        assert_eq!(sink.written(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\": \"dram-writeback\""));
        assert!(lines[1].contains("\"cycle\": 5"));
    }
}
