//! Assembler integration tests: assemble→run end-to-end, and the
//! assemble→disassemble→assemble round-trip property.
//!
//! The always-on round-trip test drives random programs from the
//! workspace's deterministic `SplitMix64` (hermetic build); the original
//! shrinking-capable proptest version is kept behind the off-by-default
//! `proptest` feature (restore the dev-dependency to enable it).

use cleanupspec::prelude::*;
use cleanupspec_asm::{assemble, disassemble};
use cleanupspec_mem::rng::SplitMix64;

#[test]
fn assembled_program_runs_end_to_end() {
    let p = assemble(
        "sum",
        r"
        ; sum the words 0x1000..0x1028 into r3
        .word 0x1000 = 1 2 3 4 5
        .reg r1 = 0x1000
        .reg r2 = 5
    loop:
        ld r4, [r1]
        add r3, r3, r4
        add r1, r1, 8
        sub r2, r2, 1
        bne r2, loop
        halt
        ",
    )
    .unwrap();
    let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
        .program(p)
        .build();
    let reason = sim.run_to_completion();
    assert_eq!(reason, StopReason::AllHalted);
    assert_eq!(sim.system().core(0).reg(Reg(3)), 15);
}

#[test]
fn assembled_meltdown_gadget_is_defended() {
    // The Meltdown PoC, written in assembly.
    let src = r"
        .word 0xF0000 = 33          ; the secret
        .protect 0xF0000 0xF0040
        .fault_handler recover
        movi r1, 0xF0000
        ld r2, [r1]                 ; faults at commit
        mul r3, r2, 512
        add r3, r3, 0x200000
        ld r4, [r3]                 ; transient transmission
        halt
    recover:
        movi r5, 1
        halt
    ";
    for (mode, expect_leak) in [
        (SecurityMode::NonSecure, true),
        (SecurityMode::CleanupSpec, false),
    ] {
        let p = assemble("meltdown.s", src).unwrap();
        let mut sim = SimBuilder::new(mode).program(p).build();
        sim.run(RunLimits {
            max_cycles: 500_000,
            max_insts_per_core: u64::MAX,
            ..RunLimits::default()
        });
        sim.drain(1_000);
        assert_eq!(sim.system().core(0).reg(Reg(5)), 1, "handler ran ({mode})");
        let lat = sim.probe_load(CoreId(0), Addr::new(0x200000 + 33 * 512));
        assert_eq!(
            lat <= 2,
            expect_leak,
            "mode {mode}: secret-entry reload latency {lat}"
        );
    }
}

/// Draws one random source line; mirrors the original proptest strategy
/// (seven equally-weighted forms). Text only — semantics are covered by
/// `tests/reference_model.rs` at the repo root.
fn gen_line(rng: &mut SplitMix64) -> String {
    let reg = |rng: &mut SplitMix64| 1 + rng.below(30);
    match rng.below(7) {
        0 => format!("movi r{}, {:#x}", reg(rng), rng.next_u64() as u32),
        1 => {
            let ops = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr"];
            format!(
                "{} r{}, r{}, r{}",
                ops[rng.below(8) as usize],
                reg(rng),
                reg(rng),
                reg(rng)
            )
        }
        2 => format!(
            "ld r{}, [r{} + {}]",
            reg(rng),
            reg(rng),
            rng.below(128) as i64 - 64
        ),
        3 => format!("st r{}, [r{} + {}]", reg(rng), reg(rng), rng.below(64)),
        4 => format!("clflush [r{} + {}]", reg(rng), rng.below(64)),
        5 => "nop".to_string(),
        _ => "fence".to_string(),
    }
}

/// assemble(disassemble(assemble(src))) produces identical instructions
/// and initial state, over 64 random programs.
#[test]
fn roundtrip_preserves_program() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xA530_D15A_5301 ^ case);
        let n_lines = 1 + rng.below(24) as usize;
        let lines: Vec<String> = (0..n_lines).map(|_| gen_line(&mut rng)).collect();
        let n_inits = rng.below(4);
        let branch_at = rng.below(25) as usize;
        let mut src = String::new();
        for _ in 0..n_inits {
            src.push_str(&format!(
                ".reg r{} = {:#x}\n",
                1 + rng.below(30),
                rng.next_u64()
            ));
        }
        src.push_str("start:\n");
        for (i, l) in lines.iter().enumerate() {
            if i == branch_at.min(lines.len() - 1) {
                src.push_str("    bne r1, start\n");
            }
            src.push_str("    ");
            src.push_str(l);
            src.push('\n');
        }
        src.push_str("    halt\n");
        let p1 = assemble("p1", &src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble("p2", &text).unwrap_or_else(|e| {
            panic!("case {case}: round-trip re-assembly failed: {e}\n--- disassembly ---\n{text}")
        });
        assert_eq!(p1.insts(), p2.insts(), "case {case}");
        assert_eq!(p1.init_regs, p2.init_regs, "case {case}");
        assert_eq!(p1.init_mem, p2.init_mem, "case {case}");
        assert_eq!(p1.entry, p2.entry, "case {case}");
    }
}

// The original shrinking property test. Enabling this feature requires
// restoring the `proptest` dev-dependency (removed so the workspace
// builds with no registry access).
#[cfg(feature = "proptest")]
mod property {
    use super::*;
    use proptest::prelude::*;

    fn arb_line() -> impl Strategy<Value = String> {
        let reg = 1u8..31;
        prop_oneof![
            (reg.clone(), any::<u32>()).prop_map(|(d, v)| format!("movi r{d}, {:#x}", v)),
            (reg.clone(), reg.clone(), reg.clone(), 0usize..8).prop_map(|(d, s, t, op)| {
                let ops = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr"];
                format!("{} r{d}, r{s}, r{t}", ops[op])
            }),
            (reg.clone(), reg.clone(), -64i64..64)
                .prop_map(|(d, b, o)| format!("ld r{d}, [r{b} + {o}]")),
            (reg.clone(), reg.clone(), 0i64..64)
                .prop_map(|(s, b, o)| format!("st r{s}, [r{b} + {o}]")),
            (reg.clone(), 0i64..64).prop_map(|(b, o)| format!("clflush [r{b} + {o}]")),
            Just("nop".to_string()),
            Just("fence".to_string()),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_roundtrip_preserves_program(
            lines in proptest::collection::vec(arb_line(), 1..25),
            reg_inits in proptest::collection::vec((1u8..31, any::<u64>()), 0..4),
            branch_at in 0usize..25,
        ) {
            let mut src = String::new();
            for (r, v) in &reg_inits {
                src.push_str(&format!(".reg r{r} = {v:#x}\n"));
            }
            src.push_str("start:\n");
            for (i, l) in lines.iter().enumerate() {
                if i == branch_at.min(lines.len() - 1) {
                    src.push_str("    bne r1, start\n");
                }
                src.push_str("    ");
                src.push_str(l);
                src.push('\n');
            }
            src.push_str("    halt\n");
            let p1 = assemble("p1", &src).unwrap();
            let text = disassemble(&p1);
            let p2 = assemble("p2", &text).unwrap_or_else(|e| {
                panic!("round-trip re-assembly failed: {e}\n--- disassembly ---\n{text}")
            });
            prop_assert_eq!(p1.insts(), p2.insts());
            prop_assert_eq!(p1.init_regs, p2.init_regs);
            prop_assert_eq!(p1.init_mem, p2.init_mem);
            prop_assert_eq!(p1.entry, p2.entry);
        }
    }
}
