//! Line-oriented lexer for the micro-ISA assembly language.
//!
//! The grammar is deliberately simple: one statement per line, `;` or `#`
//! start a comment, labels end with `:`, directives start with `.`, and
//! operands are separated by commas with optional `[reg + offset]` memory
//! forms.

use std::fmt;

/// A lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier: mnemonic, label reference, or directive payload.
    Ident(String),
    /// A label definition (`name:`).
    LabelDef(String),
    /// A directive (`.name`).
    Directive(String),
    /// Register `rN`.
    Reg(u8),
    /// Integer literal (decimal, hex `0x…`, or negative).
    Int(i128),
    /// `,`
    Comma,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Equals,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::LabelDef(s) => write!(f, "{s}:"),
            Token::Directive(s) => write!(f, ".{s}"),
            Token::Reg(n) => write!(f, "r{n}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Comma => f.write_str(","),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Equals => f.write_str("="),
        }
    }
}

/// A lex error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes one source line into tokens (empty for blank/comment lines).
pub fn lex_line(line_no: usize, src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let code = match src.find([';', '#']) {
        Some(i) => &src[..i],
        None => src,
    };
    let mut chars = code.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                out.push(Token::Comma);
                chars.next();
            }
            '[' => {
                out.push(Token::LBracket);
                chars.next();
            }
            ']' => {
                out.push(Token::RBracket);
                chars.next();
            }
            '+' => {
                out.push(Token::Plus);
                chars.next();
            }
            '=' => {
                out.push(Token::Equals);
                chars.next();
            }
            '-' => {
                chars.next();
                // negative literal
                let start = chars.peek().map(|&(j, _)| j).unwrap_or(code.len());
                let num = take_while(code, start, &mut chars, |c| {
                    c.is_ascii_alphanumeric() || c == '_'
                });
                if num.is_empty() {
                    out.push(Token::Minus);
                } else {
                    let v = parse_int(&num).ok_or_else(|| LexError {
                        line: line_no,
                        message: format!("bad number '-{num}'"),
                    })?;
                    out.push(Token::Int(-v));
                }
            }
            '.' => {
                chars.next();
                let start = chars.peek().map(|&(j, _)| j).unwrap_or(code.len());
                let name = take_while(code, start, &mut chars, is_ident_char);
                if name.is_empty() {
                    return Err(LexError {
                        line: line_no,
                        message: "empty directive".into(),
                    });
                }
                out.push(Token::Directive(name));
            }
            c if c.is_ascii_digit() => {
                let num = take_while(code, i, &mut chars, |c| {
                    c.is_ascii_alphanumeric() || c == '_'
                });
                let v = parse_int(&num).ok_or_else(|| LexError {
                    line: line_no,
                    message: format!("bad number '{num}'"),
                })?;
                out.push(Token::Int(v));
            }
            c if is_ident_char(c) => {
                let word = take_while(code, i, &mut chars, is_ident_char);
                // Label definition?
                if let Some(&(_, ':')) = chars.peek() {
                    chars.next();
                    out.push(Token::LabelDef(word));
                } else if let Some(n) = parse_reg(&word) {
                    out.push(Token::Reg(n));
                } else {
                    out.push(Token::Ident(word));
                }
            }
            other => {
                return Err(LexError {
                    line: line_no,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn take_while(
    src: &str,
    start: usize,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    pred: impl Fn(char) -> bool,
) -> String {
    let mut end = start;
    while let Some(&(j, c)) = chars.peek() {
        if pred(c) {
            end = j + c.len_utf8();
            chars.next();
        } else {
            break;
        }
    }
    src[start..end].to_string()
}

fn parse_int(s: &str) -> Option<i128> {
    let s = s.replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i128::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_reg(word: &str) -> Option<u8> {
    let rest = word.strip_prefix('r')?;
    let n: u8 = rest.parse().ok()?;
    (n < 32).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_instruction_line() {
        let t = lex_line(1, "  add r2, r1, 0x10  ; comment").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("add".into()),
                Token::Reg(2),
                Token::Comma,
                Token::Reg(1),
                Token::Comma,
                Token::Int(0x10),
            ]
        );
    }

    #[test]
    fn lexes_memory_operand() {
        let t = lex_line(1, "ld r2, [r1 + 8]").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("ld".into()),
                Token::Reg(2),
                Token::Comma,
                Token::LBracket,
                Token::Reg(1),
                Token::Plus,
                Token::Int(8),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_labels_and_directives() {
        assert_eq!(
            lex_line(1, "loop:").unwrap(),
            vec![Token::LabelDef("loop".into())]
        );
        assert_eq!(
            lex_line(1, ".reg r1 = 5").unwrap(),
            vec![
                Token::Directive("reg".into()),
                Token::Reg(1),
                Token::Equals,
                Token::Int(5),
            ]
        );
    }

    #[test]
    fn negative_and_hex_numbers() {
        assert_eq!(lex_line(1, "-42").unwrap(), vec![Token::Int(-42)]);
        assert_eq!(lex_line(1, "0xFF").unwrap(), vec![Token::Int(255)]);
        assert_eq!(lex_line(1, "1_000").unwrap(), vec![Token::Int(1000)]);
    }

    #[test]
    fn comments_and_blank_lines_are_empty() {
        assert!(lex_line(1, "").unwrap().is_empty());
        assert!(lex_line(1, "   # only a comment").unwrap().is_empty());
        assert!(lex_line(1, " ; also").unwrap().is_empty());
    }

    #[test]
    fn register_bounds() {
        assert_eq!(lex_line(1, "r31").unwrap(), vec![Token::Reg(31)]);
        // r32 is a plain identifier, not a register.
        assert_eq!(
            lex_line(1, "r32").unwrap(),
            vec![Token::Ident("r32".into())]
        );
    }

    #[test]
    fn bad_number_errors_with_line() {
        let e = lex_line(7, "0xZZ").unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("bad number"));
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex_line(1, "add @r1").is_err());
    }
}
