//! # cleanupspec-asm
//!
//! Assembler, disassembler, and CLI runner for the micro-ISA of the
//! CleanupSpec reproduction. Lets attack kernels and test programs be
//! written as plain `.s` files and executed under any [`SecurityMode`]:
//!
//! ```
//! use cleanupspec_asm::assemble;
//! use cleanupspec::prelude::*;
//!
//! let program = assemble("demo", r"
//!     .reg r1 = 0x1000
//!     ld r2, [r1]
//!     halt
//! ").expect("valid assembly");
//! let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
//!     .program(program)
//!     .build();
//! sim.run_to_completion();
//! assert_eq!(sim.report().cores[0].committed_loads, 1);
//! ```
//!
//! [`SecurityMode`]: cleanupspec::modes::SecurityMode

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod disasm;
pub mod lexer;
pub mod parser;

pub use disasm::disassemble;
pub use parser::{assemble, AsmError};
