//! `casm` — assemble a micro-ISA `.s` file and run it on the simulator.
//!
//! ```sh
//! casm prog.s                       # run under the non-secure baseline
//! casm prog.s --mode cleanupspec    # run under CleanupSpec
//! casm prog.s --disasm              # print the round-tripped assembly
//! casm prog.s --max-insts 100000
//! ```

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimBuilder;
use cleanupspec_asm::{assemble, disassemble};
use cleanupspec_core::isa::Reg;
use cleanupspec_core::system::RunLimits;
use cleanupspec_mem::types::CoreId;
use std::process::ExitCode;

fn mode_by_name(name: &str) -> Option<SecurityMode> {
    SecurityMode::ALL.into_iter().find(|m| m.name() == name)
}

fn usage() -> ExitCode {
    eprintln!("usage: casm <file.s> [--mode <name>] [--disasm] [--max-insts N]");
    eprintln!(
        "modes: {}",
        SecurityMode::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut mode = SecurityMode::NonSecure;
    let mut disasm = false;
    let mut max_insts = u64::MAX;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => match it.next().and_then(|m| mode_by_name(m)) {
                Some(m) => mode = m,
                None => return usage(),
            },
            "--disasm" => disasm = true,
            "--max-insts" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => max_insts = n,
                None => return usage(),
            },
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            _ => return usage(),
        }
    }
    let Some(file) = file else {
        return usage();
    };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("casm: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match assemble(&file, &src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("casm: {file}:{e}");
            return ExitCode::FAILURE;
        }
    };
    if disasm {
        print!("{}", disassemble(&program));
        return ExitCode::SUCCESS;
    }
    let mut sim = SimBuilder::new(mode).program(program).build();
    let reason = sim.run(RunLimits {
        max_cycles: 100_000_000,
        max_insts_per_core: max_insts,
        ..RunLimits::default()
    });
    let r = sim.report();
    let s = &r.cores[0];
    println!("mode         : {}", mode.name());
    println!("stop         : {reason:?}");
    println!("cycles       : {}", r.cycles);
    println!("instructions : {}", s.committed_insts);
    println!("IPC          : {:.3}", r.ipc());
    println!(
        "loads/stores : {} / {}",
        s.committed_loads, s.committed_stores
    );
    println!(
        "branches     : {} ({} mispredicted)",
        s.committed_branches, s.mispredicts
    );
    println!("squashes     : {} ({} faults)", s.squashes, s.faults);
    println!("L1 miss rate : {:.2}%", r.mem.l1_miss_rate() * 100.0);
    println!(
        "cleanup      : {} invals, {} restores, {} dropped fills",
        r.mem.cleanup_invals, r.mem.cleanup_restores, r.mem.dropped_fills
    );
    println!("registers    :");
    for n in 1..8 {
        println!("  r{n} = {:#x}", sim.system().core(0).reg(Reg(n)));
    }
    let _ = CoreId(0);
    ExitCode::SUCCESS
}
