//! Two-pass assembler: tokens → [`Program`].
//!
//! Pass 1 collects label addresses (instruction indices); pass 2 emits
//! instructions and resolves label references. Directives set initial
//! registers/memory, protected ranges, and the fault handler.
//!
//! # Instruction set
//!
//! ```text
//! movi rD, imm              ; rD = imm
//! add|sub|mul|and|or|xor|shl|shr rD, rS, (rT|imm)
//! ld rD, [rB + off]         ; load (offset optional)
//! st rS, [rB + off]         ; store
//! beq rS, label             ; branch if rS == 0
//! bne rS, label             ; branch if rS != 0
//! blt rS, label             ; branch if rS < 0 (signed)
//! jmp label | call label | ret
//! clflush [rB + off]
//! fence | nop | halt
//! ```
//!
//! # Directives
//!
//! ```text
//! .reg rN = value           ; initial register value
//! .word addr = v0 v1 ...    ; initial memory words (8 bytes apart)
//! .protect start end        ; protected range [start, end)
//! .fault_handler label      ; exception handler
//! .entry label              ; program entry point
//! ```

use crate::lexer::{lex_line, LexError, Token};
use cleanupspec_core::isa::{AluOp, BranchCond, Inst, Operand, Pc, Program, Reg};
use cleanupspec_mem::types::Addr;
use std::collections::HashMap;
use std::fmt;

/// Assembly error with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

impl From<LexError> for AsmError {
    fn from(e: LexError) -> Self {
        AsmError {
            line: e.line,
            message: e.message,
        }
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// A parsed statement before label resolution.
#[derive(Clone, Debug)]
enum Stmt {
    Inst(Inst),
    /// Branch-like instruction with an unresolved label target.
    BranchTo {
        template: Inst,
        label: String,
    },
}

/// Assembles source text into a [`Program`].
///
/// # Errors
/// Returns an [`AsmError`] with the offending line for syntax errors,
/// unknown mnemonics/labels, duplicate labels, or malformed directives.
pub fn assemble(name: &str, src: &str) -> Result<Program, AsmError> {
    let mut labels: HashMap<String, Pc> = HashMap::new();
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    let mut init_regs = Vec::new();
    let mut init_mem = Vec::new();
    let mut protected = Vec::new();
    let mut fault_label: Option<(usize, String)> = None;
    let mut entry_label: Option<(usize, String)> = None;

    // Pass 1: lex, collect labels, parse statements and directives.
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let mut toks = lex_line(line, raw)?;
        // A line may start with any number of label definitions.
        while let Some(Token::LabelDef(l)) = toks.first().cloned() {
            if labels.insert(l.clone(), stmts.len()).is_some() {
                return err(line, format!("duplicate label '{l}'"));
            }
            toks.remove(0);
        }
        if toks.is_empty() {
            continue;
        }
        match &toks[0] {
            Token::Directive(d) => match d.as_str() {
                "reg" => {
                    let (r, v) = parse_reg_directive(line, &toks[1..])?;
                    init_regs.push((r, v));
                }
                "word" => {
                    let (addr, values) = parse_word_directive(line, &toks[1..])?;
                    for (k, v) in values.into_iter().enumerate() {
                        init_mem.push((Addr::new(addr + k as u64 * 8), v));
                    }
                }
                "protect" => {
                    let (s, e) = parse_two_ints(line, &toks[1..])?;
                    protected.push((Addr::new(s), Addr::new(e)));
                }
                "fault_handler" => {
                    let l = parse_one_ident(line, &toks[1..])?;
                    fault_label = Some((line, l));
                }
                "entry" => {
                    let l = parse_one_ident(line, &toks[1..])?;
                    entry_label = Some((line, l));
                }
                other => return err(line, format!("unknown directive '.{other}'")),
            },
            Token::Ident(_) => {
                let stmt = parse_inst(line, &toks)?;
                stmts.push((line, stmt));
            }
            t => return err(line, format!("unexpected token '{t}'")),
        }
    }

    // Pass 2: resolve labels.
    let mut insts = Vec::with_capacity(stmts.len());
    for (line, stmt) in stmts {
        match stmt {
            Stmt::Inst(i) => insts.push(i),
            Stmt::BranchTo { template, label } => {
                let target = *labels.get(&label).ok_or_else(|| AsmError {
                    line,
                    message: format!("unknown label '{label}'"),
                })?;
                insts.push(match template {
                    Inst::Branch { src, cond, .. } => Inst::Branch { src, cond, target },
                    Inst::Jump { .. } => Inst::Jump { target },
                    Inst::Call { .. } => Inst::Call { target },
                    other => other,
                });
            }
        }
    }

    let mut p = Program::new(name, insts);
    p.init_regs = init_regs;
    p.init_mem = init_mem;
    p.protected_ranges = protected;
    if let Some((line, l)) = fault_label {
        p.fault_handler = Some(*labels.get(&l).ok_or_else(|| AsmError {
            line,
            message: format!("unknown fault handler label '{l}'"),
        })?);
    }
    if let Some((line, l)) = entry_label {
        p.entry = *labels.get(&l).ok_or_else(|| AsmError {
            line,
            message: format!("unknown entry label '{l}'"),
        })?;
    }
    Ok(p)
}

fn parse_inst(line: usize, toks: &[Token]) -> Result<Stmt, AsmError> {
    let Token::Ident(m) = &toks[0] else {
        return err(line, "expected mnemonic");
    };
    let rest = &toks[1..];
    let alu = |op: AluOp| -> Result<Stmt, AsmError> {
        let (d, s, o) = parse_dss(line, rest)?;
        Ok(Stmt::Inst(Inst::Alu {
            dst: d,
            src1: Operand::Reg(s),
            src2: o,
            op,
            latency: if op == AluOp::Mul { 3 } else { 1 },
        }))
    };
    match m.as_str() {
        "nop" => Ok(Stmt::Inst(Inst::Nop)),
        "halt" => Ok(Stmt::Inst(Inst::Halt)),
        "fence" => Ok(Stmt::Inst(Inst::Fence)),
        "ret" => Ok(Stmt::Inst(Inst::Ret)),
        "movi" => {
            let (d, v) = parse_reg_imm(line, rest)?;
            Ok(Stmt::Inst(Inst::Alu {
                dst: d,
                src1: Operand::Imm(v),
                src2: Operand::Imm(0),
                op: AluOp::Add,
                latency: 1,
            }))
        }
        "add" => alu(AluOp::Add),
        "sub" => alu(AluOp::Sub),
        "mul" => alu(AluOp::Mul),
        "and" => alu(AluOp::And),
        "or" => alu(AluOp::Or),
        "xor" => alu(AluOp::Xor),
        "shl" => alu(AluOp::Shl),
        "shr" => alu(AluOp::Shr),
        "ld" => {
            let (d, b, off) = parse_reg_mem(line, rest)?;
            Ok(Stmt::Inst(Inst::Load {
                dst: d,
                base: b,
                offset: off,
            }))
        }
        "st" => {
            let (s, b, off) = parse_reg_mem(line, rest)?;
            Ok(Stmt::Inst(Inst::Store {
                src: s,
                base: b,
                offset: off,
            }))
        }
        "clflush" => {
            let (b, off) = parse_mem(line, rest)?;
            Ok(Stmt::Inst(Inst::Clflush {
                base: b,
                offset: off,
            }))
        }
        "beq" | "bne" | "blt" => {
            let (r, label) = parse_reg_label(line, rest)?;
            let cond = match m.as_str() {
                "beq" => BranchCond::Zero,
                "bne" => BranchCond::NotZero,
                _ => BranchCond::Negative,
            };
            Ok(Stmt::BranchTo {
                template: Inst::Branch {
                    src: r,
                    cond,
                    target: 0,
                },
                label,
            })
        }
        "jmp" => {
            let label = parse_one_ident(line, rest)?;
            Ok(Stmt::BranchTo {
                template: Inst::Jump { target: 0 },
                label,
            })
        }
        "call" => {
            let label = parse_one_ident(line, rest)?;
            Ok(Stmt::BranchTo {
                template: Inst::Call { target: 0 },
                label,
            })
        }
        other => err(line, format!("unknown mnemonic '{other}'")),
    }
}

// ---------------------------------------------------------------------
// Operand-shape helpers
// ---------------------------------------------------------------------

fn int_as_i64(line: usize, v: i128) -> Result<i64, AsmError> {
    // Allow the full u64 range written as a positive literal.
    if v >= 0 && v <= u64::MAX as i128 {
        Ok(v as u64 as i64)
    } else {
        i64::try_from(v).map_err(|_| AsmError {
            line,
            message: format!("immediate {v} out of range"),
        })
    }
}

fn parse_reg_imm(line: usize, t: &[Token]) -> Result<(Reg, i64), AsmError> {
    match t {
        [Token::Reg(d), Token::Comma, Token::Int(v)] => Ok((Reg(*d), int_as_i64(line, *v)?)),
        _ => err(line, "expected 'rD, imm'"),
    }
}

fn parse_dss(line: usize, t: &[Token]) -> Result<(Reg, Reg, Operand), AsmError> {
    match t {
        [Token::Reg(d), Token::Comma, Token::Reg(s), Token::Comma, Token::Reg(x)] => {
            Ok((Reg(*d), Reg(*s), Operand::Reg(Reg(*x))))
        }
        [Token::Reg(d), Token::Comma, Token::Reg(s), Token::Comma, Token::Int(v)] => {
            Ok((Reg(*d), Reg(*s), Operand::Imm(int_as_i64(line, *v)?)))
        }
        _ => err(line, "expected 'rD, rS, (rT|imm)'"),
    }
}

fn parse_mem(line: usize, t: &[Token]) -> Result<(Reg, i64), AsmError> {
    match t {
        [Token::LBracket, Token::Reg(b), Token::RBracket] => Ok((Reg(*b), 0)),
        [Token::LBracket, Token::Reg(b), Token::Plus, Token::Int(off), Token::RBracket] => {
            Ok((Reg(*b), int_as_i64(line, *off)?))
        }
        [Token::LBracket, Token::Reg(b), Token::Int(off), Token::RBracket] if *off < 0 => {
            Ok((Reg(*b), *off as i64))
        }
        _ => err(line, "expected '[rB]' or '[rB + off]'"),
    }
}

fn parse_reg_mem(line: usize, t: &[Token]) -> Result<(Reg, Reg, i64), AsmError> {
    match t {
        [Token::Reg(r), Token::Comma, rest @ ..] => {
            let (b, off) = parse_mem(line, rest)?;
            Ok((Reg(*r), b, off))
        }
        _ => err(line, "expected 'rX, [rB + off]'"),
    }
}

fn parse_reg_label(line: usize, t: &[Token]) -> Result<(Reg, String), AsmError> {
    match t {
        [Token::Reg(r), Token::Comma, Token::Ident(l)] => Ok((Reg(*r), l.clone())),
        _ => err(line, "expected 'rS, label'"),
    }
}

fn parse_one_ident(line: usize, t: &[Token]) -> Result<String, AsmError> {
    match t {
        [Token::Ident(l)] => Ok(l.clone()),
        _ => err(line, "expected a label name"),
    }
}

fn parse_reg_directive(line: usize, t: &[Token]) -> Result<(Reg, u64), AsmError> {
    match t {
        [Token::Reg(r), Token::Equals, Token::Int(v)] => {
            Ok((Reg(*r), int_as_i64(line, *v)? as u64))
        }
        _ => err(line, "expected '.reg rN = value'"),
    }
}

fn parse_word_directive(line: usize, t: &[Token]) -> Result<(u64, Vec<u64>), AsmError> {
    match t {
        [Token::Int(a), Token::Equals, rest @ ..] if !rest.is_empty() => {
            let addr = int_as_i64(line, *a)? as u64;
            let mut vs = Vec::new();
            for tok in rest {
                match tok {
                    Token::Int(v) => vs.push(int_as_i64(line, *v)? as u64),
                    other => return err(line, format!("expected value, got '{other}'")),
                }
            }
            Ok((addr, vs))
        }
        _ => err(line, "expected '.word addr = v0 [v1 ...]'"),
    }
}

fn parse_two_ints(line: usize, t: &[Token]) -> Result<(u64, u64), AsmError> {
    match t {
        [Token::Int(a), Token::Int(b)] => {
            Ok((int_as_i64(line, *a)? as u64, int_as_i64(line, *b)? as u64))
        }
        _ => err(line, "expected two addresses"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_counting_loop() {
        let p = assemble(
            "loop",
            r"
            .reg r1 = 5
        top:
            sub r1, r1, 1
            bne r1, top
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.fetch(1),
            Inst::Branch {
                src: Reg(1),
                cond: BranchCond::NotZero,
                target: 0
            }
        );
        assert_eq!(p.init_regs, vec![(Reg(1), 5)]);
    }

    #[test]
    fn forward_labels_resolve() {
        let p = assemble(
            "fwd",
            r"
            beq r2, done
            movi r3, 1
        done:
            halt
            ",
        )
        .unwrap();
        assert_eq!(
            p.fetch(0),
            Inst::Branch {
                src: Reg(2),
                cond: BranchCond::Zero,
                target: 2
            }
        );
    }

    #[test]
    fn memory_forms_and_directives() {
        let p = assemble(
            "mem",
            r"
            .word 0x1000 = 7 8 9
            .protect 0xF000 0xF040
            movi r1, 0x1000
            ld r2, [r1 + 8]
            st r2, [r1]
            clflush [r1 + 16]
            fence
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.init_mem.len(), 3);
        assert_eq!(p.init_mem[1], (Addr::new(0x1008), 8));
        assert_eq!(
            p.protected_ranges,
            vec![(Addr::new(0xF000), Addr::new(0xF040))]
        );
        assert_eq!(
            p.fetch(1),
            Inst::Load {
                dst: Reg(2),
                base: Reg(1),
                offset: 8
            }
        );
        assert!(p.is_protected(Addr::new(0xF020)));
    }

    #[test]
    fn fault_handler_and_entry() {
        let p = assemble(
            "fh",
            r"
            .fault_handler handler
            .entry main
        handler:
            halt
        main:
            movi r1, 1
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.fault_handler, Some(0));
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn call_ret_assembles() {
        let p = assemble(
            "cr",
            r"
            call fun
            halt
        fun:
            movi r1, 9
            ret
            ",
        )
        .unwrap();
        assert_eq!(p.fetch(0), Inst::Call { target: 2 });
        assert_eq!(p.fetch(3), Inst::Ret);
    }

    #[test]
    fn error_cases_carry_line_numbers() {
        let e = assemble("x", "movi r1").unwrap_err();
        assert_eq!(e.line, 1);
        let e = assemble("x", "\nfrobnicate r1, r2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown mnemonic"));
        let e = assemble("x", "bne r1, nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("unknown label"));
        let e = assemble("x", "a:\nhalt\na:\nhalt").unwrap_err();
        assert!(e.message.contains("duplicate label"));
        let e = assemble("x", ".bogus 1 2").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn negative_offsets() {
        let p = assemble("neg", "movi r1, 0x100\nld r2, [r1 + -8]\nhalt").unwrap();
        assert_eq!(
            p.fetch(1),
            Inst::Load {
                dst: Reg(2),
                base: Reg(1),
                offset: -8
            }
        );
    }

    #[test]
    fn large_u64_immediates() {
        let p = assemble("big", "movi r1, 0xFFFFFFFFFFFFFFFF\nhalt").unwrap();
        match p.fetch(0) {
            Inst::Alu {
                src1: Operand::Imm(v),
                ..
            } => assert_eq!(v as u64, u64::MAX),
            other => panic!("{other:?}"),
        }
    }
}
