//! Disassembler: [`Program`] → assembly text that [`crate::assemble`]
//! accepts back (round-trip property-tested).

use cleanupspec_core::isa::{AluOp, BranchCond, Inst, Operand, Program};
use std::collections::BTreeSet;
use std::fmt::Write;

fn op_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
    }
}

/// Renders a program as assembly source.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    // Directives.
    for (r, v) in &p.init_regs {
        let _ = writeln!(out, ".reg {r} = {v:#x}");
    }
    for (a, v) in &p.init_mem {
        let _ = writeln!(out, ".word {:#x} = {v:#x}", a.raw());
    }
    for (s, e) in &p.protected_ranges {
        let _ = writeln!(out, ".protect {:#x} {:#x}", s.raw(), e.raw());
    }
    if let Some(h) = p.fault_handler {
        let _ = writeln!(out, ".fault_handler L{h}");
    }
    if p.entry != 0 {
        let _ = writeln!(out, ".entry L{}", p.entry);
    }
    // Collect every branch target (plus fault handler / entry) as a label.
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for inst in p.insts() {
        match inst {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target } => {
                targets.insert(*target);
            }
            _ => {}
        }
    }
    if let Some(h) = p.fault_handler {
        targets.insert(h);
    }
    targets.insert(p.entry);

    let imm = |v: i64| -> String {
        if v < 0 {
            format!("{v}")
        } else {
            format!("{:#x}", v as u64)
        }
    };
    for (pc, inst) in p.insts().iter().enumerate() {
        if targets.contains(&pc) {
            let _ = writeln!(out, "L{pc}:");
        }
        let line = match *inst {
            Inst::Nop => "nop".to_string(),
            Inst::Halt => "halt".to_string(),
            Inst::Fence => "fence".to_string(),
            Inst::Ret => "ret".to_string(),
            Inst::Alu {
                dst,
                src1: Operand::Imm(v),
                src2: Operand::Imm(0),
                op: AluOp::Add,
                ..
            } => format!("movi {dst}, {}", imm(v)),
            Inst::Alu {
                dst,
                src1,
                src2,
                op,
                ..
            } => {
                let s1 = match src1 {
                    Operand::Reg(r) => format!("{r}"),
                    // Normalize imm-first ALU forms through a movi-less
                    // representation: synthesize via register 0 is not
                    // possible textually, so keep reg-first only. The
                    // builder only emits reg-first forms except movi.
                    Operand::Imm(v) => format!("r0 ; imm1 {v} unsupported"),
                };
                let s2 = match src2 {
                    Operand::Reg(r) => format!("{r}"),
                    Operand::Imm(v) => imm(v),
                };
                format!("{} {dst}, {s1}, {s2}", op_name(op))
            }
            Inst::Load { dst, base, offset } => {
                format!("ld {dst}, [{base} + {offset}]")
            }
            Inst::Store { src, base, offset } => {
                format!("st {src}, [{base} + {offset}]")
            }
            Inst::Branch { src, cond, target } => {
                let m = match cond {
                    BranchCond::Zero => "beq",
                    BranchCond::NotZero => "bne",
                    BranchCond::Negative => "blt",
                };
                format!("{m} {src}, L{target}")
            }
            Inst::Jump { target } => format!("jmp L{target}"),
            Inst::Call { target } => format!("call L{target}"),
            Inst::Clflush { base, offset } => format!("clflush [{base} + {offset}]"),
        };
        let _ = writeln!(out, "    {line}");
    }
    // A label may point one past the last instruction.
    if targets.contains(&p.len()) {
        let _ = writeln!(out, "L{}:", p.len());
        let _ = writeln!(out, "    halt");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::assemble;

    #[test]
    fn roundtrip_simple_program() {
        let src = r"
            .reg r1 = 0x5
        top:
            sub r1, r1, 1
            ld r2, [r1 + 8]
            bne r1, top
            halt
        ";
        let p1 = assemble("t", src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble("t2", &text).unwrap();
        assert_eq!(p1.insts(), p2.insts());
        assert_eq!(p1.init_regs, p2.init_regs);
    }

    #[test]
    fn disassembly_mentions_labels() {
        let p = assemble("t", "jmp end\nnop\nend:\nhalt").unwrap();
        let text = disassemble(&p);
        assert!(text.contains("jmp L2"));
        assert!(text.contains("L2:"));
    }
}
