//! # cleanupspec
//!
//! A from-scratch reproduction of **CleanupSpec: An "Undo" Approach to Safe
//! Speculation** (Gururaj Saileshwar and Moinuddin K. Qureshi, MICRO 2019).
//!
//! CleanupSpec defends against transient-execution attacks that leak
//! secrets through the data caches. Where InvisiSpec makes speculative
//! loads invisible and *redoes* them at commit, CleanupSpec lets them
//! modify the caches normally and *undoes* the changes when a
//! mis-speculation squashes them:
//!
//! * transiently installed lines are invalidated from the levels they
//!   filled (tracked by Side-Effect Entries in the LQ and MSHRs);
//! * the lines they evicted from the L1 are restored from the L2;
//! * the L2 is CEASER-randomized so its evictions are information-free;
//! * the L1 uses random replacement so hits are information-free;
//! * coherence downgrades (remote M/E -> S) are delayed until the load is
//!   unsquashable (GetS-Safe);
//! * during the window of speculation, other cores' accesses to a
//!   transient line are serviced as dummy misses.
//!
//! The [`modes::SecurityMode`] enum selects between CleanupSpec, the
//! non-secure baseline, InvisiSpec (both variants), a naive
//! invalidate-only strawman, and a delay-based baseline; [`sim::SimBuilder`]
//! assembles a full system (out-of-order cores + MESI hierarchy) around a
//! mode.
//!
//! ```
//! use cleanupspec::prelude::*;
//!
//! let mut b = ProgramBuilder::new("quickstart");
//! b.movi(Reg(1), 0x1_0000);
//! b.load(Reg(2), Reg(1), 0);
//! b.halt();
//! let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
//!     .program(b.build())
//!     .build();
//! sim.run_to_completion();
//! println!("IPC = {:.2}", sim.report().ipc());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod modes;
pub mod schemes;
pub mod sefe;
pub mod sim;
pub mod snap;

pub use modes::SecurityMode;
pub use schemes::{
    CleanupSpec, CleanupStats, CleanupTiming, DelayOnMiss, DelaySpeculativeLoads, InvisiSpec,
    InvisiSpecVariant, NaiveInvalidate, NonSecure,
};
pub use sefe::{SefeLayout, SefeStorage};
pub use sim::{SimBuilder, SimReport, Simulator, Snapshot};

/// Convenient glob-import surface for examples and harnesses.
pub mod prelude {
    pub use crate::modes::SecurityMode;
    pub use crate::sim::{SimBuilder, SimReport, Simulator, Snapshot};
    pub use cleanupspec_core::isa::{
        AluOp, BranchCond, Inst, Operand, Pc, Program, ProgramBuilder, Reg,
    };
    pub use cleanupspec_core::system::{RunLimits, StopReason};
    pub use cleanupspec_mem::types::{Addr, CoreId, Cycle, LineAddr};
}
