//! Storage-overhead accounting for the Side-Effect Entries (Section 6.6,
//! Figure 7).
//!
//! The paper's claim: for 32 LQ entries and 64 L1/L2 MSHR entries per core,
//! the SEFE metadata costs **less than 1 KB per core**, scaling linearly
//! with the queue sizes. This module computes that bound from first
//! principles so the `tab07_storage` harness can regenerate the numbers.

use cleanupspec_mem::types::{EpochId, LoadId};

/// Bits of the L1-evicted line address tracked in the SEFE (Figure 7).
pub const EVICT_ADDR_BITS: u32 = 40;

/// SEFE layout per structure (Figure 7).
#[derive(Clone, Copy, Debug)]
pub struct SefeLayout {
    /// `isSpec` bit.
    pub is_spec_bits: u32,
    /// `EpochID` bits.
    pub epoch_bits: u32,
    /// `LoadID` bits.
    pub load_id_bits: u32,
    /// `L1-Fill` + `L2-Fill` bits.
    pub fill_bits: u32,
    /// `L1-Evict Lineaddr` bits (0 where not tracked).
    pub evict_addr_bits: u32,
}

impl SefeLayout {
    /// SEFE attached to a load-queue entry or an L1-MSHR entry: all fields
    /// including the 40-bit evicted-line address (7 bytes).
    pub fn full() -> Self {
        SefeLayout {
            is_spec_bits: 1,
            epoch_bits: EpochId::BITS,
            load_id_bits: LoadId::BITS,
            fill_bits: 2,
            evict_addr_bits: EVICT_ADDR_BITS,
        }
    }

    /// SEFE attached to an L2-MSHR entry: status bits, LoadID (5 bits at
    /// the L2 in the paper's layout), and EpochID — 2 bytes total. The L2
    /// never restores evictions, so no victim address is kept.
    pub fn l2() -> Self {
        SefeLayout {
            is_spec_bits: 1,
            epoch_bits: 8,
            load_id_bits: 5,
            fill_bits: 2,
            evict_addr_bits: 0,
        }
    }

    /// Total bits per entry.
    pub fn bits(&self) -> u32 {
        self.is_spec_bits
            + self.epoch_bits
            + self.load_id_bits
            + self.fill_bits
            + self.evict_addr_bits
    }

    /// Bytes per entry, rounded up.
    pub fn bytes(&self) -> u32 {
        self.bits().div_ceil(8)
    }
}

/// Per-core SEFE storage for a configuration.
#[derive(Clone, Copy, Debug)]
pub struct SefeStorage {
    /// Load-queue entries.
    pub lq_entries: usize,
    /// L1 MSHR entries.
    pub l1_mshr_entries: usize,
    /// L2 MSHR entries.
    pub l2_mshr_entries: usize,
}

impl SefeStorage {
    /// The paper's Table-4/Section-6.6 configuration: 32 LQ, 64 L1-MSHR,
    /// 64 L2-MSHR entries.
    pub fn paper_config() -> Self {
        SefeStorage {
            lq_entries: 32,
            l1_mshr_entries: 64,
            l2_mshr_entries: 64,
        }
    }

    /// Bytes of SEFE storage in the load queue.
    pub fn lq_bytes(&self) -> usize {
        self.lq_entries * SefeLayout::full().bytes() as usize
    }

    /// Bytes of SEFE storage in the L1 MSHRs.
    pub fn l1_mshr_bytes(&self) -> usize {
        self.l1_mshr_entries * SefeLayout::full().bytes() as usize
    }

    /// Bytes of SEFE storage in the L2 MSHRs.
    pub fn l2_mshr_bytes(&self) -> usize {
        self.l2_mshr_entries * SefeLayout::l2().bytes() as usize
    }

    /// Total SEFE bytes per core.
    pub fn total_bytes(&self) -> usize {
        self.lq_bytes() + self.l1_mshr_bytes() + self.l2_mshr_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_layout_is_seven_bytes() {
        let l = SefeLayout::full();
        assert_eq!(l.bits(), 1 + 5 + 8 + 2 + 40);
        assert_eq!(l.bytes(), 7);
    }

    #[test]
    fn l2_layout_is_two_bytes() {
        let l = SefeLayout::l2();
        assert_eq!(l.bytes(), 2);
    }

    #[test]
    fn paper_config_under_one_kilobyte() {
        let s = SefeStorage::paper_config();
        // 32*7 + 64*7 + 64*2 = 224 + 448 + 128 = 800 bytes.
        assert_eq!(s.lq_bytes(), 224);
        assert_eq!(s.l1_mshr_bytes(), 448);
        assert_eq!(s.l2_mshr_bytes(), 128);
        assert_eq!(s.total_bytes(), 800);
        assert!(s.total_bytes() < 1024, "paper claim: <1KB per core");
    }

    #[test]
    fn storage_scales_linearly() {
        let s1 = SefeStorage {
            lq_entries: 32,
            l1_mshr_entries: 64,
            l2_mshr_entries: 64,
        };
        let s2 = SefeStorage {
            lq_entries: 64,
            l1_mshr_entries: 128,
            l2_mshr_entries: 128,
        };
        assert_eq!(s2.total_bytes(), 2 * s1.total_bytes());
    }
}
