//! JSON serialization of [`SimReport`] (hand-rolled: the report is a flat
//! tree of numbers, so a dependency-free writer keeps the build light).
//!
//! The writer itself lives in `cleanupspec-obs` (the event sinks need it
//! too); this module re-exports it and layers the report schema on top.
//!
//! ```
//! use cleanupspec::prelude::*;
//! use cleanupspec::json::report_to_json;
//!
//! let mut b = ProgramBuilder::new("j");
//! b.movi(Reg(1), 0x40);
//! b.load(Reg(2), Reg(1), 0);
//! b.halt();
//! let mut sim = SimBuilder::new(SecurityMode::CleanupSpec).program(b.build()).build();
//! sim.run_to_completion();
//! let json = report_to_json(&sim.report());
//! assert!(json.contains("\"mode\": \"cleanupspec\""));
//! ```

use crate::sim::SimReport;
use cleanupspec_mem::stats::MsgClass;
pub use cleanupspec_obs::JsonWriter;
use cleanupspec_obs::PathKind;

/// Serializes a [`SimReport`] to a JSON object string.
pub fn report_to_json(r: &SimReport) -> String {
    let mut w = JsonWriter::new();
    w.open_object(None)
        .string("mode", r.mode.name())
        .int("cycles", r.cycles)
        .float("ipc", r.ipc())
        .int("total_insts", r.total_insts());
    w.open_object(Some("mem"))
        .int("l1_hits", r.mem.l1_hits)
        .int("l2_hits", r.mem.l2_hits)
        .int("remote_hits", r.mem.remote_hits)
        .int("mem_loads", r.mem.mem_loads)
        .int("dummy_misses", r.mem.dummy_misses)
        .int("gets_safe_refusals", r.mem.gets_safe_refusals)
        .int("stores", r.mem.stores)
        .int("l1_evictions", r.mem.l1_evictions)
        .int("l2_evictions", r.mem.l2_evictions)
        .int("dropped_fills", r.mem.dropped_fills)
        .int("orphan_fills", r.mem.orphan_fills)
        .int("cleanup_invals", r.mem.cleanup_invals)
        .int("cleanup_restores", r.mem.cleanup_restores)
        .float("l1_miss_rate", r.mem.l1_miss_rate())
        .close_object();
    w.open_object(Some("latency"));
    for path in PathKind::ALL {
        r.mem.load_latency[path.index()].write_json(&mut w, path.as_str());
    }
    w.close_object();
    r.mem.mshr_occupancy.write_json(&mut w, "mshr_occupancy");
    r.mem.sefe_occupancy.write_json(&mut w, "sefe_occupancy");
    w.open_object(Some("traffic"));
    for class in MsgClass::ALL {
        w.int(&class.to_string(), r.traffic.get(class));
    }
    w.int("total", r.traffic.total()).close_object();
    w.open_array("cores");
    for c in &r.cores {
        w.open_object(None)
            .int("committed_insts", c.committed_insts)
            .int("committed_loads", c.committed_loads)
            .int("committed_stores", c.committed_stores)
            .int("committed_branches", c.committed_branches)
            .int("mispredicts", c.mispredicts)
            .int("squashes", c.squashes)
            .int("squashed_insts", c.squashed_insts)
            .int("squashed_ni", c.squashed_ni)
            .int("squashed_l1h", c.squashed_l1h)
            .int("squashed_l2h", c.squashed_l2h)
            .int("squashed_l2m", c.squashed_l2m)
            .int("squash_wait_cycles", c.squash_wait_cycles)
            .int("squash_cleanup_cycles", c.squash_cleanup_cycles)
            .int("deferred_loads", c.deferred_loads)
            .int("forwarded_loads", c.forwarded_loads)
            .int("faults", c.faults)
            .float("ipc", c.ipc())
            .float("mispredict_rate", c.mispredict_rate())
            .float("squash_pki", c.squash_pki());
        c.cleanup_duration.write_json(&mut w, "cleanup_duration");
        c.episode_duration.write_json(&mut w, "episode_duration");
        c.episode_loads.write_json(&mut w, "episode_loads");
        // Top-down cycle accounting: one bucket per StallCause; the
        // components sum exactly to the report's total cycles.
        w.open_object(Some("cpi_stack"));
        for (cause, cycles) in c.cpi_stack.iter() {
            w.int(cause.name(), cycles);
        }
        w.int("total", c.cpi_stack.total()).close_object();
        w.close_object();
    }
    w.close_array();
    w.open_array("scheme_counters");
    for core_counters in &r.scheme_counters {
        w.open_object(None);
        for (name, value) in core_counters {
            w.int(name, *value);
        }
        w.close_object();
    }
    w.close_array().close_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::SecurityMode;
    use crate::sim::SimBuilder;
    use cleanupspec_core::isa::{ProgramBuilder, Reg};

    fn sample_report() -> SimReport {
        let mut b = ProgramBuilder::new("j");
        b.movi(Reg(1), 0x1000);
        b.load(Reg(2), Reg(1), 0);
        b.halt();
        let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
            .program(b.build())
            .build();
        sim.run_to_completion();
        sim.report()
    }

    fn balanced(s: &str) -> bool {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn report_json_is_balanced_and_complete() {
        let j = report_to_json(&sample_report());
        assert!(balanced(&j), "unbalanced json: {j}");
        for key in [
            "\"mode\"",
            "\"cycles\"",
            "\"mem\"",
            "\"latency\"",
            "\"mshr_occupancy\"",
            "\"sefe_occupancy\"",
            "\"cleanup_duration\"",
            "\"episode_duration\"",
            "\"episode_loads\"",
            "\"traffic\"",
            "\"cores\"",
            "\"l1_miss_rate\"",
            "\"squash_pki\"",
            "\"cpi_stack\"",
            "\"scheme_counters\"",
            "\"p95\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn cpi_stack_in_json_sums_to_cycles() {
        let r = sample_report();
        let stack = r.cpi_stack();
        assert_eq!(
            stack.total(),
            r.cycles * r.cores.len() as u64,
            "per-core CPI stacks must sum to total cycles"
        );
        let j = report_to_json(&r);
        for cause in cleanupspec_core::stats::StallCause::ALL {
            assert!(
                j.contains(&format!("\"{}\"", cause.name())),
                "missing {cause}"
            );
        }
    }

    #[test]
    fn latency_section_covers_every_path() {
        let j = report_to_json(&sample_report());
        for path in cleanupspec_obs::PathKind::ALL {
            assert!(
                j.contains(&format!("\"{}\"", path.as_str())),
                "missing path {} in {j}",
                path.as_str()
            );
        }
    }

    #[test]
    fn latency_histogram_counts_loads() {
        // The sample program performs one demand load; it must appear in
        // exactly one of the per-path latency histograms.
        let r = sample_report();
        let recorded: u64 = r.mem.load_latency.iter().map(|h| h.count()).sum();
        assert!(recorded >= 1, "no load latency recorded");
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.open_object(None)
            .string("k\"ey", "va\\lue\nnewline")
            .close_object();
        let j = w.finish();
        assert!(j.contains("k\\\"ey"));
        assert!(j.contains("va\\\\lue\\nnewline"));
        assert!(balanced(&j));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.open_object(None).float("x", f64::NAN).close_object();
        assert!(w.finish().contains("\"x\": null"));
    }

    #[test]
    fn arrays_separate_elements() {
        let mut w = JsonWriter::new();
        w.open_object(None).open_array("a");
        for i in 0..3 {
            w.open_object(None).int("i", i).close_object();
        }
        w.close_array().close_object();
        let j = w.finish();
        assert_eq!(j.matches("{\"i\"").count(), 3);
        assert_eq!(j.matches("}, {").count(), 2);
        assert!(balanced(&j));
    }
}
