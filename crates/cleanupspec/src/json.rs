//! JSON serialization of [`SimReport`] (hand-rolled: the report is a flat
//! tree of numbers, so a dependency-free writer keeps the build light).
//!
//! ```
//! use cleanupspec::prelude::*;
//! use cleanupspec::json::report_to_json;
//!
//! let mut b = ProgramBuilder::new("j");
//! b.movi(Reg(1), 0x40);
//! b.load(Reg(2), Reg(1), 0);
//! b.halt();
//! let mut sim = SimBuilder::new(SecurityMode::CleanupSpec).program(b.build()).build();
//! sim.run_to_completion();
//! let json = report_to_json(&sim.report());
//! assert!(json.contains("\"mode\": \"cleanupspec\""));
//! ```

use crate::sim::SimReport;
use cleanupspec_mem::stats::MsgClass;
use std::fmt::Write as _;

/// A minimal JSON value writer.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<bool>, // per open object/array: "has at least one element"
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn comma(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has {
                self.out.push_str(", ");
            }
            *has = true;
        }
    }

    /// Opens an object (optionally as the value of `key`).
    pub fn open_object(&mut self, key: Option<&str>) -> &mut Self {
        self.comma();
        if let Some(k) = key {
            let _ = write!(self.out, "\"{}\": ", escape(k));
        }
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn close_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Opens an array as the value of `key`.
    pub fn open_array(&mut self, key: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": [", escape(key));
        self.stack.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn close_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Writes a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": \"{}\"", escape(key), escape(value));
        self
    }

    /// Writes an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.comma();
        let _ = write!(self.out, "\"{}\": {value}", escape(key));
        self
    }

    /// Writes a float field (NaN/inf become null).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.comma();
        if value.is_finite() {
            let _ = write!(self.out, "\"{}\": {value:.6}", escape(key));
        } else {
            let _ = write!(self.out, "\"{}\": null", escape(key));
        }
        self
    }

    /// Finishes and returns the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced open/close");
        self.out
    }
}

fn escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o
}

/// Serializes a [`SimReport`] to a JSON object string.
pub fn report_to_json(r: &SimReport) -> String {
    let mut w = JsonWriter::new();
    w.open_object(None)
        .string("mode", r.mode.name())
        .int("cycles", r.cycles)
        .float("ipc", r.ipc())
        .int("total_insts", r.total_insts());
    w.open_object(Some("mem"))
        .int("l1_hits", r.mem.l1_hits)
        .int("l2_hits", r.mem.l2_hits)
        .int("remote_hits", r.mem.remote_hits)
        .int("mem_loads", r.mem.mem_loads)
        .int("dummy_misses", r.mem.dummy_misses)
        .int("gets_safe_refusals", r.mem.gets_safe_refusals)
        .int("stores", r.mem.stores)
        .int("l1_evictions", r.mem.l1_evictions)
        .int("l2_evictions", r.mem.l2_evictions)
        .int("dropped_fills", r.mem.dropped_fills)
        .int("orphan_fills", r.mem.orphan_fills)
        .int("cleanup_invals", r.mem.cleanup_invals)
        .int("cleanup_restores", r.mem.cleanup_restores)
        .float("l1_miss_rate", r.mem.l1_miss_rate())
        .close_object();
    w.open_object(Some("traffic"));
    for class in MsgClass::ALL {
        w.int(&class.to_string(), r.traffic.get(class));
    }
    w.int("total", r.traffic.total()).close_object();
    w.open_array("cores");
    for c in &r.cores {
        w.open_object(None)
            .int("committed_insts", c.committed_insts)
            .int("committed_loads", c.committed_loads)
            .int("committed_stores", c.committed_stores)
            .int("committed_branches", c.committed_branches)
            .int("mispredicts", c.mispredicts)
            .int("squashes", c.squashes)
            .int("squashed_insts", c.squashed_insts)
            .int("squashed_ni", c.squashed_ni)
            .int("squashed_l1h", c.squashed_l1h)
            .int("squashed_l2h", c.squashed_l2h)
            .int("squashed_l2m", c.squashed_l2m)
            .int("squash_wait_cycles", c.squash_wait_cycles)
            .int("squash_cleanup_cycles", c.squash_cleanup_cycles)
            .int("deferred_loads", c.deferred_loads)
            .int("forwarded_loads", c.forwarded_loads)
            .int("faults", c.faults)
            .float("ipc", c.ipc())
            .float("mispredict_rate", c.mispredict_rate())
            .float("squash_pki", c.squash_pki())
            .close_object();
    }
    w.close_array().close_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::SecurityMode;
    use crate::sim::SimBuilder;
    use cleanupspec_core::isa::{ProgramBuilder, Reg};

    fn sample_report() -> SimReport {
        let mut b = ProgramBuilder::new("j");
        b.movi(Reg(1), 0x1000);
        b.load(Reg(2), Reg(1), 0);
        b.halt();
        let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
            .program(b.build())
            .build();
        sim.run_to_completion();
        sim.report()
    }

    fn balanced(s: &str) -> bool {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn report_json_is_balanced_and_complete() {
        let j = report_to_json(&sample_report());
        assert!(balanced(&j), "unbalanced json: {j}");
        for key in [
            "\"mode\"",
            "\"cycles\"",
            "\"mem\"",
            "\"traffic\"",
            "\"cores\"",
            "\"l1_miss_rate\"",
            "\"squash_pki\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.open_object(None)
            .string("k\"ey", "va\\lue\nnewline")
            .close_object();
        let j = w.finish();
        assert!(j.contains("k\\\"ey"));
        assert!(j.contains("va\\\\lue\\nnewline"));
        assert!(balanced(&j));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.open_object(None).float("x", f64::NAN).close_object();
        assert!(w.finish().contains("\"x\": null"));
    }

    #[test]
    fn arrays_separate_elements() {
        let mut w = JsonWriter::new();
        w.open_object(None).open_array("a");
        for i in 0..3 {
            w.open_object(None).int("i", i).close_object();
        }
        w.close_array().close_object();
        let j = w.finish();
        assert_eq!(j.matches("{\"i\"").count(), 3);
        assert_eq!(j.matches("}, {").count(), 2);
        assert!(balanced(&j));
    }
}
