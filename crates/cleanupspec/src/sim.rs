//! Top-level simulator: wires programs, cores, a security mode, and the
//! memory hierarchy together, runs them, and produces a [`SimReport`].
//!
//! Also provides the *attacker's stopwatch*: [`Simulator::probe_load`] and
//! [`Simulator::flush_line`] perform real, timed cache accesses on behalf
//! of an attack's measurement phase (the Flush+Reload / Prime+Probe loops
//! of Section 6.1).

use crate::modes::SecurityMode;
use cleanupspec_core::isa::Program;
use cleanupspec_core::pipeline::CoreConfig;
use cleanupspec_core::stats::CoreStats;
use cleanupspec_core::system::{RunLimits, StopReason, System};
use cleanupspec_mem::fault::{FaultCountersSnapshot, FaultInjector, FaultPlan};
use cleanupspec_mem::hierarchy::{LoadReq, MemConfig, MemHierarchy};
use cleanupspec_mem::stats::{MemStats, MsgClass, Traffic};
use cleanupspec_mem::types::{Addr, CoreId, Cycle, LoadId};
use cleanupspec_obs::{EventSink, Observer, SimEvent};
use std::fmt;
use std::sync::Arc;

/// Builder for a [`Simulator`].
///
/// ```
/// use cleanupspec::sim::SimBuilder;
/// use cleanupspec::modes::SecurityMode;
/// use cleanupspec_core::isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new("quick");
/// b.movi(Reg(1), 0x1000);
/// b.load(Reg(2), Reg(1), 0);
/// b.halt();
/// let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
///     .program(b.build())
///     .build();
/// sim.run_to_completion();
/// assert!(sim.report().cycles > 0);
/// ```
pub struct SimBuilder {
    mode: SecurityMode,
    mem_cfg: MemConfig,
    core_cfg: CoreConfig,
    programs: Vec<Arc<Program>>,
    sinks: Vec<Box<dyn EventSink>>,
    fault_plan: Option<FaultPlan>,
}

impl fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuilder")
            .field("mode", &self.mode)
            .field("mem_cfg", &self.mem_cfg)
            .field("core_cfg", &self.core_cfg)
            .field("programs", &self.programs.len())
            .field("sinks", &self.sinks.len())
            .field("fault_plan", &self.fault_plan)
            .finish()
    }
}

impl SimBuilder {
    /// Starts a builder for the given security mode with Table-4 defaults.
    pub fn new(mode: SecurityMode) -> Self {
        SimBuilder {
            mode,
            mem_cfg: MemConfig::default(),
            core_cfg: CoreConfig::default(),
            programs: Vec::new(),
            sinks: Vec::new(),
            fault_plan: None,
        }
    }

    /// Attaches an event sink; every simulation layer (pipeline, caches,
    /// MSHRs, cleanup engine, DRAM) will emit [`cleanupspec_obs::SimEvent`]s
    /// into it. Call repeatedly to fan out to several sinks. Wrap a sink in
    /// [`cleanupspec_obs::Shared`] first if you need to read it back after
    /// the run.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a core running `program`.
    #[must_use]
    pub fn program(mut self, program: Program) -> Self {
        self.programs.push(Arc::new(program));
        self
    }

    /// Adds a core running a shared program handle.
    #[must_use]
    pub fn program_arc(mut self, program: Arc<Program>) -> Self {
        self.programs.push(program);
        self
    }

    /// Overrides the base memory configuration (the mode's requirements are
    /// still applied on top).
    #[must_use]
    pub fn mem_config(mut self, cfg: MemConfig) -> Self {
        self.mem_cfg = cfg;
        self
    }

    /// Overrides the core configuration.
    #[must_use]
    pub fn core_config(mut self, cfg: CoreConfig) -> Self {
        self.core_cfg = cfg;
        self
    }

    /// Sets the seed for the hierarchy's randomized structures.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.mem_cfg.seed = seed;
        self
    }

    /// Arms a deterministic fault-injection plan (cs-chaos): the hooks it
    /// names sabotage the hierarchy and cleanup engine at their scheduled
    /// opportunities. Testing infrastructure only.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the simulator.
    ///
    /// # Panics
    /// Panics if no program was added.
    pub fn build(self) -> Simulator {
        assert!(!self.programs.is_empty(), "add at least one program");
        let mut mem_cfg = self.mode.apply_mem_config(self.mem_cfg);
        mem_cfg.num_cores = self.programs.len();
        let mut mem = MemHierarchy::new(mem_cfg);
        if let Some(plan) = self.fault_plan {
            mem.set_fault_injector(FaultInjector::new(plan));
        }
        let schemes = self
            .programs
            .iter()
            .map(|_| self.mode.build_scheme())
            .collect();
        let mut sys = System::new(mem, self.core_cfg, schemes, self.programs);
        let obs = Observer::new(self.sinks);
        if obs.is_enabled() {
            sys.set_observer(obs.clone());
        }
        Simulator {
            sys,
            mode: self.mode,
            obs,
            probe_seq: 0,
            measure_base: 0,
            last_stop: None,
        }
    }
}

/// A runnable simulated system under one security mode.
#[derive(Debug)]
pub struct Simulator {
    sys: System,
    mode: SecurityMode,
    obs: Observer,
    probe_seq: u64,
    measure_base: Cycle,
    last_stop: Option<StopReason>,
}

impl Simulator {
    /// The active security mode.
    pub fn mode(&self) -> SecurityMode {
        self.mode
    }

    /// The event-bus observer (disabled unless sinks were attached via
    /// [`SimBuilder::sink`]).
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// Flushes every attached sink ([`EventSink::finish`]). Call once after
    /// the final run, before reading results out of shared sinks.
    pub fn finish_observer(&self) {
        self.obs.finish();
    }

    /// Runs with explicit limits.
    pub fn run(&mut self, limits: RunLimits) -> StopReason {
        let stop = self.sys.run(limits);
        self.last_stop = Some(stop.clone());
        stop
    }

    /// Runs until all cores halt (with a generous safety cycle cap).
    pub fn run_to_completion(&mut self) -> StopReason {
        self.run(RunLimits::default())
    }

    /// Runs until each core commits `n` instructions or halts.
    pub fn run_insts(&mut self, n: u64) -> StopReason {
        self.run(RunLimits {
            max_cycles: 400 * n + 1_000_000,
            max_insts_per_core: n,
            ..RunLimits::default()
        })
    }

    /// Runs `warmup` instructions, clears all statistics (caches, branch
    /// predictor, and pipeline state stay warm), then runs `measure` more
    /// instructions — the usual warm-up + region-of-interest protocol.
    ///
    /// If the *warmup* phase itself fails (cycle-limit exhaustion or a
    /// livelock), the measure phase is skipped and the warmup's stop
    /// reason is returned — and recorded in [`SimReport::stop`] — so a
    /// half-warm state is never silently measured as a completed run.
    pub fn run_with_warmup(&mut self, warmup: u64, measure: u64) -> StopReason {
        let warm_stop = self.run_insts(warmup);
        if !warm_stop.is_success() {
            return warm_stop;
        }
        self.run_measure(measure)
    }

    /// The region-of-interest half of [`Self::run_with_warmup`]: clears
    /// all statistics (caches, branch predictor, and pipeline state stay
    /// warm) and measures `measure` more instructions from here.
    ///
    /// Call on a fork produced by [`Snapshot::fork_for_mode`] so a
    /// shared-warmup measurement runs the exact protocol an unshared
    /// `run_with_warmup` would after its own warmup phase.
    pub fn run_measure(&mut self, measure: u64) -> StopReason {
        let base = self.sys.now();
        self.sys.reset_stats();
        self.measure_base = base;
        self.run(RunLimits {
            max_cycles: base + 400 * measure + 1_000_000,
            max_insts_per_core: measure,
            ..RunLimits::default()
        })
    }

    /// How the most recent run stopped (`None` before the first run).
    pub fn last_stop(&self) -> Option<&StopReason> {
        self.last_stop.as_ref()
    }

    /// Statistics of core `i`.
    pub fn core_stats(&self, i: usize) -> &CoreStats {
        self.sys.core_stats(i)
    }

    /// The underlying system (register inspection etc.).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable system access.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// The memory hierarchy.
    pub fn mem(&self) -> &MemHierarchy {
        self.sys.mem()
    }

    // ------------------------------------------------------------------
    // Attack-harness operations (the adversary's measurement phase)
    // ------------------------------------------------------------------

    /// Performs a real, timed demand load from `core` to `addr`, advancing
    /// simulated time until the data returns. Returns the observed latency
    /// in cycles — exactly what a Flush+Reload attacker's timed reload
    /// sees. The access has normal side effects (it installs the line).
    pub fn probe_load(&mut self, core: CoreId, addr: Addr) -> Cycle {
        self.probe_seq += 1;
        let line = addr.line();
        let start = self.sys.now();
        let out = loop {
            let now = self.sys.now();
            match self.sys.mem_mut().load(
                core,
                line,
                now,
                LoadReq::non_spec(LoadId(self.probe_seq)),
            ) {
                Ok(out) => break out,
                Err(_) => self.sys.tick_mem_only(), // MSHRs busy: wait
            }
        };
        while self.sys.now() < out.complete_at {
            self.sys.tick_mem_only();
        }
        if let Some(t) = out.token {
            let _ = self.sys.mem_mut().collect(t);
        }
        out.complete_at - start
    }

    /// Flushes `addr`'s line from the whole hierarchy (the attacker's
    /// `clflush`), advancing time past the flush.
    pub fn flush_line(&mut self, core: CoreId, addr: Addr) {
        let now = self.sys.now();
        let out = self.sys.mem_mut().clflush(core, addr.line(), now);
        while self.sys.now() < out.complete_at {
            self.sys.tick_mem_only();
        }
    }

    /// Advances simulated time by `cycles` (lets pending fills land, e.g.
    /// after a program finished).
    pub fn drain(&mut self, cycles: Cycle) {
        let target = self.sys.now() + cycles;
        while self.sys.now() < target {
            self.sys.tick_mem_only();
        }
    }

    // ------------------------------------------------------------------
    // cs-snap: full-state snapshot / restore
    // ------------------------------------------------------------------

    /// Captures the simulator's complete state as an in-memory
    /// [`Snapshot`]: every pipeline (ROB/LQ/SQ, registers, predictor
    /// tables), the per-core schemes, all cache arrays with coherence and
    /// dirty bits, MSHRs and SEFEs, DRAM queues, CEASER cipher keys, RNG
    /// streams, cycle counters, watchdog progress, and stats.
    ///
    /// Restoring (or forking) the snapshot and running to completion is
    /// bit-exact with an uninterrupted run — the resume-exactness oracle
    /// pinned by `tests/snapshot_resume.rs`.
    pub fn snapshot(&self) -> Snapshot {
        self.obs.emit(
            self.sys.now(),
            SimEvent::SnapshotTaken { at: self.sys.now() },
        );
        Snapshot {
            sys: self.sys.clone(),
            mode: self.mode,
            probe_seq: self.probe_seq,
            measure_base: self.measure_base,
            last_stop: self.last_stop.clone(),
            fault_counters: self.sys.mem().fault_injector().counters_snapshot(),
        }
    }

    /// Rewinds this simulator to a previously captured [`Snapshot`].
    ///
    /// The snapshot is cloned, not consumed, so one checkpoint can seed
    /// many resumes (the shrinker replays many candidates from the same
    /// pre-divergence point). The simulator's current event sinks are
    /// re-attached to the restored state; call [`Self::set_sinks`] first
    /// if the resumed run must record into fresh sinks.
    ///
    /// Fault-injection counters are written back through the *shared*
    /// injector handle, so a restore rewinds fault state globally — do not
    /// interleave a restored run with the original on the same plan.
    ///
    /// # Panics
    /// Panics if the snapshot was taken under a different security mode.
    pub fn restore(&mut self, snap: &Snapshot) {
        assert_eq!(
            self.mode, snap.mode,
            "snapshot was taken under a different security mode"
        );
        self.sys = snap.sys.clone();
        self.probe_seq = snap.probe_seq;
        self.measure_base = snap.measure_base;
        self.last_stop = snap.last_stop.clone();
        self.sys
            .mem()
            .fault_injector()
            .restore_counters(&snap.fault_counters);
        if self.obs.is_enabled() {
            self.sys.set_observer(self.obs.clone());
        }
        self.obs.emit(
            self.sys.now(),
            SimEvent::SnapshotRestored { at: self.sys.now() },
        );
    }

    /// Replaces the event-bus observer with one wrapping `sinks`.
    ///
    /// Use after [`Self::restore`] when the resumed run must not
    /// double-count into the sinks the original run already filled. Pass
    /// an empty vector to detach observation entirely.
    pub fn set_sinks(&mut self, sinks: Vec<Box<dyn EventSink>>) {
        let obs = Observer::new(sinks);
        self.sys.set_observer(obs.clone());
        self.obs = obs;
    }

    /// Produces the aggregate report.
    pub fn report(&self) -> SimReport {
        let n = self.sys.mem().config().num_cores;
        let mut cores: Vec<CoreStats> = (0..n).map(|i| self.sys.core_stats(i).clone()).collect();
        let cycles = self.sys.now() - self.measure_base;
        for c in &mut cores {
            c.cycles = cycles;
        }
        let scheme_counters = (0..n)
            .map(|i| {
                self.sys
                    .scheme(i)
                    .stat_counters()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect()
            })
            .collect();
        SimReport {
            mode: self.mode,
            cycles,
            stop: self.last_stop.clone(),
            mem: self.sys.mem().stats().clone(),
            traffic: self.sys.mem().traffic().clone(),
            cores,
            scheme_counters,
        }
    }
}

/// A bit-exact, in-memory capture of a [`Simulator`]'s full state
/// (cs-snap).
///
/// Obtained from [`Simulator::snapshot`]; consumed by
/// [`Simulator::restore`] (rewind in place) or [`Snapshot::fork_for_mode`]
/// (spawn an independent simulator from a shared warm state). `Clone` is a
/// deep copy, so snapshots can be stockpiled and forked freely.
#[derive(Clone, Debug)]
pub struct Snapshot {
    sys: System,
    mode: SecurityMode,
    probe_seq: u64,
    measure_base: Cycle,
    last_stop: Option<StopReason>,
    fault_counters: Option<FaultCountersSnapshot>,
}

impl Snapshot {
    /// Security mode the snapshot was taken under.
    pub fn mode(&self) -> SecurityMode {
        self.mode
    }

    /// Simulated cycle at capture time.
    pub fn now(&self) -> Cycle {
        self.sys.now()
    }

    /// Forks this (typically warmed) snapshot into an independent
    /// simulator that measures under `mode`, swapping in freshly built
    /// scheme objects for every core. The fork starts with *no* event
    /// sinks; attach some with [`Simulator::set_sinks`] if needed.
    ///
    /// This is the `--shared-warmup` primitive: warm one simulator per
    /// workload, then fork the snapshot once per security mode instead of
    /// re-simulating the warmup. It is only sound between modes whose
    /// [`SecurityMode::apply_mem_config`] produce the same hardware
    /// configuration (same L1 replacement, L2 randomization, and skews) —
    /// callers must group modes into such equivalence classes first.
    pub fn fork_for_mode(&self, mode: SecurityMode) -> Simulator {
        let mut sys = self.sys.clone();
        let n = sys.mem().config().num_cores;
        sys.set_schemes((0..n).map(|_| mode.build_scheme()).collect());
        let obs = Observer::disabled();
        sys.set_observer(obs.clone());
        sys.mem()
            .fault_injector()
            .restore_counters(&self.fault_counters);
        Simulator {
            sys,
            mode,
            obs,
            probe_seq: self.probe_seq,
            measure_base: self.measure_base,
            last_stop: self.last_stop.clone(),
        }
    }
}

/// Aggregated results of one simulation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Security mode simulated.
    pub mode: SecurityMode,
    /// Total cycles.
    pub cycles: Cycle,
    /// How the most recent run stopped (`None` if the report was taken
    /// before any run). `CycleLimit` and `Livelock` mean the workload did
    /// NOT finish — consumers must not present such a report as a
    /// completed measurement.
    pub stop: Option<StopReason>,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
    /// Network-traffic counters.
    pub traffic: Traffic,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Per-core scheme-internal counters as `(name, value)` pairs (e.g.
    /// CleanupSpec's cleanup-op tallies), from
    /// [`cleanupspec_core::scheme::SpeculationScheme::stat_counters`].
    pub scheme_counters: Vec<Vec<(String, u64)>>,
}

impl SimReport {
    /// Committed instructions across all cores.
    pub fn total_insts(&self) -> u64 {
        self.cores.iter().map(|c| c.committed_insts).sum()
    }

    /// System IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_insts() as f64 / self.cycles as f64
        }
    }

    /// Execution-time slowdown of this report relative to a baseline run
    /// of the same work (cycles ratio, adjusted for committed work).
    /// Returns 0.0 when the baseline did no measurable work (zero cycles),
    /// instead of poisoning downstream JSON with inf/NaN.
    pub fn slowdown_vs(&self, baseline: &SimReport) -> f64 {
        let a = self.cycles as f64 / self.total_insts().max(1) as f64;
        let b = baseline.cycles as f64 / baseline.total_insts().max(1) as f64;
        if b == 0.0 {
            return 0.0;
        }
        a / b
    }

    /// Merged CPI stack across all cores (component sums; still sums to
    /// `cycles * cores.len()`).
    pub fn cpi_stack(&self) -> cleanupspec_core::stats::CpiStack {
        let mut total = cleanupspec_core::stats::CpiStack::new();
        for c in &self.cores {
            total.merge(&c.cpi_stack);
        }
        total
    }

    /// Network-traffic ratio vs a baseline (Figure 4b).
    pub fn traffic_vs(&self, baseline: &SimReport) -> f64 {
        self.traffic.total() as f64 / baseline.traffic.total().max(1) as f64
    }

    /// Update-load share of traffic (InvisiSpec breakdown, Figure 4b).
    pub fn traffic_share(&self, class: MsgClass) -> f64 {
        self.traffic.get(class) as f64 / self.traffic.total().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanupspec_core::isa::{ProgramBuilder, Reg};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        b.movi(Reg(1), 0x4000);
        b.load(Reg(2), Reg(1), 0);
        b.load(Reg(3), Reg(1), 64);
        b.halt();
        b.build()
    }

    #[test]
    fn builder_runs_single_core() {
        let mut sim = SimBuilder::new(SecurityMode::NonSecure)
            .program(tiny_program())
            .build();
        let reason = sim.run_to_completion();
        assert_eq!(reason, cleanupspec_core::system::StopReason::AllHalted);
        let r = sim.report();
        assert_eq!(r.cores.len(), 1);
        assert_eq!(r.cores[0].committed_loads, 2);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn probe_load_measures_hit_vs_miss() {
        let mut sim = SimBuilder::new(SecurityMode::NonSecure)
            .program(tiny_program())
            .build();
        sim.run_to_completion();
        let cold = sim.probe_load(CoreId(0), Addr::new(0x8000));
        let warm = sim.probe_load(CoreId(0), Addr::new(0x8000));
        assert!(
            cold > 10 * warm.max(1),
            "miss ({cold}) must dwarf hit ({warm})"
        );
    }

    #[test]
    fn flush_evicts_probed_line() {
        let mut sim = SimBuilder::new(SecurityMode::NonSecure)
            .program(tiny_program())
            .build();
        sim.run_to_completion();
        sim.probe_load(CoreId(0), Addr::new(0x9000));
        let warm = sim.probe_load(CoreId(0), Addr::new(0x9000));
        sim.flush_line(CoreId(0), Addr::new(0x9000));
        let after_flush = sim.probe_load(CoreId(0), Addr::new(0x9000));
        assert!(after_flush > warm, "flush must make the reload slow again");
    }

    #[test]
    fn modes_produce_reports_with_matching_mode() {
        for mode in [SecurityMode::NonSecure, SecurityMode::CleanupSpec] {
            let mut sim = SimBuilder::new(mode).program(tiny_program()).build();
            sim.run_to_completion();
            assert_eq!(sim.report().mode, mode);
        }
    }

    #[test]
    fn slowdown_vs_is_relative_cpi() {
        let mut a = SimBuilder::new(SecurityMode::NonSecure)
            .program(tiny_program())
            .build();
        a.run_to_completion();
        let ra = a.report();
        assert!((ra.slowdown_vs(&ra) - 1.0).abs() < 1e-9);
    }
}
