//! The speculation-security schemes evaluated in the paper, implemented as
//! [`SpeculationScheme`] policies plugged into the out-of-order pipeline:
//!
//! * [`NonSecure`] — the insecure baseline: squashed loads' installs stay.
//! * [`CleanupSpec`] — the paper's contribution: undo on squash
//!   (Sections 3.1–3.6).
//! * [`NaiveInvalidate`] — the strawman of Section 2.4.1: invalidate
//!   transient installs but do not restore evictions (still leaks to
//!   Prime+Probe).
//! * [`InvisiSpec`] — the Redo baseline (Section 2.3), in both the
//!   initial-estimate (commit-critical-path update) and revised
//!   (off-critical-path update) variants of Section 6.5.
//! * [`DelaySpeculativeLoads`] — a delay-based baseline in the family of
//!   NDA/SpecShield (Section 7.3.2): loads wait until unsquashable.

use cleanupspec_core::scheme::{
    CommitAction, CommittedLoad, LoadIssue, LoadIssuePolicy, SpeculationScheme, SquashInfo,
    SquashResponse, SquashedLoadState,
};
use cleanupspec_mem::error::SimError;
use cleanupspec_mem::fault::FaultKind;
use cleanupspec_mem::hierarchy::{LoadKind, LoadOutcome, LoadReq, MemHierarchy};
use cleanupspec_mem::types::{CoreId, Cycle, LoadId};

/// Statistics kept by the CleanupSpec scheme itself (on top of the
/// hierarchy's and core's counters).
#[derive(Clone, Debug, Default)]
pub struct CleanupStats {
    /// Squash events handled.
    pub cleanups: u64,
    /// Cleanup operations issued (invalidations + restores).
    pub ops: u64,
    /// Invalidation operations.
    pub invalidates: u64,
    /// Restore operations.
    pub restores: u64,
    /// Inflight loads dropped by epoch bump.
    pub dropped_inflight: u64,
    /// Squashed-inflight loads whose fill landed during the cleanup's
    /// wait for older correct-path loads; their installs are undone like
    /// executed loads.
    pub raced_fill_undos: u64,
    /// Squashes that required no cleanup operation at all.
    pub free_squashes: u64,
}

impl CleanupStats {
    /// All counters as `(name, value)` pairs (for
    /// [`SpeculationScheme::stat_counters`]).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cleanups", self.cleanups),
            ("ops", self.ops),
            ("invalidates", self.invalidates),
            ("restores", self.restores),
            ("dropped_inflight", self.dropped_inflight),
            ("raced_fill_undos", self.raced_fill_undos),
            ("free_squashes", self.free_squashes),
        ]
    }
}

/// Timing of the cleanup engine.
#[derive(Clone, Copy, Debug)]
pub struct CleanupTiming {
    /// Cycles to deliver the epoch-bump cleanup request to the MSHRs and
    /// receive the acknowledgment (Section 3.3).
    pub ack_latency: Cycle,
    /// Round-trip of the first pipelined cleanup operation (a restore is an
    /// L2 access; Section 4b: "restoration cache accesses are pipelined and
    /// serviced from the inclusive L2").
    pub first_op_latency: Cycle,
    /// Initiation interval of subsequent pipelined cleanup operations.
    pub per_op_latency: Cycle,
    /// Pad every cleanup stall to this fixed length (the paper's stated
    /// future work, Section 4b: "making the cleanup-operations incur a
    /// constant-time stall to make this theoretically impossible to
    /// exploit"). `None` = variable-time cleanup as evaluated.
    pub constant_time: Option<Cycle>,
}

impl Default for CleanupTiming {
    fn default() -> Self {
        CleanupTiming {
            ack_latency: 2,
            first_op_latency: 10,
            per_op_latency: 3,
            constant_time: None,
        }
    }
}

/// Non-secure baseline: speculative loads install normally and squashed
/// loads leave their cache changes behind.
#[derive(Clone, Debug, Default)]
pub struct NonSecure {
    next_load: u64,
}

impl NonSecure {
    /// Creates the baseline scheme.
    pub fn new() -> Self {
        NonSecure::default()
    }
}

impl SpeculationScheme for NonSecure {
    fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "non-secure"
    }

    fn issue_load(
        &mut self,
        mem: &mut MemHierarchy,
        req: LoadIssue,
    ) -> Result<LoadOutcome, SimError> {
        self.next_load += 1;
        mem.load(
            req.core,
            req.line,
            req.now,
            LoadReq {
                load: LoadId(self.next_load),
                spec: false, // no tagging: nothing is ever undone
                allow_downgrade: true,
                kind: LoadKind::Demand,
                tag_spec_install: false,
            },
        )
    }

    fn commit_load(
        &mut self,
        _mem: &mut MemHierarchy,
        _core: CoreId,
        _load: CommittedLoad,
        _now: Cycle,
    ) -> CommitAction {
        CommitAction::Proceed
    }

    fn on_squash(&mut self, mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse {
        // Inflight wrong-path fills still land (orphaned): this is the
        // behaviour the attacks exploit.
        for l in info.loads {
            if let SquashedLoadState::Inflight { token: Some(t), .. } = l.state {
                mem.orphan_token(t);
            }
        }
        SquashResponse {
            resume_at: info.now,
        }
    }
}

/// CleanupSpec: the paper's undo-based scheme.
///
/// * Speculative loads install normally, tagged for window protection.
/// * Speculative loads that would downgrade a remote M/E line are issued
///   with GetS-Safe and deferred until unsquashable (Section 3.5).
/// * On a squash: wait for older inflight loads, drop inflight squashed
///   loads by bumping the epoch, and undo executed squashed loads in
///   reverse LoadID order — invalidate installs, restore L1 evictions
///   (Sections 3.3–3.4).
#[derive(Clone, Debug, Default)]
pub struct CleanupSpec {
    timing: CleanupTiming,
    next_load: u64,
    stats: CleanupStats,
}

impl CleanupSpec {
    /// Creates the scheme with default cleanup timing.
    pub fn new() -> Self {
        CleanupSpec::default()
    }

    /// Creates the scheme with explicit cleanup timing.
    pub fn with_timing(timing: CleanupTiming) -> Self {
        CleanupSpec {
            timing,
            ..Default::default()
        }
    }

    /// Scheme-level statistics.
    pub fn stats(&self) -> &CleanupStats {
        &self.stats
    }

    fn undo(
        &mut self,
        mem: &mut MemHierarchy,
        info: &SquashInfo<'_>,
        restore_evictions: bool,
    ) -> SquashResponse {
        self.stats.cleanups += 1;
        // Drop inflight squashed loads: epoch bump + MSHR drop. Thanks to
        // the wait-for-older-inflight rule, every pending entry of this
        // core belongs to a squashed load.
        let has_inflight = info
            .loads
            .iter()
            .any(|l| matches!(l.state, SquashedLoadState::Inflight { .. }));
        let any_issued = info
            .loads
            .iter()
            .any(|l| !matches!(l.state, SquashedLoadState::NotIssued));
        let mut ops: u64 = 0;
        // Fills that raced the deferred cleanup: the load was still
        // inflight when the squash was recorded, but its response landed —
        // and installed — while cleanup waited for older correct-path
        // loads. Collect their SEFEs (freeing the stuck MSHR entries) and
        // undo the installs like executed loads. They completed after
        // every executed load, so they unwind first.
        let mut raced: Vec<_> = info
            .loads
            .iter()
            .filter_map(|l| match l.state {
                SquashedLoadState::Inflight { token: Some(t), .. } => mem
                    .collect(t)
                    .and_then(|sefe| l.line.map(|line| (line, sefe))),
                _ => None,
            })
            .collect();
        self.stats.raced_fill_undos += raced.len() as u64;
        raced.reverse(); // `loads` is oldest-first; unwind newest-first
        if has_inflight {
            self.stats.dropped_inflight += mem.drop_core_inflight(info.core) as u64;
        }
        // Executed squashed loads: undo in reverse completion (LoadID)
        // order so the cache's timeline is unwound correctly (Section 3.4).
        let mut executed: Vec<_> = info
            .loads
            .iter()
            .filter_map(|l| match l.state {
                SquashedLoadState::Executed { sefe, .. } => {
                    l.line.map(|line| (l.load_id, line, sefe))
                }
                _ => None,
            })
            .collect();
        executed.sort_by_key(|e| std::cmp::Reverse(e.0));
        let undo_list: Vec<_> = raced
            .into_iter()
            .chain(executed.into_iter().map(|(_, line, sefe)| (line, sefe)))
            .collect();
        // Fault hook: DoubleUndo models a cleanup engine that fails to
        // clear its walk pointer and re-runs the whole op list. The repeat
        // invalidations hit lines the engine no longer owns; the leakage
        // audit flags them as DoubleCleanup residue.
        let passes =
            if !undo_list.is_empty() && mem.fault_injector().should_fire(FaultKind::DoubleUndo) {
                2
            } else {
                1
            };
        for _ in 0..passes {
            for &(line, sefe) in &undo_list {
                if sefe.l1_fill || sefe.l2_fill {
                    mem.cleanup_invalidate(info.core, line, sefe.l1_fill, sefe.l2_fill);
                    self.stats.invalidates += 1;
                    ops += 1;
                }
                if restore_evictions {
                    if let Some(victim) = sefe.l1_evict {
                        mem.cleanup_restore(info.core, victim, sefe.l1_evict_dirty, line);
                        self.stats.restores += 1;
                        ops += 1;
                    }
                }
            }
        }
        self.stats.ops += ops;
        let mut t = 0;
        // The cleanup request/acknowledgment round to the MSHRs is needed
        // whenever any squashed load reached the cache hierarchy.
        if any_issued {
            t += self.timing.ack_latency;
        }
        if ops > 0 {
            t += self.timing.first_op_latency + self.timing.per_op_latency * (ops - 1);
        }
        if ops == 0 && !has_inflight {
            self.stats.free_squashes += 1;
        }
        if let Some(fixed) = self.timing.constant_time {
            // Constant-time variant: every squash stalls the same amount,
            // independent of how much cleanup work there was.
            t = t.max(fixed);
        }
        SquashResponse {
            resume_at: info.now + t,
        }
    }
}

impl SpeculationScheme for CleanupSpec {
    fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "cleanupspec"
    }

    fn issue_load(
        &mut self,
        mem: &mut MemHierarchy,
        req: LoadIssue,
    ) -> Result<LoadOutcome, SimError> {
        self.next_load += 1;
        mem.load(
            req.core,
            req.line,
            req.now,
            LoadReq {
                load: LoadId(self.next_load),
                spec: req.is_spec,
                // GetS-Safe: speculative loads may not downgrade remote M/E
                // lines (Section 3.5).
                allow_downgrade: !req.is_spec,
                kind: LoadKind::Demand,
                tag_spec_install: req.is_spec,
            },
        )
    }

    fn commit_load(
        &mut self,
        mem: &mut MemHierarchy,
        core: CoreId,
        load: CommittedLoad,
        _now: Cycle,
    ) -> CommitAction {
        // The load is unsquashable: clear its speculation-window tag.
        mem.retire_load(core, load.line);
        CommitAction::Proceed
    }

    fn waits_for_older_inflight(&self) -> bool {
        true
    }

    fn stalls_issue_during_cleanup(&self) -> bool {
        true
    }

    fn uses_window_protection(&self) -> bool {
        true
    }

    fn on_squash(&mut self, mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse {
        self.undo(mem, &info, true)
    }

    fn reset_stats(&mut self) {
        self.stats = CleanupStats::default();
    }

    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        self.stats.counters()
    }
}

/// The Section-2.4.1 strawman: invalidate transient installs on a squash
/// but do **not** restore the lines they evicted. Fast, but the eviction
/// channel remains open (demonstrated by the Prime+Probe tests).
#[derive(Clone, Debug, Default)]
pub struct NaiveInvalidate {
    inner: CleanupSpec,
}

impl NaiveInvalidate {
    /// Creates the strawman scheme.
    pub fn new() -> Self {
        NaiveInvalidate::default()
    }

    /// Scheme-level statistics.
    pub fn stats(&self) -> &CleanupStats {
        self.inner.stats()
    }
}

impl SpeculationScheme for NaiveInvalidate {
    fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "naive-invalidate"
    }

    fn issue_load(
        &mut self,
        mem: &mut MemHierarchy,
        req: LoadIssue,
    ) -> Result<LoadOutcome, SimError> {
        self.inner.issue_load(mem, req)
    }

    fn commit_load(
        &mut self,
        mem: &mut MemHierarchy,
        core: CoreId,
        load: CommittedLoad,
        now: Cycle,
    ) -> CommitAction {
        self.inner.commit_load(mem, core, load, now)
    }

    fn waits_for_older_inflight(&self) -> bool {
        true
    }

    fn stalls_issue_during_cleanup(&self) -> bool {
        true
    }

    fn uses_window_protection(&self) -> bool {
        true
    }

    fn on_squash(&mut self, mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse {
        self.inner.undo(mem, &info, false)
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        self.inner.stat_counters()
    }
}

/// Which InvisiSpec implementation to model (Section 6.5 / Table 6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvisiSpecVariant {
    /// Initial estimate: the commit-time update load is on the critical
    /// path (the behaviour measured at ~67.5% slowdown).
    Initial,
    /// Revised implementation: the update load is off the critical path
    /// but still occupies the load-queue entry (~15% slowdown).
    Revised,
}

/// InvisiSpec: the Redo-based baseline (Section 2.3). Speculative loads are
/// invisible (no cache change); at commit an update load re-fetches the
/// data and installs it.
#[derive(Clone, Debug)]
pub struct InvisiSpec {
    variant: InvisiSpecVariant,
    next_load: u64,
    /// Update loads issued at commit.
    pub update_loads: u64,
    /// Upper bound on the retirement wait for a validation acknowledgment
    /// in the revised variant, in cycles (the L2/directory round trip plus
    /// ordering queues; the full data refetch never gates retirement).
    pub validation_cap: Cycle,
}

impl InvisiSpec {
    /// Creates the scheme for a variant.
    pub fn new(variant: InvisiSpecVariant) -> Self {
        InvisiSpec {
            variant,
            next_load: 0,
            update_loads: 0,
            validation_cap: 40,
        }
    }

    /// The modeled variant.
    pub fn variant(&self) -> InvisiSpecVariant {
        self.variant
    }
}

impl InvisiSpec {
    /// Issues the commit-time/visibility-point update (Expose) load.
    /// Returns (completion cycle, service path).
    fn expose(
        &mut self,
        mem: &mut MemHierarchy,
        core: CoreId,
        load: CommittedLoad,
        now: Cycle,
    ) -> (Cycle, cleanupspec_mem::mshr::LoadPath) {
        self.update_loads += 1;
        self.next_load += 1;
        match mem.load(
            core,
            load.line,
            now,
            LoadReq {
                load: LoadId(self.next_load),
                spec: false,
                allow_downgrade: true,
                kind: LoadKind::Expose,
                tag_spec_install: false,
            },
        ) {
            Ok(out) => (out.complete_at, out.path),
            // MSHRs saturated by update traffic: brief retry delay.
            Err(_) => (now + 2, cleanupspec_mem::mshr::LoadPath::L1Hit),
        }
    }
}

impl SpeculationScheme for InvisiSpec {
    fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        match self.variant {
            InvisiSpecVariant::Initial => "invisispec-initial",
            InvisiSpecVariant::Revised => "invisispec-revised",
        }
    }

    fn issue_load(
        &mut self,
        mem: &mut MemHierarchy,
        req: LoadIssue,
    ) -> Result<LoadOutcome, SimError> {
        self.next_load += 1;
        let kind = if req.is_spec {
            LoadKind::Invisible
        } else {
            LoadKind::Demand
        };
        mem.load(
            req.core,
            req.line,
            req.now,
            LoadReq {
                load: LoadId(self.next_load),
                spec: false,
                allow_downgrade: true,
                kind,
                tag_spec_install: false,
            },
        )
    }

    fn on_load_visible(
        &mut self,
        mem: &mut MemHierarchy,
        core: CoreId,
        load: CommittedLoad,
        now: Cycle,
    ) -> Option<Cycle> {
        // Revised implementation: the update load starts at the visibility
        // point, overlapping with the commit lag; retirement only waits for
        // whatever is left of it (Section 6.5).
        if self.variant != InvisiSpecVariant::Revised {
            return None;
        }
        if !load.issued_spec || load.path.is_none() {
            return None;
        }
        let (done, path) = self.expose(mem, core, load, now);
        // The revised implementation waits only for the *validation
        // acknowledgment* from the coherence point (an L2 round trip): the
        // data itself already reached the core with the invisible load, so
        // the background refetch need not gate retirement. (The initial
        // estimate's bug was waiting for the full data return — see
        // `commit_load`.)
        if load.needs_validation || path != cleanupspec_mem::mshr::LoadPath::L1Hit {
            Some(done.min(now + self.validation_cap.max(mem.config().l2_effective_rt())))
        } else {
            None
        }
    }

    fn commit_load(
        &mut self,
        mem: &mut MemHierarchy,
        core: CoreId,
        load: CommittedLoad,
        now: Cycle,
    ) -> CommitAction {
        // Forwarded loads and loads issued non-speculatively need no redo;
        // the revised variant already exposed at the visibility point.
        if self.variant == InvisiSpecVariant::Revised || !load.issued_spec || load.path.is_none() {
            return CommitAction::Proceed;
        }
        // Initial estimate: the update load runs at commit, on the critical
        // path (the value-propagation behaviour of Section 6.5).
        let (done, _) = self.expose(mem, core, load, now);
        CommitAction::StallUntil(done)
    }

    fn on_squash(&mut self, _mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse {
        // Invisible loads left no trace; nothing to undo or orphan.
        SquashResponse {
            resume_at: info.now,
        }
    }

    fn reset_stats(&mut self) {
        self.update_loads = 0;
    }

    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        vec![("update_loads", self.update_loads)]
    }
}

/// Delay-on-miss baseline: speculative loads that HIT the L1 proceed (a
/// hit changes only replacement state), but speculative L1 misses are
/// refused and retried once unsquashable — the Conditional-Speculation /
/// delay-on-miss family of Section 7.3.2.
#[derive(Clone, Debug, Default)]
pub struct DelayOnMiss {
    next_load: u64,
    /// Speculative misses that were delayed.
    pub delayed_misses: u64,
}

impl DelayOnMiss {
    /// Creates the scheme.
    pub fn new() -> Self {
        DelayOnMiss::default()
    }
}

impl SpeculationScheme for DelayOnMiss {
    fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "delay-on-miss"
    }

    fn issue_load(
        &mut self,
        mem: &mut MemHierarchy,
        req: LoadIssue,
    ) -> Result<LoadOutcome, SimError> {
        self.next_load += 1;
        if req.is_spec && mem.l1(req.core).probe(req.line).is_none() {
            // A speculative L1 miss would change cache state: refuse it;
            // the pipeline retries once the load is unsquashable.
            self.delayed_misses += 1;
            return Ok(LoadOutcome {
                complete_at: req.now,
                path: cleanupspec_mem::mshr::LoadPath::L2Hit,
                token: None,
                deferred: true,
                provenance: None,
            });
        }
        mem.load(
            req.core,
            req.line,
            req.now,
            LoadReq::non_spec(LoadId(self.next_load)),
        )
    }

    fn commit_load(
        &mut self,
        _mem: &mut MemHierarchy,
        _core: CoreId,
        _load: CommittedLoad,
        _now: Cycle,
    ) -> CommitAction {
        CommitAction::Proceed
    }

    fn on_squash(&mut self, _mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse {
        SquashResponse {
            resume_at: info.now,
        }
    }

    fn reset_stats(&mut self) {
        self.delayed_misses = 0;
    }

    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        vec![("delayed_misses", self.delayed_misses)]
    }
}

/// Delay-based baseline: loads issue only once unsquashable. Related to
/// the delay-everything family the paper contrasts with (NDA, SpecShield;
/// Section 7.3.2).
#[derive(Clone, Debug, Default)]
pub struct DelaySpeculativeLoads {
    next_load: u64,
}

impl DelaySpeculativeLoads {
    /// Creates the delay-based scheme.
    pub fn new() -> Self {
        DelaySpeculativeLoads::default()
    }
}

impl SpeculationScheme for DelaySpeculativeLoads {
    fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "delay-spec-loads"
    }

    fn issue_policy(&self) -> LoadIssuePolicy {
        LoadIssuePolicy::WhenUnsquashable
    }

    fn issue_load(
        &mut self,
        mem: &mut MemHierarchy,
        req: LoadIssue,
    ) -> Result<LoadOutcome, SimError> {
        self.next_load += 1;
        mem.load(
            req.core,
            req.line,
            req.now,
            LoadReq::non_spec(LoadId(self.next_load)),
        )
    }

    fn commit_load(
        &mut self,
        _mem: &mut MemHierarchy,
        _core: CoreId,
        _load: CommittedLoad,
        _now: Cycle,
    ) -> CommitAction {
        CommitAction::Proceed
    }

    fn on_squash(&mut self, _mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse {
        SquashResponse {
            resume_at: info.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cleanupspec_mem::hierarchy::MemConfig;
    use cleanupspec_mem::types::LineAddr;

    fn mem() -> MemHierarchy {
        MemHierarchy::new(MemConfig::default())
    }

    fn issue(
        s: &mut dyn SpeculationScheme,
        m: &mut MemHierarchy,
        line: u64,
        now: Cycle,
    ) -> LoadOutcome {
        s.issue_load(
            m,
            LoadIssue {
                core: CoreId(0),
                line: LineAddr::new(line),
                now,
                is_spec: true,
            },
        )
        .expect("MSHR available")
    }

    #[test]
    fn cleanupspec_undo_restores_exact_cache_state() {
        let mut m = mem();
        let mut s = CleanupSpec::new();
        // Pre-fill a victim line non-speculatively.
        let victim = issue(&mut s, &mut m, 0x10, 0);
        m.advance(victim.complete_at);
        let sefe_v = m.collect(victim.token.unwrap()).unwrap();
        assert!(sefe_v.l1_fill);
        m.retire_load(CoreId(0), LineAddr::new(0x10));
        let before_l1 = m.l1_snapshot(CoreId(0));
        let before_l2 = m.l2_snapshot();

        // Transient load, executed, then squashed.
        let out = issue(&mut s, &mut m, 0x9999, 100);
        m.advance(out.complete_at);
        let sefe = m.collect(out.token.unwrap()).unwrap();
        let loads = [cleanupspec_core::scheme::SquashedLoad {
            line: Some(LineAddr::new(0x9999)),
            load_id: Some(LoadId(5)),
            state: SquashedLoadState::Executed {
                path: out.path,
                sefe,
            },
        }];
        let resp = s.on_squash(
            &mut m,
            SquashInfo {
                core: CoreId(0),
                mispredict_at: 300,
                now: 310,
                loads: &loads,
            },
        );
        assert!(resp.resume_at > 310, "cleanup takes time");
        assert_eq!(m.l1_snapshot(CoreId(0)), before_l1);
        assert_eq!(m.l2_snapshot(), before_l2);
        assert_eq!(s.stats().invalidates, 1);
    }

    #[test]
    fn cleanupspec_drops_inflight_for_free() {
        let mut m = mem();
        let mut s = CleanupSpec::new();
        let before = m.l2_snapshot();
        let out = issue(&mut s, &mut m, 0x777, 0);
        let loads = [cleanupspec_core::scheme::SquashedLoad {
            line: Some(LineAddr::new(0x777)),
            load_id: None,
            state: SquashedLoadState::Inflight {
                path: out.path,
                token: out.token,
            },
        }];
        let resp = s.on_squash(
            &mut m,
            SquashInfo {
                core: CoreId(0),
                mispredict_at: 5,
                now: 5,
                loads: &loads,
            },
        );
        // Only the epoch-bump ack is charged.
        assert_eq!(resp.resume_at, 5 + CleanupTiming::default().ack_latency);
        m.advance(out.complete_at + 10);
        assert_eq!(m.l2_snapshot(), before, "dropped fill left no trace");
        assert_eq!(s.stats().dropped_inflight, 1);
    }

    #[test]
    fn cleanupspec_undoes_fill_that_raced_the_deferred_cleanup() {
        // The load is inflight at squash time, but its fill lands while
        // cleanup waits for older correct-path loads (advance past
        // complete_at before on_squash). The install must still be
        // undone and the MSHR entry freed.
        let mut m = mem();
        let mut s = CleanupSpec::new();
        let before_l1 = m.l1_snapshot(CoreId(0));
        let before_l2 = m.l2_snapshot();
        let out = issue(&mut s, &mut m, 0x4242, 0);
        m.advance(out.complete_at + 1); // fill lands: entry now Filled
        assert!(
            m.l1(CoreId(0)).probe(LineAddr::new(0x4242)).is_some(),
            "precondition: the raced fill installed"
        );
        let loads = [cleanupspec_core::scheme::SquashedLoad {
            line: Some(LineAddr::new(0x4242)),
            load_id: None,
            state: SquashedLoadState::Inflight {
                path: out.path,
                token: out.token,
            },
        }];
        s.on_squash(
            &mut m,
            SquashInfo {
                core: CoreId(0),
                mispredict_at: 1,
                now: out.complete_at + 5,
                loads: &loads,
            },
        );
        assert_eq!(m.l1_snapshot(CoreId(0)), before_l1);
        assert_eq!(m.l2_snapshot(), before_l2);
        assert_eq!(s.stats().raced_fill_undos, 1);
        assert!(
            m.collect(out.token.unwrap()).is_none(),
            "the stuck MSHR entry was freed by the cleanup"
        );
        m.check_invariants().unwrap();
    }

    #[test]
    fn nonsecure_orphans_inflight_squashed_loads() {
        let mut m = mem();
        let mut s = NonSecure::new();
        let out = issue(&mut s, &mut m, 0x555, 0);
        let loads = [cleanupspec_core::scheme::SquashedLoad {
            line: Some(LineAddr::new(0x555)),
            load_id: None,
            state: SquashedLoadState::Inflight {
                path: out.path,
                token: out.token,
            },
        }];
        let resp = s.on_squash(
            &mut m,
            SquashInfo {
                core: CoreId(0),
                mispredict_at: 5,
                now: 5,
                loads: &loads,
            },
        );
        assert_eq!(resp.resume_at, 5, "no security stall");
        m.advance(out.complete_at + 1);
        assert!(
            m.l1(CoreId(0)).probe(LineAddr::new(0x555)).is_some(),
            "wrong-path fill landed (the leak)"
        );
    }

    #[test]
    fn naive_invalidate_skips_restores() {
        let mut m = mem();
        let mut s = NaiveInvalidate::new();
        let out = issue(&mut s, &mut m, 0x123, 0);
        m.advance(out.complete_at);
        let sefe = m.collect(out.token.unwrap()).unwrap();
        let loads = [cleanupspec_core::scheme::SquashedLoad {
            line: Some(LineAddr::new(0x123)),
            load_id: Some(LoadId(1)),
            state: SquashedLoadState::Executed {
                path: out.path,
                sefe,
            },
        }];
        s.on_squash(
            &mut m,
            SquashInfo {
                core: CoreId(0),
                mispredict_at: 200,
                now: 200,
                loads: &loads,
            },
        );
        assert!(m.l1(CoreId(0)).probe(LineAddr::new(0x123)).is_none());
        assert_eq!(s.stats().restores, 0, "naive mode never restores");
    }

    #[test]
    fn invisispec_redo_doubles_memory_traffic() {
        let mut m = mem();
        let mut s = InvisiSpec::new(InvisiSpecVariant::Initial);
        let line = LineAddr::new(0xabc);
        let out = issue(&mut s, &mut m, 0xabc, 0);
        assert!(out.token.is_none(), "invisible loads own no MSHR entry");
        m.advance(out.complete_at);
        assert!(m.l1(CoreId(0)).probe(line).is_none(), "invisible");
        // Commit: the update load re-fetches from DRAM and stalls commit.
        let action = s.commit_load(
            &mut m,
            CoreId(0),
            CommittedLoad {
                line,
                issued_spec: true,
                path: Some(out.path),
                needs_validation: false,
            },
            out.complete_at,
        );
        match action {
            CommitAction::StallUntil(c) => {
                assert!(c >= out.complete_at + m.config().l2_rt + m.config().dram_rt);
            }
            other => panic!("expected commit stall, got {other:?}"),
        }
        m.advance(out.complete_at + 500);
        assert!(m.l1(CoreId(0)).probe(line).is_some(), "update installed");
        assert_eq!(s.update_loads, 1);
        assert_eq!(m.mshr_occupancy(CoreId(0)), 0, "expose entry self-freed");
    }

    #[test]
    fn invisispec_revised_exposes_at_visibility_point() {
        let mut m = mem();
        let mut s = InvisiSpec::new(InvisiSpecVariant::Revised);
        let out = issue(&mut s, &mut m, 0xdef, 0);
        m.advance(out.complete_at);
        let load = CommittedLoad {
            line: LineAddr::new(0xdef),
            issued_spec: true,
            path: Some(out.path),
            needs_validation: false,
        };
        // The update starts when the load becomes unsquashable...
        let exposed = s.on_load_visible(&mut m, CoreId(0), load, out.complete_at);
        let done = exposed.expect("revised exposes at visibility point");
        assert!(done > out.complete_at, "update load takes time");
        // ...and commit itself adds nothing more.
        let action = s.commit_load(&mut m, CoreId(0), load, done);
        assert_eq!(action, CommitAction::Proceed);
        m.advance(done + 500);
        assert!(m.l1(CoreId(0)).probe(LineAddr::new(0xdef)).is_some());
        // The initial variant does NOT use the visibility hook.
        let mut si = InvisiSpec::new(InvisiSpecVariant::Initial);
        assert!(si.on_load_visible(&mut m, CoreId(0), load, 0).is_none());
    }

    #[test]
    fn delay_scheme_only_issues_at_head() {
        let s = DelaySpeculativeLoads::new();
        assert_eq!(s.issue_policy(), LoadIssuePolicy::WhenUnsquashable);
    }

    #[test]
    fn scheme_names_distinct() {
        let names = [
            NonSecure::new().name(),
            CleanupSpec::new().name(),
            NaiveInvalidate::new().name(),
            InvisiSpec::new(InvisiSpecVariant::Initial).name(),
            InvisiSpec::new(InvisiSpecVariant::Revised).name(),
            DelaySpeculativeLoads::new().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
