//! Security modes: named configurations bundling a speculation scheme with
//! the memory-hierarchy settings it requires.
//!
//! CleanupSpec is not just the undo engine — it also requires random L1
//! replacement, CEASER-randomized L2 indexing (with its 2-cycle latency
//! charge), and speculation-window protection (Sections 3.1–3.2). A
//! [`SecurityMode`] applies all of that consistently.

use crate::schemes::{
    CleanupSpec, CleanupTiming, DelayOnMiss, DelaySpeculativeLoads, InvisiSpec, InvisiSpecVariant,
    NaiveInvalidate, NonSecure,
};
use cleanupspec_core::scheme::SpeculationScheme;
use cleanupspec_mem::hierarchy::MemConfig;
use cleanupspec_mem::replacement::ReplacementKind;

/// The evaluated system configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SecurityMode {
    /// Insecure baseline (Table 4 as-is, LRU everywhere).
    NonSecure,
    /// The paper's scheme: undo + L1 random replacement + randomized L2 +
    /// window protection + GetS-Safe.
    CleanupSpec,
    /// Section 2.4.1 strawman: invalidate installs, never restore.
    NaiveInvalidate,
    /// InvisiSpec, initial-estimate implementation (~67.5% slowdown).
    InvisiSpecInitial,
    /// InvisiSpec, revised implementation (~15% slowdown).
    InvisiSpecRevised,
    /// Delay-based baseline: loads wait until unsquashable.
    DelaySpeculativeLoads,
    /// Delay-on-miss baseline: only speculative L1 misses wait
    /// (Conditional-Speculation family, Section 7.3.2).
    DelayOnMiss,
    /// CleanupSpec with a constant-time cleanup stall (the paper's stated
    /// future work in Section 4b).
    CleanupSpecConstantTime,
    /// CleanupSpec with a 2-way skewed randomized L2 (Skewed-CEASER /
    /// CEASER-S, the robust randomization variant the paper cites).
    CleanupSpecSkewed,
    /// Ablation for Table 1: non-secure scheme but with L1 random
    /// replacement only.
    L1RandomOnly,
    /// Ablation for Table 1: non-secure scheme but with randomized L2 only.
    L2RandomOnly,
    /// Ablation for Table 1: both randomizations, still no undo machinery.
    BothRandomOnly,
}

impl SecurityMode {
    /// The modes compared in Table 6 and Figure 12.
    pub const MAIN: [SecurityMode; 4] = [
        SecurityMode::NonSecure,
        SecurityMode::CleanupSpec,
        SecurityMode::InvisiSpecInitial,
        SecurityMode::InvisiSpecRevised,
    ];

    /// Every mode.
    pub const ALL: [SecurityMode; 12] = [
        SecurityMode::NonSecure,
        SecurityMode::CleanupSpec,
        SecurityMode::NaiveInvalidate,
        SecurityMode::InvisiSpecInitial,
        SecurityMode::InvisiSpecRevised,
        SecurityMode::DelaySpeculativeLoads,
        SecurityMode::DelayOnMiss,
        SecurityMode::CleanupSpecConstantTime,
        SecurityMode::CleanupSpecSkewed,
        SecurityMode::L1RandomOnly,
        SecurityMode::L2RandomOnly,
        SecurityMode::BothRandomOnly,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SecurityMode::NonSecure => "non-secure",
            SecurityMode::CleanupSpec => "cleanupspec",
            SecurityMode::NaiveInvalidate => "naive-invalidate",
            SecurityMode::InvisiSpecInitial => "invisispec-initial",
            SecurityMode::InvisiSpecRevised => "invisispec-revised",
            SecurityMode::DelaySpeculativeLoads => "delay-spec-loads",
            SecurityMode::DelayOnMiss => "delay-on-miss",
            SecurityMode::CleanupSpecConstantTime => "cleanupspec-ct",
            SecurityMode::CleanupSpecSkewed => "cleanupspec-skewed",
            SecurityMode::L1RandomOnly => "l1-random-repl",
            SecurityMode::L2RandomOnly => "l2-randomized",
            SecurityMode::BothRandomOnly => "l1+l2-randomized",
        }
    }

    /// Parses a mode back from its [`Self::name`] label (checkpoint files,
    /// CLI mode filters).
    pub fn from_name(s: &str) -> Option<SecurityMode> {
        SecurityMode::ALL.into_iter().find(|m| m.name() == s)
    }

    /// Applies this mode's cache-hierarchy requirements to a base
    /// configuration (Section 3.2 and Table 1).
    pub fn apply_mem_config(self, mut cfg: MemConfig) -> MemConfig {
        match self {
            SecurityMode::NonSecure
            | SecurityMode::InvisiSpecInitial
            | SecurityMode::InvisiSpecRevised
            | SecurityMode::DelayOnMiss
            | SecurityMode::DelaySpeculativeLoads => cfg,
            SecurityMode::CleanupSpec
            | SecurityMode::CleanupSpecConstantTime
            | SecurityMode::NaiveInvalidate => {
                cfg.l1_replacement = ReplacementKind::Random;
                cfg.l2_randomized = true;
                cfg.window_protection = true;
                cfg
            }
            SecurityMode::CleanupSpecSkewed => {
                cfg.l1_replacement = ReplacementKind::Random;
                cfg.l2_randomized = true;
                cfg.l2_skews = 2;
                cfg.l2_replacement = ReplacementKind::Random;
                cfg.window_protection = true;
                cfg
            }
            SecurityMode::L1RandomOnly => {
                cfg.l1_replacement = ReplacementKind::Random;
                cfg
            }
            SecurityMode::L2RandomOnly => {
                cfg.l2_randomized = true;
                cfg
            }
            SecurityMode::BothRandomOnly => {
                cfg.l1_replacement = ReplacementKind::Random;
                cfg.l2_randomized = true;
                cfg
            }
        }
    }

    /// Groups `modes` into hardware equivalence classes: modes in the
    /// same class map `base` to the *same* [`MemConfig`] under
    /// [`Self::apply_mem_config`], so their warmup phases exercise
    /// identical cache hardware and one warmed cs-snap snapshot can be
    /// forked across the whole class (`cs-bench --shared-warmup`).
    ///
    /// Classes appear in order of their first member; members keep input
    /// order. Duplicate modes land in one class twice — callers pass
    /// deduplicated mode lists.
    pub fn mem_config_classes(modes: &[SecurityMode], base: &MemConfig) -> Vec<Vec<SecurityMode>> {
        let mut classes: Vec<(MemConfig, Vec<SecurityMode>)> = Vec::new();
        for &m in modes {
            let cfg = m.apply_mem_config(base.clone());
            match classes.iter_mut().find(|(c, _)| *c == cfg) {
                Some((_, members)) => members.push(m),
                None => classes.push((cfg, vec![m])),
            }
        }
        classes.into_iter().map(|(_, members)| members).collect()
    }

    /// Builds the speculation scheme for one core.
    pub fn build_scheme(self) -> Box<dyn SpeculationScheme> {
        match self {
            SecurityMode::NonSecure
            | SecurityMode::L1RandomOnly
            | SecurityMode::L2RandomOnly
            | SecurityMode::BothRandomOnly => Box::new(NonSecure::new()),
            SecurityMode::CleanupSpec | SecurityMode::CleanupSpecSkewed => {
                Box::new(CleanupSpec::new())
            }
            SecurityMode::CleanupSpecConstantTime => {
                Box::new(CleanupSpec::with_timing(CleanupTiming {
                    constant_time: Some(40),
                    ..CleanupTiming::default()
                }))
            }
            SecurityMode::DelayOnMiss => Box::new(DelayOnMiss::new()),
            SecurityMode::NaiveInvalidate => Box::new(NaiveInvalidate::new()),
            SecurityMode::InvisiSpecInitial => {
                Box::new(InvisiSpec::new(InvisiSpecVariant::Initial))
            }
            SecurityMode::InvisiSpecRevised => {
                Box::new(InvisiSpec::new(InvisiSpecVariant::Revised))
            }
            SecurityMode::DelaySpeculativeLoads => Box::new(DelaySpeculativeLoads::new()),
        }
    }

    /// Whether this mode prevents squashed loads from leaking through the
    /// install channel (Flush+Reload).
    pub fn defends_install_channel(self) -> bool {
        matches!(
            self,
            SecurityMode::CleanupSpec
                | SecurityMode::CleanupSpecConstantTime
                | SecurityMode::CleanupSpecSkewed
                | SecurityMode::NaiveInvalidate
                | SecurityMode::InvisiSpecInitial
                | SecurityMode::InvisiSpecRevised
                | SecurityMode::DelayOnMiss
                | SecurityMode::DelaySpeculativeLoads
        )
    }

    /// Whether this mode also closes the L1 eviction channel
    /// (Prime+Probe): requires restoration or invisibility, not just
    /// invalidation.
    pub fn defends_eviction_channel(self) -> bool {
        matches!(
            self,
            SecurityMode::CleanupSpec
                | SecurityMode::CleanupSpecConstantTime
                | SecurityMode::CleanupSpecSkewed
                | SecurityMode::InvisiSpecInitial
                | SecurityMode::InvisiSpecRevised
                | SecurityMode::DelayOnMiss
                | SecurityMode::DelaySpeculativeLoads
        )
    }
}

impl std::fmt::Display for SecurityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanupspec_mode_requires_randomization() {
        let cfg = SecurityMode::CleanupSpec.apply_mem_config(MemConfig::default());
        assert_eq!(cfg.l1_replacement, ReplacementKind::Random);
        assert!(cfg.l2_randomized);
        assert!(cfg.window_protection);
        // The CEASER latency charge applies.
        assert_eq!(cfg.l2_effective_rt(), cfg.l2_rt + cfg.l2_crypto_penalty);
    }

    #[test]
    fn nonsecure_mode_is_table4_baseline() {
        let cfg = SecurityMode::NonSecure.apply_mem_config(MemConfig::default());
        assert_eq!(cfg.l1_replacement, ReplacementKind::Lru);
        assert!(!cfg.l2_randomized);
        assert!(!cfg.window_protection);
    }

    #[test]
    fn table1_ablations_select_single_knobs() {
        let l1 = SecurityMode::L1RandomOnly.apply_mem_config(MemConfig::default());
        assert_eq!(l1.l1_replacement, ReplacementKind::Random);
        assert!(!l1.l2_randomized);
        let l2 = SecurityMode::L2RandomOnly.apply_mem_config(MemConfig::default());
        assert_eq!(l2.l1_replacement, ReplacementKind::Lru);
        assert!(l2.l2_randomized);
    }

    #[test]
    fn scheme_names_match_modes() {
        for m in SecurityMode::ALL {
            let s = m.build_scheme();
            assert!(!s.name().is_empty());
        }
        assert_eq!(
            SecurityMode::CleanupSpec.build_scheme().name(),
            "cleanupspec"
        );
    }

    #[test]
    fn skewed_mode_configures_ceaser_s() {
        let cfg = SecurityMode::CleanupSpecSkewed.apply_mem_config(MemConfig::default());
        assert!(cfg.l2_randomized);
        assert_eq!(cfg.l2_skews, 2);
        assert_eq!(cfg.l1_replacement, ReplacementKind::Random);
    }

    #[test]
    fn mem_config_classes_group_identical_hardware() {
        let base = MemConfig::default();
        let classes = SecurityMode::mem_config_classes(&SecurityMode::MAIN, &base);
        // NonSecure + both InvisiSpec variants share the baseline cache
        // hardware; CleanupSpec randomizes L1/L2 on its own.
        assert_eq!(classes.len(), 2);
        assert_eq!(
            classes[0],
            vec![
                SecurityMode::NonSecure,
                SecurityMode::InvisiSpecInitial,
                SecurityMode::InvisiSpecRevised
            ]
        );
        assert_eq!(classes[1], vec![SecurityMode::CleanupSpec]);

        // Every mode lands in exactly one class, in input order.
        let all = SecurityMode::ALL;
        let classes = SecurityMode::mem_config_classes(&all, &base);
        let flattened: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(flattened, all.len());
        for class in &classes {
            let want = class[0].apply_mem_config(base.clone());
            for m in class {
                assert_eq!(m.apply_mem_config(base.clone()), want, "{m}");
            }
        }
    }

    #[test]
    fn defense_matrix() {
        assert!(!SecurityMode::NonSecure.defends_install_channel());
        assert!(SecurityMode::NaiveInvalidate.defends_install_channel());
        assert!(
            !SecurityMode::NaiveInvalidate.defends_eviction_channel(),
            "the strawman leaves Prime+Probe open (Section 2.4.1)"
        );
        assert!(SecurityMode::CleanupSpec.defends_eviction_channel());
    }
}
