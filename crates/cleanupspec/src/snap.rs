//! `cs-snap-v1`: the serialized, self-validating checkpoint format.
//!
//! While [`crate::sim::Snapshot`] is the *in-memory* half of cs-snap (a
//! deep copy of the whole machine, forked and restored within one
//! process), this module is the *on-disk* half: a versioned cache of
//! **completed** run results keyed by the full simulation configuration
//! `(workload, mode, insts, seed, warmup)`. `repro_all`'s figure binaries
//! re-simulate many identical configurations (the NonSecure baseline alone
//! is re-run by most figures); with `cs-bench --checkpoint-dir DIR` each
//! unique configuration is simulated once and every later request is
//! served from its checkpoint file.
//!
//! Design rules:
//!
//! - **Full fidelity.** Unlike the display-oriented `report_to_json`, this
//!   serialization is lossless: every counter, all 65 histogram buckets,
//!   the `u128` sample sums (as decimal strings), the CPI stack, and the
//!   per-scheme counters round-trip exactly.
//! - **Self-validating.** The file stores an FNV-1a digest of the
//!   canonical report JSON. On load the parsed report is re-serialized
//!   and re-digested; any mismatch (corruption, format drift, f64
//!   precision loss) rejects the file and the caller re-simulates.
//!   A version bump in `FORMAT` likewise invalidates old files.
//! - **Successful runs only.** A `CycleLimit` or `Livelock` stop is not a
//!   result, it is a failure (and carries a diagnostic dump this format
//!   does not represent); [`write_checkpoint`] refuses to cache it.

use crate::modes::SecurityMode;
use crate::sim::SimReport;
use cleanupspec_core::stats::{CoreStats, CpiStack, StallCause};
use cleanupspec_core::system::StopReason;
use cleanupspec_mem::stats::{MemStats, MsgClass, Traffic};
use cleanupspec_obs::{Histogram, JsonValue, JsonWriter};

/// Format tag; bump on any schema change to invalidate stale caches.
/// v2: per-core `episode_duration` / `episode_loads` histograms.
pub const FORMAT: &str = "cs-snap-v2";

/// The complete simulation configuration a checkpoint caches.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckpointKey {
    /// Workload name (the bench suite's stable workload id).
    pub workload: String,
    /// Security mode simulated.
    pub mode: SecurityMode,
    /// Measured-region instruction budget.
    pub insts: u64,
    /// Hierarchy seed.
    pub seed: u64,
    /// Warmup instruction budget (0 when the run had no warmup phase).
    pub warmup: u64,
}

impl CheckpointKey {
    /// Deterministic file name for this key, safe for any filesystem:
    /// non-alphanumeric workload characters are mapped to `_`.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .workload
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!(
            "{}-{}-i{}-s{}-w{}.json",
            safe,
            self.mode.name(),
            self.insts,
            self.seed,
            self.warmup
        )
    }
}

/// FNV-1a 64-bit over the canonical report JSON — cheap, dependency-free,
/// and plenty to detect corruption or precision loss (this is an
/// integrity check, not a security boundary). Public because the bench
/// crate's artifact store and campaign journal reuse the same digest for
/// their sidecar checksums and per-record CRCs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn write_histogram(w: &mut JsonWriter, key: &str, h: &Histogram) {
    let (counts, total, sum, max) = h.raw_parts();
    w.open_object(Some(key));
    w.open_array("counts");
    for &c in counts.iter() {
        w.open_object(None).int("n", c).close_object();
    }
    w.close_array()
        .int("total", total)
        .string("sum", &sum.to_string())
        .int("max", max)
        .close_object();
}

fn parse_histogram(v: &JsonValue) -> Result<Histogram, String> {
    let arr = v
        .get("counts")
        .and_then(JsonValue::as_arr)
        .ok_or("histogram: missing counts")?;
    if arr.len() != 65 {
        return Err(format!("histogram: {} buckets, want 65", arr.len()));
    }
    let mut counts = [0u64; 65];
    for (i, b) in arr.iter().enumerate() {
        counts[i] = b
            .get("n")
            .and_then(JsonValue::as_u64)
            .ok_or("histogram: bad bucket")?;
    }
    let total = req_u64(v, "total")?;
    let sum: u128 = v
        .get("sum")
        .and_then(JsonValue::as_str)
        .ok_or("histogram: missing sum")?
        .parse()
        .map_err(|e| format!("histogram: bad sum: {e}"))?;
    let max = req_u64(v, "max")?;
    Ok(Histogram::from_raw_parts(counts, total, sum, max))
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

/// `(label, getter, setter)` triple: one table row drives both the write
/// and the read direction so the two cannot drift apart.
type FieldRow<S> = (&'static str, fn(&S) -> u64, fn(&mut S, u64));

/// A field table for every scalar `MemStats` field.
const MEM_FIELDS: &[FieldRow<MemStats>] = &[
    ("l1_hits", |s| s.l1_hits, |s, v| s.l1_hits = v),
    ("l2_hits", |s| s.l2_hits, |s, v| s.l2_hits = v),
    ("remote_hits", |s| s.remote_hits, |s, v| s.remote_hits = v),
    ("mem_loads", |s| s.mem_loads, |s, v| s.mem_loads = v),
    (
        "dummy_misses",
        |s| s.dummy_misses,
        |s, v| s.dummy_misses = v,
    ),
    (
        "gets_safe_refusals",
        |s| s.gets_safe_refusals,
        |s, v| s.gets_safe_refusals = v,
    ),
    ("stores", |s| s.stores, |s, v| s.stores = v),
    (
        "store_upgrades",
        |s| s.store_upgrades,
        |s, v| s.store_upgrades = v,
    ),
    (
        "l1_evictions",
        |s| s.l1_evictions,
        |s, v| s.l1_evictions = v,
    ),
    (
        "l2_evictions",
        |s| s.l2_evictions,
        |s, v| s.l2_evictions = v,
    ),
    ("back_invals", |s| s.back_invals, |s, v| s.back_invals = v),
    (
        "dropped_fills",
        |s| s.dropped_fills,
        |s, v| s.dropped_fills = v,
    ),
    (
        "orphan_fills",
        |s| s.orphan_fills,
        |s, v| s.orphan_fills = v,
    ),
    (
        "cleanup_invals",
        |s| s.cleanup_invals,
        |s, v| s.cleanup_invals = v,
    ),
    (
        "cleanup_restores",
        |s| s.cleanup_restores,
        |s, v| s.cleanup_restores = v,
    ),
    (
        "transient_inval_misses",
        |s| s.transient_inval_misses,
        |s, v| s.transient_inval_misses = v,
    ),
    (
        "random_repl_misses",
        |s| s.random_repl_misses,
        |s, v| s.random_repl_misses = v,
    ),
    (
        "class_safe_cache",
        |s| s.class_safe_cache,
        |s, v| s.class_safe_cache = v,
    ),
    (
        "class_remote_em",
        |s| s.class_remote_em,
        |s, v| s.class_remote_em = v,
    ),
    ("class_dram", |s| s.class_dram, |s, v| s.class_dram = v),
];

/// Same table for scalar `CoreStats` fields.
const CORE_FIELDS: &[FieldRow<CoreStats>] = &[
    ("cycles", |s| s.cycles, |s, v| s.cycles = v),
    (
        "committed_insts",
        |s| s.committed_insts,
        |s, v| s.committed_insts = v,
    ),
    (
        "committed_loads",
        |s| s.committed_loads,
        |s, v| s.committed_loads = v,
    ),
    (
        "committed_stores",
        |s| s.committed_stores,
        |s, v| s.committed_stores = v,
    ),
    (
        "committed_branches",
        |s| s.committed_branches,
        |s, v| s.committed_branches = v,
    ),
    ("mispredicts", |s| s.mispredicts, |s, v| s.mispredicts = v),
    ("squashes", |s| s.squashes, |s, v| s.squashes = v),
    (
        "squashed_insts",
        |s| s.squashed_insts,
        |s, v| s.squashed_insts = v,
    ),
    ("squashed_ni", |s| s.squashed_ni, |s, v| s.squashed_ni = v),
    (
        "squashed_l1h",
        |s| s.squashed_l1h,
        |s, v| s.squashed_l1h = v,
    ),
    (
        "squashed_l2h",
        |s| s.squashed_l2h,
        |s, v| s.squashed_l2h = v,
    ),
    (
        "squashed_l2m",
        |s| s.squashed_l2m,
        |s, v| s.squashed_l2m = v,
    ),
    (
        "squashed_miss_inflight",
        |s| s.squashed_miss_inflight,
        |s, v| s.squashed_miss_inflight = v,
    ),
    (
        "squashed_miss_executed",
        |s| s.squashed_miss_executed,
        |s, v| s.squashed_miss_executed = v,
    ),
    (
        "squash_wait_cycles",
        |s| s.squash_wait_cycles,
        |s, v| s.squash_wait_cycles = v,
    ),
    (
        "squash_cleanup_cycles",
        |s| s.squash_cleanup_cycles,
        |s, v| s.squash_cleanup_cycles = v,
    ),
    (
        "deferred_loads",
        |s| s.deferred_loads,
        |s, v| s.deferred_loads = v,
    ),
    (
        "commit_stall_cycles",
        |s| s.commit_stall_cycles,
        |s, v| s.commit_stall_cycles = v,
    ),
    (
        "fetch_stall_cycles",
        |s| s.fetch_stall_cycles,
        |s, v| s.fetch_stall_cycles = v,
    ),
    (
        "spec_issued_loads",
        |s| s.spec_issued_loads,
        |s, v| s.spec_issued_loads = v,
    ),
    (
        "window_extend_msgs",
        |s| s.window_extend_msgs,
        |s, v| s.window_extend_msgs = v,
    ),
    (
        "forwarded_loads",
        |s| s.forwarded_loads,
        |s, v| s.forwarded_loads = v,
    ),
    ("faults", |s| s.faults, |s, v| s.faults = v),
];

/// Canonical full-fidelity JSON for one report. This exact string is what
/// the checkpoint digest covers; it is also a convenient byte-identical
/// equality witness for the resume-exactness tests.
pub fn report_json(r: &SimReport) -> String {
    let mut w = JsonWriter::new();
    w.open_object(None)
        .string("mode", r.mode.name())
        .int("cycles", r.cycles);
    w.string(
        "stop",
        match &r.stop {
            None => "none",
            Some(s) => s.label(),
        },
    );
    w.open_object(Some("mem"));
    for (name, get, _) in MEM_FIELDS {
        w.int(name, get(&r.mem));
    }
    w.open_array("load_latency");
    for h in &r.mem.load_latency {
        w.open_object(None);
        write_histogram(&mut w, "h", h);
        w.close_object();
    }
    w.close_array();
    write_histogram(&mut w, "mshr_occupancy", &r.mem.mshr_occupancy);
    write_histogram(&mut w, "sefe_occupancy", &r.mem.sefe_occupancy);
    w.close_object();
    w.open_object(Some("traffic"));
    for class in MsgClass::ALL {
        w.int(&class.to_string(), r.traffic.get(class));
    }
    w.close_object();
    w.open_array("cores");
    for c in &r.cores {
        w.open_object(None);
        for (name, get, _) in CORE_FIELDS {
            w.int(name, get(c));
        }
        write_histogram(&mut w, "cleanup_duration", &c.cleanup_duration);
        write_histogram(&mut w, "episode_duration", &c.episode_duration);
        write_histogram(&mut w, "episode_loads", &c.episode_loads);
        w.open_object(Some("cpi_stack"));
        for (cause, n) in c.cpi_stack.iter() {
            w.int(cause.name(), n);
        }
        w.close_object().close_object();
    }
    w.close_array();
    w.open_array("scheme_counters");
    for core in &r.scheme_counters {
        w.open_object(None).open_array("counters");
        for (k, v) in core {
            w.open_object(None)
                .string("name", k)
                .int("value", *v)
                .close_object();
        }
        w.close_array().close_object();
    }
    w.close_array();
    w.close_object();
    w.finish()
}

/// Parses a report serialized by [`report_json`].
pub fn parse_report(v: &JsonValue) -> Result<SimReport, String> {
    let mode_name = v
        .get("mode")
        .and_then(JsonValue::as_str)
        .ok_or("report: missing mode")?;
    let mode =
        SecurityMode::from_name(mode_name).ok_or_else(|| format!("unknown mode '{mode_name}'"))?;
    let cycles = req_u64(v, "cycles")?;
    let stop = match v.get("stop").and_then(JsonValue::as_str) {
        Some("none") | None => None,
        Some("all-halted") => Some(StopReason::AllHalted),
        Some("inst-limit") => Some(StopReason::InstLimit),
        Some(other) => return Err(format!("uncacheable stop reason '{other}'")),
    };

    let mv = v.get("mem").ok_or("report: missing mem")?;
    let mut mem = MemStats::default();
    for (name, _, set) in MEM_FIELDS {
        set(&mut mem, req_u64(mv, name)?);
    }
    let lat = mv
        .get("load_latency")
        .and_then(JsonValue::as_arr)
        .ok_or("mem: missing load_latency")?;
    if lat.len() != mem.load_latency.len() {
        return Err("mem: wrong load_latency arity".to_string());
    }
    for (i, entry) in lat.iter().enumerate() {
        mem.load_latency[i] = parse_histogram(entry.get("h").ok_or("mem: bad latency entry")?)?;
    }
    mem.mshr_occupancy = parse_histogram(mv.get("mshr_occupancy").ok_or("mem: missing mshr")?)?;
    mem.sefe_occupancy = parse_histogram(mv.get("sefe_occupancy").ok_or("mem: missing sefe")?)?;

    let tv = v.get("traffic").ok_or("report: missing traffic")?;
    let mut traffic = Traffic::default();
    for class in MsgClass::ALL {
        traffic.add(class, req_u64(tv, &class.to_string())?);
    }

    let mut cores = Vec::new();
    for cv in v
        .get("cores")
        .and_then(JsonValue::as_arr)
        .ok_or("report: missing cores")?
    {
        let mut c = CoreStats::default();
        for (name, _, set) in CORE_FIELDS {
            set(&mut c, req_u64(cv, name)?);
        }
        c.cleanup_duration =
            parse_histogram(cv.get("cleanup_duration").ok_or("core: missing hist")?)?;
        c.episode_duration =
            parse_histogram(cv.get("episode_duration").ok_or("core: missing hist")?)?;
        c.episode_loads = parse_histogram(cv.get("episode_loads").ok_or("core: missing hist")?)?;
        let sv = cv.get("cpi_stack").ok_or("core: missing cpi_stack")?;
        let mut stack = CpiStack::new();
        for cause in StallCause::ALL {
            stack.set(cause, req_u64(sv, cause.name())?);
        }
        c.cpi_stack = stack;
        cores.push(c);
    }

    let mut scheme_counters = Vec::new();
    for core in v
        .get("scheme_counters")
        .and_then(JsonValue::as_arr)
        .ok_or("report: missing scheme_counters")?
    {
        let mut counters = Vec::new();
        for entry in core
            .get("counters")
            .and_then(JsonValue::as_arr)
            .ok_or("scheme_counters: bad entry")?
        {
            counters.push((
                entry
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("counter: missing name")?
                    .to_string(),
                req_u64(entry, "value")?,
            ));
        }
        scheme_counters.push(counters);
    }

    Ok(SimReport {
        mode,
        cycles,
        stop,
        mem,
        traffic,
        cores,
        scheme_counters,
    })
}

/// Serializes a completed run as a checkpoint document.
///
/// Returns `None` when the report is not cacheable: the run never
/// completed (`stop` is `None`) or stopped unsuccessfully (cycle-limit,
/// livelock) — failures must be re-simulated, never replayed from cache.
pub fn write_checkpoint(key: &CheckpointKey, report: &SimReport) -> Option<String> {
    if !report.stop.as_ref().is_some_and(StopReason::is_success) {
        return None;
    }
    let body = report_json(report);
    let digest = fnv1a64(body.as_bytes());
    let mut w = JsonWriter::new();
    w.open_object(None)
        .string("format", FORMAT)
        .string("workload", &key.workload)
        .string("mode", key.mode.name())
        .int("insts", key.insts)
        // Decimal string, not a JSON number: seeds span the full u64 range
        // and the loader's f64-backed parser is only exact up to 2^53.
        .string("seed", &key.seed.to_string())
        .int("warmup", key.warmup)
        .string("digest", &format!("{digest:016x}"))
        .close_object();
    // Embed the canonical body verbatim so the digest covers the exact
    // bytes a loader will re-derive.
    let head = w.finish();
    let head = head.strip_suffix('}').expect("writer closes the object");
    Some(format!("{head},\"report\":{body}}}"))
}

/// Loads a checkpoint document, validating format, key, and digest.
///
/// Any mismatch is an `Err` — the caller treats it as a cache miss and
/// re-simulates. In particular the parsed report is re-serialized and
/// re-digested, so a file whose numbers cannot round-trip exactly (e.g.
/// hand-edited, truncated, or from a drifted schema) is rejected rather
/// than served.
pub fn read_checkpoint(text: &str, key: &CheckpointKey) -> Result<SimReport, String> {
    let doc = JsonValue::parse(text)?;
    let field = |k: &str| {
        doc.get(k)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("checkpoint: missing '{k}'"))
    };
    if field("format")? != FORMAT {
        return Err(format!("checkpoint: format is not {FORMAT}"));
    }
    if field("workload")? != key.workload
        || field("mode")? != key.mode.name()
        || req_u64(&doc, "insts")? != key.insts
        || field("seed")?.parse::<u64>().ok() != Some(key.seed)
        || req_u64(&doc, "warmup")? != key.warmup
    {
        return Err("checkpoint: key mismatch".to_string());
    }
    let report = parse_report(doc.get("report").ok_or("checkpoint: missing report")?)?;
    let body = report_json(&report);
    let digest = format!("{:016x}", fnv1a64(body.as_bytes()));
    if digest != field("digest")? {
        return Err("checkpoint: digest mismatch (corrupt or lossy file)".to_string());
    }
    if report.mode != key.mode {
        return Err("checkpoint: report mode disagrees with key".to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimBuilder;
    use cleanupspec_core::isa::{ProgramBuilder, Reg};

    fn key() -> CheckpointKey {
        CheckpointKey {
            workload: "tiny/loads".to_string(),
            mode: SecurityMode::CleanupSpec,
            insts: 1000,
            seed: 7,
            warmup: 0,
        }
    }

    fn completed_report() -> SimReport {
        let mut b = ProgramBuilder::new("tiny");
        b.movi(Reg(1), 0x4000);
        b.load(Reg(2), Reg(1), 0);
        b.load(Reg(3), Reg(1), 256);
        b.halt();
        let mut sim = SimBuilder::new(SecurityMode::CleanupSpec)
            .program(b.build())
            .build();
        sim.run_to_completion();
        sim.report()
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let r = completed_report();
        let text = write_checkpoint(&key(), &r).expect("successful run is cacheable");
        let back = read_checkpoint(&text, &key()).expect("roundtrip");
        assert_eq!(report_json(&r), report_json(&back));
        assert_eq!(back.mode, r.mode);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.stop, r.stop);
    }

    #[test]
    fn unsuccessful_runs_are_not_cacheable() {
        let mut r = completed_report();
        r.stop = Some(StopReason::CycleLimit);
        assert!(write_checkpoint(&key(), &r).is_none());
        r.stop = None;
        assert!(write_checkpoint(&key(), &r).is_none());
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let r = completed_report();
        let text = write_checkpoint(&key(), &r).unwrap();
        let mut other = key();
        other.seed = 8;
        assert!(read_checkpoint(&text, &other).is_err());
        let mut other = key();
        other.mode = SecurityMode::NonSecure;
        assert!(read_checkpoint(&text, &other).is_err());
    }

    #[test]
    fn full_range_seeds_roundtrip_exactly() {
        // Seeds above 2^53 are not representable in the parser's f64
        // numbers; the string encoding must keep them exact.
        let r = completed_report();
        let mut k = key();
        k.seed = u64::MAX - 2019;
        let text = write_checkpoint(&k, &r).unwrap();
        read_checkpoint(&text, &k).expect("exact seed match");
        let mut near = k.clone();
        near.seed -= 1;
        assert!(read_checkpoint(&text, &near).is_err());
    }

    #[test]
    fn corruption_is_rejected_by_digest() {
        let r = completed_report();
        let text = write_checkpoint(&key(), &r).unwrap();
        // Flip one digit inside the embedded report body.
        let idx = text.find("\"report\":").unwrap() + 20;
        let mut bytes = text.into_bytes();
        for b in &mut bytes[idx..] {
            if b.is_ascii_digit() {
                *b = if *b == b'9' { b'0' } else { *b + 1 };
                break;
            }
        }
        let corrupt = String::from_utf8(bytes).unwrap();
        assert!(read_checkpoint(&corrupt, &key()).is_err());
    }

    #[test]
    fn file_name_is_sanitized_and_unique_per_key() {
        let a = key().file_name();
        assert!(a.starts_with("tiny_loads-cleanupspec-i1000-s7-w0"));
        let mut k2 = key();
        k2.warmup = 5;
        assert_ne!(a, k2.file_name());
    }
}
