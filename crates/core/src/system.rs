//! The system runner: one or more pipelines over a shared memory hierarchy
//! and a shared architectural data memory.

use crate::datamem::DataMem;
use crate::isa::Program;
use crate::pipeline::{CoreConfig, Pipeline};
use crate::scheme::SpeculationScheme;
use crate::stats::CoreStats;
use cleanupspec_mem::hierarchy::MemHierarchy;
use cleanupspec_mem::types::{CoreId, Cycle};
use std::sync::Arc;

/// Stop conditions for [`System::run`].
#[derive(Clone, Copy, Debug)]
pub struct RunLimits {
    /// Hard cycle budget.
    pub max_cycles: Cycle,
    /// Stop once every core has committed at least this many instructions
    /// (or halted). `u64::MAX` disables the limit.
    pub max_insts_per_core: u64,
    /// Forward-progress watchdog: if no core commits an instruction for
    /// this many cycles, the run stops with [`StopReason::Livelock`] and a
    /// diagnostic dump. `None` disables it. The default (200k cycles) is
    /// orders of magnitude above any legitimate commit gap in this model
    /// (DRAM round trips and cleanup stalls are hundreds of cycles).
    pub watchdog: Option<Cycle>,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_cycles: 50_000_000,
            max_insts_per_core: u64::MAX,
            watchdog: Some(200_000),
        }
    }
}

/// Why a run stopped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// Every core committed `Halt`.
    AllHalted,
    /// Every core reached the instruction budget (or halted).
    InstLimit,
    /// The cycle budget expired before the workload finished — the run is
    /// incomplete, and harnesses must report it as a failure, not silently
    /// treat it like completion.
    CycleLimit,
    /// The forward-progress watchdog fired: no core committed an
    /// instruction for `RunLimits::watchdog` cycles. Carries a snapshot of
    /// where every core was stuck.
    Livelock(Box<DiagnosticDump>),
}

impl StopReason {
    /// Short stable label (verdict lines, event fields, reports).
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::AllHalted => "all-halted",
            StopReason::InstLimit => "inst-limit",
            StopReason::CycleLimit => "cycle-limit",
            StopReason::Livelock(_) => "livelock",
        }
    }

    /// Whether the run ended the way a finite workload should: everything
    /// halted, or an intentional instruction budget was reached. Cycle-limit
    /// exhaustion and livelock are failures.
    pub fn is_success(&self) -> bool {
        matches!(self, StopReason::AllHalted | StopReason::InstLimit)
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Livelock(d) => write!(f, "livelock ({})", d.one_line()),
            other => f.write_str(other.label()),
        }
    }
}

/// Snapshot of per-core progress state taken when the watchdog fires.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiagnosticDump {
    /// Cycle at which the watchdog fired.
    pub at: Cycle,
    /// Cycle of the last observed commit (on any core).
    pub last_commit_at: Cycle,
    /// The watchdog threshold that fired.
    pub watchdog: Cycle,
    /// Per-core diagnostics, one entry per core.
    pub cores: Vec<CoreDiag>,
}

/// One core's slice of a [`DiagnosticDump`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoreDiag {
    /// Core index.
    pub core: usize,
    /// Whether the core already halted.
    pub halted: bool,
    /// Instructions committed so far.
    pub committed_insts: u64,
    /// Live ROB entries.
    pub rob_len: usize,
    /// `(seq, pc)` of the ROB head — the instruction the core is stuck
    /// behind — if the ROB is non-empty.
    pub rob_head: Option<(u64, u64)>,
    /// Loads inflight in the load queue.
    pub inflight_loads: usize,
    /// Occupied MSHR entries.
    pub mshr_occupancy: usize,
    /// Live speculation-tagged MSHR entries (pending SEFEs).
    pub pending_sefes: usize,
    /// The core's current CleanupSpec epoch.
    pub epoch: u64,
}

impl DiagnosticDump {
    /// Compact single-line form for verdicts and error strings.
    pub fn one_line(&self) -> String {
        let stuck: Vec<String> = self
            .cores
            .iter()
            .filter(|c| !c.halted)
            .map(|c| {
                format!(
                    "core{}: rob={} head={} mshr={} sefes={}",
                    c.core,
                    c.rob_len,
                    match c.rob_head {
                        Some((seq, pc)) => format!("#{seq}@pc={pc:#x}"),
                        None => "-".to_string(),
                    },
                    c.mshr_occupancy,
                    c.pending_sefes,
                )
            })
            .collect();
        format!(
            "no commit since cycle {} (watchdog {}); {}",
            self.last_commit_at,
            self.watchdog,
            stuck.join("; ")
        )
    }
}

impl std::fmt::Display for DiagnosticDump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "livelock at cycle {}: no commit since cycle {} (watchdog {} cycles)",
            self.at, self.last_commit_at, self.watchdog
        )?;
        for c in &self.cores {
            writeln!(
                f,
                "  core{} {}: committed={} rob={} head={} lq-inflight={} mshr={} sefes={} epoch={}",
                c.core,
                if c.halted { "halted" } else { "stuck" },
                c.committed_insts,
                c.rob_len,
                match c.rob_head {
                    Some((seq, pc)) => format!("#{seq}@pc={pc:#x}"),
                    None => "-".to_string(),
                },
                c.inflight_loads,
                c.mshr_occupancy,
                c.pending_sefes,
                c.epoch,
            )?;
        }
        Ok(())
    }
}

/// A complete simulated system: cores + schemes + memory.
///
/// `Clone` is the heart of cs-snap: it deep-copies every pipeline, scheme,
/// cache array, MSHR file, DRAM queue, RNG stream, and the watchdog's
/// progress markers, so a clone resumed with [`System::run`] is bit-exact
/// with the original. Two handles are intentionally *shared* with the
/// clone: the observer (sinks would double-count if duplicated) and the
/// fault injector inside the hierarchy (its counters are captured
/// separately via `FaultInjector::counters_snapshot`).
#[derive(Clone, Debug)]
pub struct System {
    cores: Vec<Pipeline>,
    schemes: Vec<Box<dyn SpeculationScheme>>,
    mem: MemHierarchy,
    dmem: DataMem,
    now: Cycle,
    /// Cycle of the last observed commit (any core) — or of the last
    /// harness `tick_mem_only` phase, which also counts as forward
    /// progress. Persistent state (not a `run`-local) so that a restored
    /// snapshot carries the same watchdog gap as the uninterrupted run.
    last_commit_at: Cycle,
    /// Total committed instructions at `last_commit_at`.
    last_committed: u64,
    obs: cleanupspec_obs::Observer,
}

impl System {
    /// Builds a system. `programs` and `schemes` must have one entry per
    /// core configured in `mem`.
    ///
    /// # Panics
    /// Panics if the lengths disagree with `mem.config().num_cores`.
    pub fn new(
        mem: MemHierarchy,
        core_cfg: CoreConfig,
        schemes: Vec<Box<dyn SpeculationScheme>>,
        programs: Vec<Arc<Program>>,
    ) -> Self {
        let n = mem.config().num_cores;
        assert_eq!(programs.len(), n, "one program per core");
        assert_eq!(schemes.len(), n, "one scheme per core");
        let mut dmem = DataMem::new();
        for p in &programs {
            for (a, v) in &p.init_mem {
                dmem.write(*a, *v);
            }
        }
        let cores = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Pipeline::new(CoreId(i), core_cfg.clone(), p))
            .collect();
        System {
            cores,
            schemes,
            mem,
            dmem,
            now: 0,
            last_commit_at: 0,
            last_committed: 0,
            obs: cleanupspec_obs::Observer::disabled(),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances time and the memory system by one cycle WITHOUT ticking
    /// the cores. Harness phases (priming, probing, draining) use this so
    /// that measurement does not perturb the victim programs. The skipped
    /// core cycles are charged to the CPI stack's `Harness` bucket so the
    /// per-core stack still sums to elapsed cycles.
    pub fn tick_mem_only(&mut self) {
        self.now += 1;
        self.mem.advance(self.now);
        for c in &mut self.cores {
            c.note_harness_cycle();
        }
        // Harness phases (priming, probing, draining) are deliberate idle
        // time, not a livelock: keep the watchdog gap closed.
        self.last_commit_at = self.now;
    }

    /// Advances the whole system by one cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.mem.advance(self.now);
        for (core, scheme) in self.cores.iter_mut().zip(self.schemes.iter_mut()) {
            core.tick(scheme.as_mut(), &mut self.mem, &mut self.dmem, self.now);
        }
        let committed: u64 = self.cores.iter().map(|c| c.stats().committed_insts).sum();
        if committed != self.last_committed {
            self.last_committed = committed;
            self.last_commit_at = self.now;
        }
    }

    /// Runs until a stop condition is met.
    ///
    /// The forward-progress watchdog reads the persistent
    /// `last_commit_at` marker (updated by every [`Self::tick`] /
    /// [`Self::tick_mem_only`]) rather than run-local state, so stopping a
    /// run, snapshotting, and resuming measures the same commit gap as an
    /// uninterrupted run.
    pub fn run(&mut self, limits: RunLimits) -> StopReason {
        loop {
            if self.cores.iter().all(|c| c.halted()) {
                self.stamp_cycles();
                return StopReason::AllHalted;
            }
            if limits.max_insts_per_core != u64::MAX
                && self
                    .cores
                    .iter()
                    .all(|c| c.halted() || c.stats().committed_insts >= limits.max_insts_per_core)
            {
                self.stamp_cycles();
                return StopReason::InstLimit;
            }
            if self.now >= limits.max_cycles {
                self.stamp_cycles();
                return StopReason::CycleLimit;
            }
            if let Some(wd) = limits.watchdog {
                if self.now.saturating_sub(self.last_commit_at) >= wd {
                    self.stamp_cycles();
                    let dump = self.diagnostic_dump(self.last_commit_at, wd);
                    self.emit_livelock(&dump);
                    return StopReason::Livelock(Box::new(dump));
                }
            }
            self.tick();
        }
    }

    /// Snapshot of where every core is stuck (watchdog firing).
    fn diagnostic_dump(&self, last_commit_at: Cycle, watchdog: Cycle) -> DiagnosticDump {
        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| CoreDiag {
                core: i,
                halted: c.halted(),
                committed_insts: c.stats().committed_insts,
                rob_len: c.rob_len(),
                rob_head: c.rob_head(),
                inflight_loads: c.inflight_loads(),
                mshr_occupancy: self.mem.mshr_occupancy(CoreId(i)),
                pending_sefes: self.mem.sefe_occupancy(CoreId(i)),
                epoch: u64::from(self.mem.epoch(CoreId(i)).raw()),
            })
            .collect();
        DiagnosticDump {
            at: self.now,
            last_commit_at,
            watchdog,
            cores,
        }
    }

    /// Emits one `Livelock` event per non-halted core through the event bus
    /// so trace sinks (Perfetto, JSONL, ring buffers) record the stall.
    fn emit_livelock(&self, dump: &DiagnosticDump) {
        for c in dump.cores.iter().filter(|c| !c.halted) {
            self.obs.emit(
                self.now,
                cleanupspec_obs::SimEvent::Livelock {
                    core: c.core,
                    stalled_for: dump.at - dump.last_commit_at,
                    rob: c.rob_len as u64,
                    head_pc: c.rob_head.map(|(_, pc)| pc).unwrap_or(0),
                    mshr: c.mshr_occupancy as u64,
                    sefes: c.pending_sefes as u64,
                },
            );
        }
    }

    /// Clears all statistics (end-of-warm-up) while keeping architectural
    /// and microarchitectural state.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.reset_stats();
        }
        for s in &mut self.schemes {
            s.reset_stats();
        }
        self.mem.reset_stats();
    }

    /// Attaches the event-bus observer to the memory hierarchy and every
    /// core pipeline.
    pub fn set_observer(&mut self, obs: cleanupspec_obs::Observer) {
        self.mem.set_observer(obs.clone());
        for c in &mut self.cores {
            c.set_observer(obs.clone());
        }
        self.obs = obs;
    }

    fn stamp_cycles(&mut self) {
        let now = self.now;
        for c in &mut self.cores {
            c.stats_mut().cycles = now;
        }
    }

    /// Statistics of core `i`.
    pub fn core_stats(&self, i: usize) -> &CoreStats {
        self.cores[i].stats()
    }

    /// The pipeline of core `i` (register inspection in tests).
    pub fn core(&self, i: usize) -> &Pipeline {
        &self.cores[i]
    }

    /// Mutable pipeline access (e.g. to enable tracing before a run).
    pub fn core_mut(&mut self, i: usize) -> &mut Pipeline {
        &mut self.cores[i]
    }

    /// The speculation scheme driving core `i` (stat inspection).
    pub fn scheme(&self, i: usize) -> &dyn SpeculationScheme {
        self.schemes[i].as_ref()
    }

    /// Replaces every core's speculation scheme (one per core).
    ///
    /// Used by `--shared-warmup`: a warmed snapshot is forked per security
    /// mode and the fork's policy objects are swapped in before the
    /// measured region. Swapping schemes mid-run is only sound when no
    /// speculative load is in flight (e.g. right after a completed warmup
    /// run), since in-flight cleanup state lives inside the scheme.
    ///
    /// # Panics
    /// Panics if `schemes.len()` differs from the core count.
    pub fn set_schemes(&mut self, schemes: Vec<Box<dyn SpeculationScheme>>) {
        assert_eq!(schemes.len(), self.cores.len(), "one scheme per core");
        self.schemes = schemes;
    }

    /// Shared memory hierarchy (read-only).
    pub fn mem(&self) -> &MemHierarchy {
        &self.mem
    }

    /// Shared memory hierarchy (harness-level operations such as timed
    /// probe loads in attack measurement phases).
    pub fn mem_mut(&mut self) -> &mut MemHierarchy {
        &mut self.mem
    }

    /// Architectural data memory (read-only).
    pub fn dmem(&self) -> &DataMem {
        &self.dmem
    }

    /// Architectural data memory (harness-level initialization).
    pub fn dmem_mut(&mut self) -> &mut DataMem {
        &mut self.dmem
    }

    /// Whether every core halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ProgramBuilder, Reg};
    use crate::scheme::{CommitAction, CommittedLoad, LoadIssue, SquashInfo, SquashResponse};
    use cleanupspec_mem::error::SimError;
    use cleanupspec_mem::hierarchy::{LoadReq, MemConfig};
    use cleanupspec_mem::types::LoadId;

    #[derive(Clone, Debug)]
    struct Plain;
    impl SpeculationScheme for Plain {
        fn name(&self) -> &'static str {
            "plain"
        }
        fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
            Box::new(self.clone())
        }
        fn issue_load(
            &mut self,
            mem: &mut MemHierarchy,
            req: LoadIssue,
        ) -> Result<cleanupspec_mem::hierarchy::LoadOutcome, SimError> {
            mem.load(req.core, req.line, req.now, LoadReq::non_spec(LoadId(0)))
        }
        fn commit_load(
            &mut self,
            _mem: &mut MemHierarchy,
            _core: CoreId,
            _load: CommittedLoad,
            _now: Cycle,
        ) -> CommitAction {
            CommitAction::Proceed
        }
        fn on_squash(&mut self, _mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse {
            SquashResponse {
                resume_at: info.now,
            }
        }
    }

    fn simple_program(v: u64) -> Arc<Program> {
        let mut b = ProgramBuilder::new("p");
        b.movi(Reg(1), v);
        b.halt();
        Arc::new(b.build())
    }

    #[test]
    fn two_cores_run_to_halt() {
        let mem = MemHierarchy::new(MemConfig {
            num_cores: 2,
            ..MemConfig::default()
        });
        let mut sys = System::new(
            mem,
            CoreConfig::default(),
            vec![Box::new(Plain), Box::new(Plain)],
            vec![simple_program(3), simple_program(9)],
        );
        let reason = sys.run(RunLimits::default());
        assert_eq!(reason, StopReason::AllHalted);
        assert_eq!(sys.core(0).reg(Reg(1)), 3);
        assert_eq!(sys.core(1).reg(Reg(1)), 9);
        assert!(sys.all_halted());
        assert!(sys.now() > 0);
    }

    #[test]
    fn cycle_limit_stops_infinite_loop() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.here();
        b.jump(top);
        let mem = MemHierarchy::new(MemConfig::default());
        let mut sys = System::new(
            mem,
            CoreConfig::default(),
            vec![Box::new(Plain)],
            vec![Arc::new(b.build())],
        );
        let reason = sys.run(RunLimits {
            max_cycles: 500,
            ..RunLimits::default()
        });
        assert_eq!(reason, StopReason::CycleLimit);
        assert_eq!(sys.core_stats(0).cycles, 500);
    }

    #[test]
    fn inst_limit_stops_long_program() {
        let mut b = ProgramBuilder::new("count");
        b.movi(Reg(1), 1_000_000);
        let top = b.here();
        b.alu(
            Reg(1),
            crate::isa::AluOp::Sub,
            crate::isa::Operand::Reg(Reg(1)),
            crate::isa::Operand::Imm(1),
        );
        b.branch(Reg(1), crate::isa::BranchCond::NotZero, top);
        b.halt();
        let mem = MemHierarchy::new(MemConfig::default());
        let mut sys = System::new(
            mem,
            CoreConfig::default(),
            vec![Box::new(Plain)],
            vec![Arc::new(b.build())],
        );
        let reason = sys.run(RunLimits {
            max_cycles: 10_000_000,
            max_insts_per_core: 5_000,
            ..RunLimits::default()
        });
        assert_eq!(reason, StopReason::InstLimit);
        assert!(sys.core_stats(0).committed_insts >= 5_000);
    }
}
