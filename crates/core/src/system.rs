//! The system runner: one or more pipelines over a shared memory hierarchy
//! and a shared architectural data memory.

use crate::datamem::DataMem;
use crate::isa::Program;
use crate::pipeline::{CoreConfig, Pipeline};
use crate::scheme::SpeculationScheme;
use crate::stats::CoreStats;
use cleanupspec_mem::hierarchy::MemHierarchy;
use cleanupspec_mem::types::{CoreId, Cycle};
use std::sync::Arc;

/// Stop conditions for [`System::run`].
#[derive(Clone, Copy, Debug)]
pub struct RunLimits {
    /// Hard cycle budget.
    pub max_cycles: Cycle,
    /// Stop once every core has committed at least this many instructions
    /// (or halted). `u64::MAX` disables the limit.
    pub max_insts_per_core: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_cycles: 50_000_000,
            max_insts_per_core: u64::MAX,
        }
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// Every core committed `Halt`.
    AllHalted,
    /// Every core reached the instruction budget (or halted).
    InstLimit,
    /// The cycle budget expired.
    CycleLimit,
}

/// A complete simulated system: cores + schemes + memory.
#[derive(Debug)]
pub struct System {
    cores: Vec<Pipeline>,
    schemes: Vec<Box<dyn SpeculationScheme>>,
    mem: MemHierarchy,
    dmem: DataMem,
    now: Cycle,
}

impl System {
    /// Builds a system. `programs` and `schemes` must have one entry per
    /// core configured in `mem`.
    ///
    /// # Panics
    /// Panics if the lengths disagree with `mem.config().num_cores`.
    pub fn new(
        mem: MemHierarchy,
        core_cfg: CoreConfig,
        schemes: Vec<Box<dyn SpeculationScheme>>,
        programs: Vec<Arc<Program>>,
    ) -> Self {
        let n = mem.config().num_cores;
        assert_eq!(programs.len(), n, "one program per core");
        assert_eq!(schemes.len(), n, "one scheme per core");
        let mut dmem = DataMem::new();
        for p in &programs {
            for (a, v) in &p.init_mem {
                dmem.write(*a, *v);
            }
        }
        let cores = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Pipeline::new(CoreId(i), core_cfg.clone(), p))
            .collect();
        System {
            cores,
            schemes,
            mem,
            dmem,
            now: 0,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances time and the memory system by one cycle WITHOUT ticking
    /// the cores. Harness phases (priming, probing, draining) use this so
    /// that measurement does not perturb the victim programs.
    pub fn tick_mem_only(&mut self) {
        self.now += 1;
        self.mem.advance(self.now);
    }

    /// Advances the whole system by one cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.mem.advance(self.now);
        for (core, scheme) in self.cores.iter_mut().zip(self.schemes.iter_mut()) {
            core.tick(scheme.as_mut(), &mut self.mem, &mut self.dmem, self.now);
        }
    }

    /// Runs until a stop condition is met.
    pub fn run(&mut self, limits: RunLimits) -> StopReason {
        loop {
            if self.cores.iter().all(|c| c.halted()) {
                self.stamp_cycles();
                return StopReason::AllHalted;
            }
            if limits.max_insts_per_core != u64::MAX
                && self
                    .cores
                    .iter()
                    .all(|c| c.halted() || c.stats().committed_insts >= limits.max_insts_per_core)
            {
                self.stamp_cycles();
                return StopReason::InstLimit;
            }
            if self.now >= limits.max_cycles {
                self.stamp_cycles();
                return StopReason::CycleLimit;
            }
            self.tick();
        }
    }

    /// Clears all statistics (end-of-warm-up) while keeping architectural
    /// and microarchitectural state.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.reset_stats();
        }
        for s in &mut self.schemes {
            s.reset_stats();
        }
        self.mem.reset_stats();
    }

    /// Attaches the event-bus observer to the memory hierarchy and every
    /// core pipeline.
    pub fn set_observer(&mut self, obs: cleanupspec_obs::Observer) {
        self.mem.set_observer(obs.clone());
        for c in &mut self.cores {
            c.set_observer(obs.clone());
        }
    }

    fn stamp_cycles(&mut self) {
        let now = self.now;
        for c in &mut self.cores {
            c.stats_mut().cycles = now;
        }
    }

    /// Statistics of core `i`.
    pub fn core_stats(&self, i: usize) -> &CoreStats {
        self.cores[i].stats()
    }

    /// The pipeline of core `i` (register inspection in tests).
    pub fn core(&self, i: usize) -> &Pipeline {
        &self.cores[i]
    }

    /// Mutable pipeline access (e.g. to enable tracing before a run).
    pub fn core_mut(&mut self, i: usize) -> &mut Pipeline {
        &mut self.cores[i]
    }

    /// The speculation scheme driving core `i` (stat inspection).
    pub fn scheme(&self, i: usize) -> &dyn SpeculationScheme {
        self.schemes[i].as_ref()
    }

    /// Shared memory hierarchy (read-only).
    pub fn mem(&self) -> &MemHierarchy {
        &self.mem
    }

    /// Shared memory hierarchy (harness-level operations such as timed
    /// probe loads in attack measurement phases).
    pub fn mem_mut(&mut self) -> &mut MemHierarchy {
        &mut self.mem
    }

    /// Architectural data memory (read-only).
    pub fn dmem(&self) -> &DataMem {
        &self.dmem
    }

    /// Architectural data memory (harness-level initialization).
    pub fn dmem_mut(&mut self) -> &mut DataMem {
        &mut self.dmem
    }

    /// Whether every core halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ProgramBuilder, Reg};
    use crate::scheme::{CommitAction, CommittedLoad, LoadIssue, SquashInfo, SquashResponse};
    use cleanupspec_mem::hierarchy::{LoadReq, MemConfig};
    use cleanupspec_mem::mshr::MshrFullError;
    use cleanupspec_mem::types::LoadId;

    #[derive(Debug)]
    struct Plain;
    impl SpeculationScheme for Plain {
        fn name(&self) -> &'static str {
            "plain"
        }
        fn issue_load(
            &mut self,
            mem: &mut MemHierarchy,
            req: LoadIssue,
        ) -> Result<cleanupspec_mem::hierarchy::LoadOutcome, MshrFullError> {
            mem.load(req.core, req.line, req.now, LoadReq::non_spec(LoadId(0)))
        }
        fn commit_load(
            &mut self,
            _mem: &mut MemHierarchy,
            _core: CoreId,
            _load: CommittedLoad,
            _now: Cycle,
        ) -> CommitAction {
            CommitAction::Proceed
        }
        fn on_squash(&mut self, _mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse {
            SquashResponse {
                resume_at: info.now,
            }
        }
    }

    fn simple_program(v: u64) -> Arc<Program> {
        let mut b = ProgramBuilder::new("p");
        b.movi(Reg(1), v);
        b.halt();
        Arc::new(b.build())
    }

    #[test]
    fn two_cores_run_to_halt() {
        let mem = MemHierarchy::new(MemConfig {
            num_cores: 2,
            ..MemConfig::default()
        });
        let mut sys = System::new(
            mem,
            CoreConfig::default(),
            vec![Box::new(Plain), Box::new(Plain)],
            vec![simple_program(3), simple_program(9)],
        );
        let reason = sys.run(RunLimits::default());
        assert_eq!(reason, StopReason::AllHalted);
        assert_eq!(sys.core(0).reg(Reg(1)), 3);
        assert_eq!(sys.core(1).reg(Reg(1)), 9);
        assert!(sys.all_halted());
        assert!(sys.now() > 0);
    }

    #[test]
    fn cycle_limit_stops_infinite_loop() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.here();
        b.jump(top);
        let mem = MemHierarchy::new(MemConfig::default());
        let mut sys = System::new(
            mem,
            CoreConfig::default(),
            vec![Box::new(Plain)],
            vec![Arc::new(b.build())],
        );
        let reason = sys.run(RunLimits {
            max_cycles: 500,
            max_insts_per_core: u64::MAX,
        });
        assert_eq!(reason, StopReason::CycleLimit);
        assert_eq!(sys.core_stats(0).cycles, 500);
    }

    #[test]
    fn inst_limit_stops_long_program() {
        let mut b = ProgramBuilder::new("count");
        b.movi(Reg(1), 1_000_000);
        let top = b.here();
        b.alu(
            Reg(1),
            crate::isa::AluOp::Sub,
            crate::isa::Operand::Reg(Reg(1)),
            crate::isa::Operand::Imm(1),
        );
        b.branch(Reg(1), crate::isa::BranchCond::NotZero, top);
        b.halt();
        let mem = MemHierarchy::new(MemConfig::default());
        let mut sys = System::new(
            mem,
            CoreConfig::default(),
            vec![Box::new(Plain)],
            vec![Arc::new(b.build())],
        );
        let reason = sys.run(RunLimits {
            max_cycles: 10_000_000,
            max_insts_per_core: 5_000,
        });
        assert_eq!(reason, StopReason::InstLimit);
        assert!(sys.core_stats(0).committed_insts >= 5_000);
    }
}
