//! Branch prediction: a gem5-style tournament predictor (local + gshare +
//! chooser), a branch target buffer, and a return-address stack — the
//! front-end of Table 4 ("Tournament Branch-Pred, BTB-4096 entry, RAS-16
//! entry").
//!
//! Mispredictions from this unit are what create transient (wrong-path)
//! execution, so its accuracy directly sets the squash frequency that
//! Figures 12–14 sweep over.

use crate::isa::Pc;

/// A 2-bit saturating counter.
#[derive(Clone, Copy, Debug, Default)]
struct Ctr2(u8);

impl Ctr2 {
    fn predict(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Configuration of the tournament predictor.
#[derive(Clone, Debug)]
pub struct BpredConfig {
    /// Local history table entries (per-PC histories).
    pub local_history_entries: usize,
    /// Bits of local history.
    pub local_history_bits: u32,
    /// Local pattern table entries.
    pub local_ctr_entries: usize,
    /// Global (gshare) table entries.
    pub global_ctr_entries: usize,
    /// Chooser table entries.
    pub choice_ctr_entries: usize,
    /// Bits of global history.
    pub global_history_bits: u32,
    /// BTB entries (direct-mapped).
    pub btb_entries: usize,
    /// RAS entries.
    pub ras_entries: usize,
}

impl Default for BpredConfig {
    fn default() -> Self {
        BpredConfig {
            local_history_entries: 2048,
            local_history_bits: 10,
            local_ctr_entries: 2048,
            global_ctr_entries: 8192,
            choice_ctr_entries: 8192,
            global_history_bits: 13,
            btb_entries: 4096,
            ras_entries: 16,
        }
    }
}

/// Tournament direction predictor with BTB and RAS.
#[derive(Clone, Debug)]
pub struct TournamentPredictor {
    cfg: BpredConfig,
    local_hist: Vec<u64>,
    local_ctrs: Vec<Ctr2>,
    global_ctrs: Vec<Ctr2>,
    choice_ctrs: Vec<Ctr2>,
    ghr: u64,
    btb: Vec<Option<(Pc, Pc)>>,
    ras: Vec<Pc>,
    /// Predictions made.
    pub lookups: u64,
    /// Mispredictions recorded by [`TournamentPredictor::update`].
    pub mispredicts: u64,
}

impl TournamentPredictor {
    /// Builds a predictor.
    pub fn new(cfg: BpredConfig) -> Self {
        TournamentPredictor {
            local_hist: vec![0; cfg.local_history_entries],
            local_ctrs: vec![Ctr2::default(); cfg.local_ctr_entries],
            global_ctrs: vec![Ctr2::default(); cfg.global_ctr_entries],
            choice_ctrs: vec![Ctr2::default(); cfg.choice_ctr_entries],
            ghr: 0,
            btb: vec![None; cfg.btb_entries],
            ras: Vec::with_capacity(cfg.ras_entries),
            lookups: 0,
            mispredicts: 0,
            cfg,
        }
    }

    fn local_index(&self, pc: Pc) -> usize {
        pc % self.cfg.local_history_entries
    }

    fn local_ctr_index(&self, pc: Pc) -> usize {
        let hist = self.local_hist[self.local_index(pc)];
        (hist as usize) % self.cfg.local_ctr_entries
    }

    fn global_index(&self, pc: Pc) -> usize {
        let mask = (1u64 << self.cfg.global_history_bits) - 1;
        ((self.ghr & mask) as usize ^ pc) % self.cfg.global_ctr_entries
    }

    fn choice_index(&self, pc: Pc) -> usize {
        let mask = (1u64 << self.cfg.global_history_bits) - 1;
        ((self.ghr & mask) as usize ^ pc.wrapping_mul(31)) % self.cfg.choice_ctr_entries
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: Pc) -> bool {
        self.lookups += 1;
        let local = self.local_ctrs[self.local_ctr_index(pc)].predict();
        let global = self.global_ctrs[self.global_index(pc)].predict();
        let use_global = self.choice_ctrs[self.choice_index(pc)].predict();
        if use_global {
            global
        } else {
            local
        }
    }

    /// Trains the predictor with the resolved outcome of the branch at
    /// `pc`. `mispredicted` is whether the front end predicted wrongly
    /// (used only for statistics).
    pub fn update(&mut self, pc: Pc, taken: bool, mispredicted: bool) {
        if mispredicted {
            self.mispredicts += 1;
        }
        let lci = self.local_ctr_index(pc);
        let gci = self.global_index(pc);
        let local_correct = self.local_ctrs[lci].predict() == taken;
        let global_correct = self.global_ctrs[gci].predict() == taken;
        // Chooser trains toward whichever component was right.
        if local_correct != global_correct {
            let ci = self.choice_index(pc);
            self.choice_ctrs[ci].update(global_correct);
        }
        self.local_ctrs[lci].update(taken);
        self.global_ctrs[gci].update(taken);
        // Histories.
        let lhi = self.local_index(pc);
        let lmask = (1u64 << self.cfg.local_history_bits) - 1;
        self.local_hist[lhi] = ((self.local_hist[lhi] << 1) | taken as u64) & lmask;
        self.ghr = (self.ghr << 1) | taken as u64;
    }

    /// BTB lookup: the last seen target for an indirect branch at `pc`.
    pub fn btb_lookup(&self, pc: Pc) -> Option<Pc> {
        let e = self.btb[pc % self.cfg.btb_entries]?;
        (e.0 == pc).then_some(e.1)
    }

    /// Installs/updates a BTB entry.
    pub fn btb_update(&mut self, pc: Pc, target: Pc) {
        let i = pc % self.cfg.btb_entries;
        self.btb[i] = Some((pc, target));
    }

    /// Pushes a return address (at a call's fetch).
    pub fn ras_push(&mut self, ret_addr: Pc) {
        if self.ras.len() == self.cfg.ras_entries {
            self.ras.remove(0);
        }
        self.ras.push(ret_addr);
    }

    /// Pops the predicted return address (at a return's fetch).
    pub fn ras_pop(&mut self) -> Option<Pc> {
        self.ras.pop()
    }

    /// Observed misprediction rate (over [`update`] calls).
    ///
    /// [`update`]: TournamentPredictor::update
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

impl Default for TournamentPredictor {
    fn default() -> Self {
        TournamentPredictor::new(BpredConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = TournamentPredictor::default();
        let pc = 100;
        let mut wrong = 0;
        for _ in 0..200 {
            if !p.predict(pc) {
                wrong += 1;
            }
            p.update(pc, true, false);
        }
        assert!(wrong < 40, "should converge fast, got {wrong} wrong");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = TournamentPredictor::default();
        let pc = 7;
        let mut wrong_late = 0;
        for i in 0..2000u64 {
            let actual = i % 2 == 0;
            let pred = p.predict(pc);
            if i > 500 && pred != actual {
                wrong_late += 1;
            }
            p.update(pc, actual, pred != actual);
        }
        assert!(
            wrong_late < 75,
            "local history should capture period-2 pattern, {wrong_late} wrong"
        );
    }

    #[test]
    fn random_outcomes_mispredict_at_bias_rate() {
        use cleanupspec_mem::rng::SplitMix64;
        let mut p = TournamentPredictor::default();
        let mut rng = SplitMix64::new(42);
        let pc = 55;
        let mut wrong = 0;
        let n = 20_000;
        // Taken with probability ~12.5%.
        for _ in 0..n {
            let actual = rng.below(8) == 0;
            let pred = p.predict(pc);
            if pred != actual {
                wrong += 1;
            }
            p.update(pc, actual, pred != actual);
        }
        let rate = wrong as f64 / n as f64;
        assert!(
            (0.08..0.20).contains(&rate),
            "mispredict rate should approach the 12.5% bias, got {rate}"
        );
    }

    #[test]
    fn btb_stores_and_replaces() {
        let mut p = TournamentPredictor::default();
        assert_eq!(p.btb_lookup(10), None);
        p.btb_update(10, 500);
        assert_eq!(p.btb_lookup(10), Some(500));
        // Aliasing entry replaces.
        p.btb_update(10 + 4096, 900);
        assert_eq!(p.btb_lookup(10), None);
        assert_eq!(p.btb_lookup(10 + 4096), Some(900));
    }

    #[test]
    fn ras_lifo_and_bounded() {
        let mut p = TournamentPredictor::new(BpredConfig {
            ras_entries: 2,
            ..BpredConfig::default()
        });
        p.ras_push(1);
        p.ras_push(2);
        p.ras_push(3); // evicts 1
        assert_eq!(p.ras_pop(), Some(3));
        assert_eq!(p.ras_pop(), Some(2));
        assert_eq!(p.ras_pop(), None);
    }

    #[test]
    fn mispredict_rate_accounting() {
        let mut p = TournamentPredictor::default();
        p.predict(1);
        p.predict(1);
        p.update(1, true, true);
        p.update(1, true, false);
        assert!((p.mispredict_rate() - 0.5).abs() < 1e-12);
    }
}
