//! Core-side statistics: IPC, branch behaviour, and the squash/cleanup
//! decompositions behind Figures 12–15 and Table 5 of the paper.

use cleanupspec_mem::types::Cycle;
use cleanupspec_obs::Histogram;

/// Classification of a squashed load (Table 5 columns).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SquashedClass {
    /// Not issued when squashed (`NI`).
    NotIssued,
    /// Issued and hit the L1 (`L1H`).
    L1Hit,
    /// Issued, missed L1, hit L2 or a remote L1 (`L2H`).
    L2Hit,
    /// Issued and missed the L2 (`L2M`).
    L2Miss,
}

/// Statistics for one simulated core.
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Committed instructions.
    pub committed_insts: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed conditional branches.
    pub committed_branches: u64,
    /// Resolved conditional-branch mispredictions.
    pub mispredicts: u64,
    /// Pipeline squashes (one per handled mis-speculation).
    pub squashes: u64,
    /// Instructions squashed.
    pub squashed_insts: u64,
    /// Squashed loads by class (Table 5).
    pub squashed_ni: u64,
    /// See [`SquashedClass::L1Hit`].
    pub squashed_l1h: u64,
    /// See [`SquashedClass::L2Hit`].
    pub squashed_l2h: u64,
    /// See [`SquashedClass::L2Miss`].
    pub squashed_l2m: u64,
    /// Squashed L1-miss loads that were still inflight (Figure 15).
    pub squashed_miss_inflight: u64,
    /// Squashed L1-miss loads that had executed (Figure 15).
    pub squashed_miss_executed: u64,
    /// Cycles spent waiting for older inflight loads before cleanup
    /// (Figure 14, "Inflight Correct Path Exec").
    pub squash_wait_cycles: Cycle,
    /// Cycles spent performing cleanup operations (Figure 14, "Actual
    /// Cleanup Time").
    pub squash_cleanup_cycles: Cycle,
    /// Loads whose issue was deferred by GetS-Safe and retried.
    pub deferred_loads: u64,
    /// Cycles commit was stalled by the scheme (InvisiSpec update loads).
    pub commit_stall_cycles: Cycle,
    /// Cycles fetch was stalled (redirects + cleanup stalls).
    pub fetch_stall_cycles: Cycle,
    /// Loads that issued while still squashable (speculative issues).
    pub spec_issued_loads: u64,
    /// Speculation-window extension messages charged (Section 3.6).
    pub window_extend_msgs: u64,
    /// Loads forwarded from the store queue (no cache access).
    pub forwarded_loads: u64,
    /// Faults raised at commit (Meltdown-style deferred exceptions).
    pub faults: u64,
    /// Distribution of per-squash cleanup durations (cycles from the
    /// scheme's `on_squash` to its resume cycle).
    pub cleanup_duration: Histogram,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Squashes per kilo-instruction (Figure 13).
    pub fn squash_pki(&self) -> f64 {
        if self.committed_insts == 0 {
            0.0
        } else {
            self.squashes as f64 * 1000.0 / self.committed_insts as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.committed_branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.committed_branches as f64
        }
    }

    /// Total squashed loads.
    pub fn squashed_loads(&self) -> u64 {
        self.squashed_ni + self.squashed_l1h + self.squashed_l2h + self.squashed_l2m
    }

    /// Squashed loads per squash (Table 5).
    pub fn loads_per_squash(&self) -> f64 {
        if self.squashes == 0 {
            0.0
        } else {
            self.squashed_loads() as f64 / self.squashes as f64
        }
    }

    /// Average stall per squash in cycles, split (wait, cleanup)
    /// (Figure 14).
    pub fn stall_per_squash(&self) -> (f64, f64) {
        if self.squashes == 0 {
            return (0.0, 0.0);
        }
        (
            self.squash_wait_cycles as f64 / self.squashes as f64,
            self.squash_cleanup_cycles as f64 / self.squashes as f64,
        )
    }

    /// Records one squashed load of a given class and inflight-ness.
    pub fn record_squashed_load(&mut self, class: SquashedClass, inflight: bool) {
        match class {
            SquashedClass::NotIssued => self.squashed_ni += 1,
            SquashedClass::L1Hit => self.squashed_l1h += 1,
            SquashedClass::L2Hit => self.squashed_l2h += 1,
            SquashedClass::L2Miss => self.squashed_l2m += 1,
        }
        if matches!(class, SquashedClass::L2Hit | SquashedClass::L2Miss) {
            if inflight {
                self.squashed_miss_inflight += 1;
            } else {
                self.squashed_miss_executed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = CoreStats {
            cycles: 1000,
            committed_insts: 2000,
            committed_branches: 100,
            mispredicts: 10,
            squashes: 4,
            ..Default::default()
        };
        s.squash_wait_cycles = 80;
        s.squash_cleanup_cycles = 20;
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.squash_pki() - 2.0).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert_eq!(s.stall_per_squash(), (20.0, 5.0));
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.squash_pki(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.loads_per_squash(), 0.0);
        assert_eq!(s.stall_per_squash(), (0.0, 0.0));
    }

    #[test]
    fn squashed_load_classification() {
        let mut s = CoreStats::default();
        s.record_squashed_load(SquashedClass::NotIssued, false);
        s.record_squashed_load(SquashedClass::L1Hit, false);
        s.record_squashed_load(SquashedClass::L2Hit, true);
        s.record_squashed_load(SquashedClass::L2Miss, false);
        s.squashes = 2;
        assert_eq!(s.squashed_loads(), 4);
        assert_eq!(s.loads_per_squash(), 2.0);
        assert_eq!(s.squashed_miss_inflight, 1);
        assert_eq!(s.squashed_miss_executed, 1);
    }
}
