//! Core-side statistics: IPC, branch behaviour, and the squash/cleanup
//! decompositions behind Figures 12–15 and Table 5 of the paper.

use cleanupspec_mem::types::Cycle;
use cleanupspec_obs::Histogram;

/// Top-down attribution of one core cycle — the reason the core did (or
/// could not do) useful work that cycle.
///
/// The pipeline charges **exactly one** cause per core per cycle, so the
/// per-cause totals in [`CpiStack`] sum exactly to the cycles simulated:
/// the invariant `cpi_stack.total() == CoreStats::cycles` holds for every
/// report and is asserted by the `cpi_stack` integration tests.
///
/// The first block is the classic top-down taxonomy; the second block is
/// the CleanupSpec-specific overhead causes the paper's ~5.1% slowdown
/// claim decomposes into (threaded from the scheme seam and the memory
/// hierarchy's miss-provenance tracking).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum StallCause {
    /// At least one instruction committed this cycle (useful work).
    Commit,
    /// ROB empty: the front end is refilling (redirect penalty, fetch
    /// stalls, program startup).
    Frontend,
    /// Head is executing and dispatch is blocked on a full ROB.
    RobFull,
    /// Head is executing (ALU latency, L1-hit load latency, branches).
    Exec,
    /// Head is a load being serviced by the L2 / a remote L1 / a dummy
    /// miss.
    LoadL2,
    /// Head is a load being serviced by DRAM.
    LoadMem,
    /// Head is a store (or dispatch is blocked on a full store queue).
    StoreBuffer,
    /// Head is done but commit is gated — by the scheme (InvisiSpec
    /// update loads) or a deferred permission check (Meltdown window).
    SchemeCommitStall,
    /// Squash pending: waiting for older correct-path inflight loads to
    /// complete before cleanup may run (Section 3.4, Figure 14).
    WaitInflight,
    /// Front end stalled by an in-progress cleanup (the scheme's
    /// `resume_at` extends past the redirect penalty).
    CleanupInProgress,
    /// Head is a load deferred by GetS-Safe, waiting to become
    /// unsquashable (Section 3.5).
    SchemeDefer,
    /// Head is a load missing on a line that last left this L1 via a
    /// cleanup (transient) invalidation — a miss the undo itself caused.
    TransientInvalidate,
    /// Head is a load missing on a line that last left this L1 via random
    /// replacement — the extra misses CleanupSpec's L1-Random policy
    /// costs over LRU.
    RandomReplMiss,
    /// Head is an unissued load and an MSHR/SEFE allocation failed this
    /// cycle (Section 3.3 overflow back-pressure).
    SefePressure,
    /// The core has committed its `Halt` (multi-core runs: other cores
    /// are still working).
    Halted,
    /// Harness phase: the memory system advanced without ticking the
    /// cores (attack probe/flush/drain measurement cycles).
    Harness,
}

impl StallCause {
    /// Every cause, in display order.
    pub const ALL: [StallCause; 16] = [
        StallCause::Commit,
        StallCause::Frontend,
        StallCause::RobFull,
        StallCause::Exec,
        StallCause::LoadL2,
        StallCause::LoadMem,
        StallCause::StoreBuffer,
        StallCause::SchemeCommitStall,
        StallCause::WaitInflight,
        StallCause::CleanupInProgress,
        StallCause::SchemeDefer,
        StallCause::TransientInvalidate,
        StallCause::RandomReplMiss,
        StallCause::SefePressure,
        StallCause::Halted,
        StallCause::Harness,
    ];

    /// Stable snake-case label (JSON keys, report tables).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Commit => "commit",
            StallCause::Frontend => "frontend",
            StallCause::RobFull => "rob_full",
            StallCause::Exec => "exec",
            StallCause::LoadL2 => "load_l2",
            StallCause::LoadMem => "load_mem",
            StallCause::StoreBuffer => "store_buffer",
            StallCause::SchemeCommitStall => "scheme_commit_stall",
            StallCause::WaitInflight => "wait_inflight",
            StallCause::CleanupInProgress => "cleanup_in_progress",
            StallCause::SchemeDefer => "gets_safe_defer",
            StallCause::TransientInvalidate => "transient_inval_miss",
            StallCause::RandomReplMiss => "l1_random_repl_miss",
            StallCause::SefePressure => "sefe_pressure",
            StallCause::Halted => "halted",
            StallCause::Harness => "harness",
        }
    }

    /// Dense index into [`CpiStack`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the cause exists only under a secure scheme — the buckets a
    /// NonSecure-vs-scheme attribution diff charges the security tax to.
    pub fn is_scheme_overhead(self) -> bool {
        matches!(
            self,
            StallCause::SchemeCommitStall
                | StallCause::WaitInflight
                | StallCause::CleanupInProgress
                | StallCause::SchemeDefer
                | StallCause::TransientInvalidate
                | StallCause::RandomReplMiss
                | StallCause::SefePressure
        )
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-cause cycle totals for one core (a top-down CPI stack).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CpiStack {
    counts: [u64; StallCause::ALL.len()],
}

impl CpiStack {
    /// An empty stack.
    pub fn new() -> Self {
        CpiStack::default()
    }

    /// Charges one cycle to `cause`.
    #[inline]
    pub fn charge(&mut self, cause: StallCause) {
        self.counts[cause.index()] += 1;
    }

    /// Cycles charged to `cause`.
    pub fn get(&self, cause: StallCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total cycles across all causes. Equals the cycles simulated — the
    /// accounting invariant every report is checked against.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(cause, cycles)` pairs in display order, including zero entries.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(|&c| (c, self.counts[c.index()]))
    }

    /// Overwrites the cycles charged to `cause` (cs-snap checkpoint load;
    /// production accounting must go through [`Self::charge`]).
    pub fn set(&mut self, cause: StallCause, n: u64) {
        self.counts[cause.index()] = n;
    }

    /// Adds another stack's counts into this one (system-level rollups).
    pub fn merge(&mut self, other: &CpiStack) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Cycles per kilo-instruction charged to `cause` (0.0 when no
    /// instructions committed — never NaN).
    pub fn cpki(&self, cause: StallCause, insts: u64) -> f64 {
        if insts == 0 {
            0.0
        } else {
            self.get(cause) as f64 * 1000.0 / insts as f64
        }
    }
}

/// Classification of a squashed load (Table 5 columns).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SquashedClass {
    /// Not issued when squashed (`NI`).
    NotIssued,
    /// Issued and hit the L1 (`L1H`).
    L1Hit,
    /// Issued, missed L1, hit L2 or a remote L1 (`L2H`).
    L2Hit,
    /// Issued and missed the L2 (`L2M`).
    L2Miss,
}

/// Statistics for one simulated core.
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Committed instructions.
    pub committed_insts: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed conditional branches.
    pub committed_branches: u64,
    /// Resolved conditional-branch mispredictions.
    pub mispredicts: u64,
    /// Pipeline squashes (one per handled mis-speculation).
    pub squashes: u64,
    /// Instructions squashed.
    pub squashed_insts: u64,
    /// Squashed loads by class (Table 5).
    pub squashed_ni: u64,
    /// See [`SquashedClass::L1Hit`].
    pub squashed_l1h: u64,
    /// See [`SquashedClass::L2Hit`].
    pub squashed_l2h: u64,
    /// See [`SquashedClass::L2Miss`].
    pub squashed_l2m: u64,
    /// Squashed L1-miss loads that were still inflight (Figure 15).
    pub squashed_miss_inflight: u64,
    /// Squashed L1-miss loads that had executed (Figure 15).
    pub squashed_miss_executed: u64,
    /// Cycles spent waiting for older inflight loads before cleanup
    /// (Figure 14, "Inflight Correct Path Exec").
    pub squash_wait_cycles: Cycle,
    /// Cycles spent performing cleanup operations (Figure 14, "Actual
    /// Cleanup Time").
    pub squash_cleanup_cycles: Cycle,
    /// Loads whose issue was deferred by GetS-Safe and retried.
    pub deferred_loads: u64,
    /// Cycles commit was stalled by the scheme (InvisiSpec update loads).
    pub commit_stall_cycles: Cycle,
    /// Cycles fetch was stalled (redirects + cleanup stalls).
    pub fetch_stall_cycles: Cycle,
    /// Loads that issued while still squashable (speculative issues).
    pub spec_issued_loads: u64,
    /// Speculation-window extension messages charged (Section 3.6).
    pub window_extend_msgs: u64,
    /// Loads forwarded from the store queue (no cache access).
    pub forwarded_loads: u64,
    /// Faults raised at commit (Meltdown-style deferred exceptions).
    pub faults: u64,
    /// Distribution of per-squash cleanup durations (cycles from the
    /// scheme's `on_squash` to its resume cycle).
    pub cleanup_duration: Histogram,
    /// Distribution of full cleanup-episode durations: first squash of
    /// the episode to the scheme's resume cycle (inflight wait + cleanup
    /// walk), one sample per episode.
    pub episode_duration: Histogram,
    /// Distribution of episode sizes: squashed loads handed to one
    /// cleanup invocation (merged squashes count once, combined).
    pub episode_loads: Histogram,
    /// Top-down cycle accounting: exactly one [`StallCause`] per cycle,
    /// summing to `cycles`.
    pub cpi_stack: CpiStack,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.cycles as f64
        }
    }

    /// Squashes per kilo-instruction (Figure 13).
    pub fn squash_pki(&self) -> f64 {
        if self.committed_insts == 0 {
            0.0
        } else {
            self.squashes as f64 * 1000.0 / self.committed_insts as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.committed_branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.committed_branches as f64
        }
    }

    /// Total squashed loads.
    pub fn squashed_loads(&self) -> u64 {
        self.squashed_ni + self.squashed_l1h + self.squashed_l2h + self.squashed_l2m
    }

    /// Squashed loads per squash (Table 5).
    pub fn loads_per_squash(&self) -> f64 {
        if self.squashes == 0 {
            0.0
        } else {
            self.squashed_loads() as f64 / self.squashes as f64
        }
    }

    /// Average stall per squash in cycles, split (wait, cleanup)
    /// (Figure 14).
    pub fn stall_per_squash(&self) -> (f64, f64) {
        if self.squashes == 0 {
            return (0.0, 0.0);
        }
        (
            self.squash_wait_cycles as f64 / self.squashes as f64,
            self.squash_cleanup_cycles as f64 / self.squashes as f64,
        )
    }

    /// Records one squashed load of a given class and inflight-ness.
    pub fn record_squashed_load(&mut self, class: SquashedClass, inflight: bool) {
        match class {
            SquashedClass::NotIssued => self.squashed_ni += 1,
            SquashedClass::L1Hit => self.squashed_l1h += 1,
            SquashedClass::L2Hit => self.squashed_l2h += 1,
            SquashedClass::L2Miss => self.squashed_l2m += 1,
        }
        if matches!(class, SquashedClass::L2Hit | SquashedClass::L2Miss) {
            if inflight {
                self.squashed_miss_inflight += 1;
            } else {
                self.squashed_miss_executed += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = CoreStats {
            cycles: 1000,
            committed_insts: 2000,
            committed_branches: 100,
            mispredicts: 10,
            squashes: 4,
            ..Default::default()
        };
        s.squash_wait_cycles = 80;
        s.squash_cleanup_cycles = 20;
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.squash_pki() - 2.0).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert_eq!(s.stall_per_squash(), (20.0, 5.0));
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.squash_pki(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.loads_per_squash(), 0.0);
        assert_eq!(s.stall_per_squash(), (0.0, 0.0));
    }

    #[test]
    fn cpi_stack_totals_and_iteration() {
        let mut s = CpiStack::new();
        s.charge(StallCause::Commit);
        s.charge(StallCause::Commit);
        s.charge(StallCause::LoadMem);
        assert_eq!(s.get(StallCause::Commit), 2);
        assert_eq!(s.get(StallCause::LoadMem), 1);
        assert_eq!(s.total(), 3);
        let listed: u64 = s.iter().map(|(_, n)| n).sum();
        assert_eq!(listed, 3, "iter covers every bucket");
        let mut t = CpiStack::new();
        t.charge(StallCause::CleanupInProgress);
        s.merge(&t);
        assert_eq!(s.total(), 4);
        assert!((s.cpki(StallCause::Commit, 1000) - 2.0).abs() < 1e-12);
        assert_eq!(s.cpki(StallCause::Commit, 0), 0.0, "zero insts is quiet");
    }

    #[test]
    fn stall_cause_indices_are_dense_and_names_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "ALL order must match discriminant order");
            assert!(names.insert(c.name()), "duplicate name {}", c.name());
        }
    }

    #[test]
    fn scheme_overhead_causes_are_the_cleanupspec_ones() {
        assert!(StallCause::WaitInflight.is_scheme_overhead());
        assert!(StallCause::CleanupInProgress.is_scheme_overhead());
        assert!(StallCause::TransientInvalidate.is_scheme_overhead());
        assert!(StallCause::RandomReplMiss.is_scheme_overhead());
        assert!(StallCause::SefePressure.is_scheme_overhead());
        assert!(!StallCause::Commit.is_scheme_overhead());
        assert!(!StallCause::LoadMem.is_scheme_overhead());
    }

    #[test]
    fn squashed_load_classification() {
        let mut s = CoreStats::default();
        s.record_squashed_load(SquashedClass::NotIssued, false);
        s.record_squashed_load(SquashedClass::L1Hit, false);
        s.record_squashed_load(SquashedClass::L2Hit, true);
        s.record_squashed_load(SquashedClass::L2Miss, false);
        s.squashes = 2;
        assert_eq!(s.squashed_loads(), 4);
        assert_eq!(s.loads_per_squash(), 2.0);
        assert_eq!(s.squashed_miss_inflight, 1);
        assert_eq!(s.squashed_miss_executed, 1);
    }
}
