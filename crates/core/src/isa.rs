//! The micro-ISA executed by the simulated out-of-order core.
//!
//! The paper's evaluation runs x86 binaries under gem5; what the attacks and
//! CleanupSpec actually need from the ISA is much smaller: register
//! dataflow (so transient loads can feed secret-dependent addresses),
//! loads/stores with computed addresses, conditional branches resolved from
//! register values (so mis-speculation and wrong-path execution are real),
//! `clflush`, and fences. This module defines exactly that.

use cleanupspec_mem::types::Addr;
use std::fmt;

/// Program counter: an index into the program's instruction array.
pub type Pc = usize;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// Register conventionally used as the link register by [`Inst::Call`].
pub const LINK_REG: Reg = Reg(31);

/// An architectural register (`r0`..`r31`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Reg(pub u8);

impl Reg {
    /// Index into register files.
    ///
    /// # Panics
    /// Debug-panics if the register number is out of range.
    pub fn index(self) -> usize {
        debug_assert!((self.0 as usize) < NUM_REGS);
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Second ALU operand: register or immediate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A register source.
    Reg(Reg),
    /// An immediate value.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift (by `src2 & 63`).
    Shl,
    /// Logical right shift (by `src2 & 63`).
    Shr,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
            AluOp::Shr => a >> (b & 63),
        }
    }
}

/// Condition evaluated by [`Inst::Branch`] on a register value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchCond {
    /// Taken when the register is zero.
    Zero,
    /// Taken when the register is non-zero.
    NotZero,
    /// Taken when the register, as a signed value, is negative.
    Negative,
}

impl BranchCond {
    /// Evaluates the condition.
    pub fn taken(self, v: u64) -> bool {
        match self {
            BranchCond::Zero => v == 0,
            BranchCond::NotZero => v != 0,
            BranchCond::Negative => (v as i64) < 0,
        }
    }
}

/// One instruction of the micro-ISA.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inst {
    /// No operation (also what wrong-path fetch finds in unmapped space).
    Nop,
    /// `dst = op(src1, src2)` with a fixed execute latency in cycles.
    Alu {
        /// Destination register.
        dst: Reg,
        /// First source.
        src1: Operand,
        /// Second source.
        src2: Operand,
        /// Operation.
        op: AluOp,
        /// Execution latency in cycles (1 for simple ops, more for `Mul`).
        latency: u8,
    },
    /// `dst = mem[reg(base) + offset]` (8-byte word).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `mem[reg(base) + offset] = reg(src)`; performed at commit.
    Store {
        /// Value register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Conditional branch on a register; taken -> `target`, else fall
    /// through to `pc + 1`.
    Branch {
        /// Condition source register.
        src: Reg,
        /// Condition.
        cond: BranchCond,
        /// Taken target.
        target: Pc,
    },
    /// Unconditional jump.
    Jump {
        /// Target.
        target: Pc,
    },
    /// Call: writes `pc + 1` to the link register and jumps.
    Call {
        /// Callee entry.
        target: Pc,
    },
    /// Return: indirect jump to the link-register value (predicted by the
    /// return-address stack).
    Ret,
    /// Flushes `mem[reg(base) + offset]`'s line from the whole hierarchy.
    /// Ordered like a store: performed at commit (Section 3.5, Table 2).
    Clflush {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Full fence: issues only when it is the oldest instruction.
    Fence,
    /// Stops the program when committed.
    Halt,
}

impl Inst {
    /// Whether this is a control-flow instruction needing prediction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Ret
        )
    }

    /// Whether this instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this instruction writes memory (store or flush).
    pub fn is_store_like(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Clflush { .. })
    }
}

/// A program: instructions plus initial architectural state.
#[derive(Clone, Debug, Default)]
pub struct Program {
    insts: Vec<Inst>,
    /// Entry point.
    pub entry: Pc,
    /// Initial register values (unlisted registers start at 0).
    pub init_regs: Vec<(Reg, u64)>,
    /// Initial memory words (8-byte aligned); unlisted words read as a
    /// pseudo-random function of their address.
    pub init_mem: Vec<(Addr, u64)>,
    /// Human-readable name for reports.
    pub name: String,
    /// Protected byte-address ranges `[start, end)`: a load touching one
    /// raises a fault that is detected only at commit — the
    /// permission-check race exploited by Meltdown-class attacks. The
    /// data still flows to dependents transiently.
    pub protected_ranges: Vec<(Addr, Addr)>,
    /// Where execution resumes after a fault (like an OS signal handler);
    /// `None` halts the program.
    pub fault_handler: Option<Pc>,
}

impl Program {
    /// Creates a program from instructions, entry at 0.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        Program {
            insts,
            entry: 0,
            init_regs: Vec::new(),
            init_mem: Vec::new(),
            name: name.into(),
            protected_ranges: Vec::new(),
            fault_handler: None,
        }
    }

    /// Instruction at `pc`; out-of-range fetch (possible on the wrong path)
    /// reads as [`Inst::Halt`] so runaway wrong paths stop fetching.
    pub fn fetch(&self, pc: Pc) -> Inst {
        self.insts.get(pc).copied().unwrap_or(Inst::Halt)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// All instructions (for analysis tools).
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Whether a byte address lies in a protected range.
    pub fn is_protected(&self, addr: Addr) -> bool {
        self.protected_ranges
            .iter()
            .any(|(s, e)| addr.raw() >= s.raw() && addr.raw() < e.raw())
    }
}

/// Convenience builder for writing programs by hand.
///
/// ```
/// use cleanupspec_core::isa::{ProgramBuilder, Reg, Operand, AluOp};
/// let mut b = ProgramBuilder::new("demo");
/// b.movi(Reg(1), 0x1000);
/// b.load(Reg(2), Reg(1), 0);
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    init_regs: Vec<(Reg, u64)>,
    init_mem: Vec<(Addr, u64)>,
    name: String,
    protected_ranges: Vec<(Addr, Addr)>,
    fault_handler: Option<Pc>,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Current PC (index of the next emitted instruction).
    pub fn here(&self) -> Pc {
        self.insts.len()
    }

    /// Emits a raw instruction; returns its PC.
    pub fn emit(&mut self, inst: Inst) -> Pc {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// `dst = imm` (encoded as `dst = 0 + imm` with `r0` kept at zero by
    /// convention — the builder never writes `r0`).
    pub fn movi(&mut self, dst: Reg, imm: u64) -> Pc {
        self.emit(Inst::Alu {
            dst,
            src1: Operand::Imm(imm as i64),
            src2: Operand::Imm(0),
            op: AluOp::Add,
            latency: 1,
        })
    }

    /// Three-operand ALU op with unit latency.
    pub fn alu(&mut self, dst: Reg, op: AluOp, src1: Operand, src2: Operand) -> Pc {
        self.emit(Inst::Alu {
            dst,
            src1,
            src2,
            op,
            latency: if op == AluOp::Mul { 3 } else { 1 },
        })
    }

    /// `dst = mem[base + offset]`.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64) -> Pc {
        self.emit(Inst::Load { dst, base, offset })
    }

    /// `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) -> Pc {
        self.emit(Inst::Store { src, base, offset })
    }

    /// Conditional branch; patch the target later with [`patch_branch`].
    ///
    /// [`patch_branch`]: ProgramBuilder::patch_branch
    pub fn branch(&mut self, src: Reg, cond: BranchCond, target: Pc) -> Pc {
        self.emit(Inst::Branch { src, cond, target })
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: Pc) -> Pc {
        self.emit(Inst::Jump { target })
    }

    /// Rewrites the target of a previously emitted branch or jump.
    ///
    /// # Panics
    /// Panics if `at` is not a branch/jump/call.
    pub fn patch_branch(&mut self, at: Pc, new_target: Pc) {
        match &mut self.insts[at] {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target } => {
                *target = new_target;
            }
            other => panic!("patch_branch at non-branch {other:?}"),
        }
    }

    /// `clflush mem[base + offset]`.
    pub fn clflush(&mut self, base: Reg, offset: i64) -> Pc {
        self.emit(Inst::Clflush { base, offset })
    }

    /// Fence.
    pub fn fence(&mut self) -> Pc {
        self.emit(Inst::Fence)
    }

    /// Halt.
    pub fn halt(&mut self) -> Pc {
        self.emit(Inst::Halt)
    }

    /// Call / return.
    pub fn call(&mut self, target: Pc) -> Pc {
        self.emit(Inst::Call { target })
    }

    /// Return via the link register.
    pub fn ret(&mut self) -> Pc {
        self.emit(Inst::Ret)
    }

    /// Sets an initial register value.
    pub fn init_reg(&mut self, reg: Reg, value: u64) -> &mut Self {
        self.init_regs.push((reg, value));
        self
    }

    /// Sets an initial memory word.
    pub fn init_mem(&mut self, addr: Addr, value: u64) -> &mut Self {
        self.init_mem.push((addr, value));
        self
    }

    /// Marks `[start, end)` as protected: loads fault at commit
    /// (Meltdown-style deferred permission check).
    pub fn protect(&mut self, start: Addr, end: Addr) -> &mut Self {
        self.protected_ranges.push((start, end));
        self
    }

    /// Sets the fault handler entry point.
    pub fn on_fault(&mut self, handler: Pc) -> &mut Self {
        self.fault_handler = Some(handler);
        self
    }

    /// Finalizes the program.
    pub fn build(self) -> Program {
        Program {
            insts: self.insts,
            entry: 0,
            init_regs: self.init_regs,
            init_mem: self.init_mem,
            name: self.name,
            protected_ranges: self.protected_ranges,
            fault_handler: self.fault_handler,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.apply(4, 5), 20);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        assert_eq!(AluOp::Shl.apply(1, 64), 1, "shift masks to 6 bits");
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Zero.taken(0));
        assert!(!BranchCond::Zero.taken(1));
        assert!(BranchCond::NotZero.taken(5));
        assert!(BranchCond::Negative.taken(u64::MAX));
        assert!(!BranchCond::Negative.taken(1));
    }

    #[test]
    fn out_of_range_fetch_halts() {
        let p = Program::new("t", vec![Inst::Nop]);
        assert_eq!(p.fetch(0), Inst::Nop);
        assert_eq!(p.fetch(99), Inst::Halt);
    }

    #[test]
    fn builder_emits_and_patches() {
        let mut b = ProgramBuilder::new("t");
        let br = b.branch(Reg(1), BranchCond::Zero, 0);
        b.halt();
        let skip = b.here();
        b.patch_branch(br, skip);
        let p = b.build();
        assert_eq!(
            p.fetch(br),
            Inst::Branch {
                src: Reg(1),
                cond: BranchCond::Zero,
                target: skip
            }
        );
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn classification_helpers() {
        assert!(Inst::Ret.is_control());
        assert!(Inst::Load {
            dst: Reg(1),
            base: Reg(2),
            offset: 0
        }
        .is_load());
        assert!(Inst::Clflush {
            base: Reg(1),
            offset: 0
        }
        .is_store_like());
        assert!(!Inst::Nop.is_control());
    }
}
