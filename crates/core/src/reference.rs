//! In-order reference interpreter over the micro-ISA.
//!
//! This is the architectural ground truth the differential oracles compare
//! against: a straight-line interpreter with no pipeline, no speculation,
//! and no caches. Whatever it computes — final registers, memory image,
//! committed-instruction stream — is *the* architecturally correct result;
//! every security scheme must match it exactly, because speculation
//! schemes are allowed to change timing and cache state but never
//! architecture.
//!
//! Promoted out of `tests/reference_model.rs` so the `cs-smith` fuzzing
//! harness (`cleanupspec-bench`) and the property tests share one model.

use crate::datamem::DataMem;
use crate::isa::{Inst, Operand, Pc, Program, LINK_REG, NUM_REGS};
use cleanupspec_mem::rng::mix64;
use cleanupspec_mem::types::Addr;
use std::collections::BTreeSet;

/// One architecturally executed instruction: its PC and, for loads, the
/// cache line it read. Mirrors the pipeline's `SimEvent::Commit` payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommitRecord {
    /// Program counter of the instruction.
    pub pc: Pc,
    /// Accessed line (raw line address) for loads; `None` otherwise.
    pub line: Option<u64>,
}

/// Result of an in-order reference execution.
#[derive(Clone, Debug)]
pub struct RefRun {
    /// Final register file.
    pub regs: [u64; NUM_REGS],
    /// Final memory image (init values + stores).
    pub mem: DataMem,
    /// Every executed instruction in order, including the final `Halt`.
    pub commits: Vec<CommitRecord>,
    /// Raw line addresses touched by committed loads and stores, plus the
    /// program's `init_mem` lines. On a squash-clean scheme, any line
    /// resident in a cache at the end of a run must come from this set —
    /// anything else is wrong-path residue.
    pub touched_lines: BTreeSet<u64>,
    /// Whether the program reached `Halt` within the step budget. When
    /// false, the remaining fields reflect the state at the budget limit.
    pub halted: bool,
}

impl RefRun {
    /// Order-sensitive digest of the full architectural state: registers,
    /// memory image, and committed PC stream. Two runs are architecturally
    /// equivalent iff their digests match.
    pub fn arch_digest(&self) -> u64 {
        let regs = reg_digest(self.regs.iter().copied());
        let pcs = self
            .commits
            .iter()
            .fold(0xC0_4417u64, |acc, c| mix64(acc ^ c.pc as u64));
        mix64(regs ^ mix64(self.mem.image_digest() ^ pcs))
    }
}

/// Order-sensitive digest of a register file (helper for comparing the
/// pipeline's registers against [`RefRun::regs`] without copying).
pub fn reg_digest(regs: impl IntoIterator<Item = u64>) -> u64 {
    regs.into_iter()
        .enumerate()
        .fold(0x5EED_4E65, |acc, (i, v)| mix64(acc ^ mix64(v ^ i as u64)))
}

/// Executes `p` in order, recording the commit stream and touched lines.
///
/// Stops after `max_steps` instructions if the program has not halted
/// (`halted: false` in the result) — generated programs are expected to
/// terminate, and the harness treats budget overruns as a skip, not a
/// failure.
pub fn interpret(p: &Program, max_steps: usize) -> RefRun {
    let mut regs = [0u64; NUM_REGS];
    for (r, v) in &p.init_regs {
        regs[r.index()] = *v;
    }
    let mut mem = DataMem::new();
    let mut touched = BTreeSet::new();
    for (a, v) in &p.init_mem {
        mem.write(*a, *v);
        touched.insert(a.line().raw());
    }
    let mut commits = Vec::new();
    let mut pc: Pc = p.entry;
    for _ in 0..max_steps {
        let inst = p.fetch(pc);
        let mut line = None;
        let mut next = pc + 1;
        match inst {
            Inst::Nop | Inst::Fence | Inst::Clflush { .. } => {}
            Inst::Halt => {
                commits.push(CommitRecord { pc, line: None });
                return RefRun {
                    regs,
                    mem,
                    commits,
                    touched_lines: touched,
                    halted: true,
                };
            }
            Inst::Alu {
                dst,
                src1,
                src2,
                op,
                ..
            } => {
                let a = operand(&regs, src1);
                let b = operand(&regs, src2);
                regs[dst.index()] = op.apply(a, b);
            }
            Inst::Load { dst, base, offset } => {
                let addr = Addr::new(regs[base.index()].wrapping_add(offset as u64));
                regs[dst.index()] = mem.read(addr);
                line = Some(addr.line().raw());
                touched.insert(addr.line().raw());
            }
            Inst::Store { src, base, offset } => {
                let addr = Addr::new(regs[base.index()].wrapping_add(offset as u64));
                mem.write(addr, regs[src.index()]);
                touched.insert(addr.line().raw());
            }
            Inst::Branch { src, cond, target } => {
                if cond.taken(regs[src.index()]) {
                    next = target;
                }
            }
            Inst::Jump { target } => next = target,
            Inst::Call { target } => {
                regs[LINK_REG.index()] = (pc + 1) as u64;
                next = target;
            }
            Inst::Ret => next = regs[LINK_REG.index()] as Pc,
        }
        commits.push(CommitRecord { pc, line });
        pc = next;
    }
    RefRun {
        regs,
        mem,
        commits,
        touched_lines: touched,
        halted: false,
    }
}

fn operand(regs: &[u64; NUM_REGS], o: Operand) -> u64 {
    match o {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => v as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, BranchCond, ProgramBuilder, Reg};

    #[test]
    fn straight_line_program() {
        let mut b = ProgramBuilder::new("t");
        b.movi(Reg(1), 5);
        b.alu(Reg(2), AluOp::Add, Operand::Reg(Reg(1)), Operand::Imm(3));
        b.movi(Reg(3), 0x5000);
        b.store(Reg(2), Reg(3), 0);
        b.load(Reg(4), Reg(3), 0);
        b.halt();
        let r = interpret(&b.build(), 100);
        assert!(r.halted);
        assert_eq!(r.regs[2], 8);
        assert_eq!(r.regs[4], 8);
        assert_eq!(r.commits.len(), 6);
        // The load's commit record carries its line; others carry none.
        assert_eq!(r.commits[4].line, Some(Addr::new(0x5000).line().raw()));
        assert_eq!(r.commits[3].line, None);
        assert!(r.touched_lines.contains(&Addr::new(0x5000).line().raw()));
    }

    #[test]
    fn non_terminating_program_reports_not_halted() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.here();
        b.jump(top);
        let r = interpret(&b.build(), 50);
        assert!(!r.halted);
        assert_eq!(r.commits.len(), 50);
    }

    #[test]
    fn digests_distinguish_state() {
        let mut b = ProgramBuilder::new("a");
        b.movi(Reg(1), 1);
        b.halt();
        let a = interpret(&b.build(), 10);
        let mut b2 = ProgramBuilder::new("b");
        b2.movi(Reg(1), 2);
        b2.halt();
        let b2 = interpret(&b2.build(), 10);
        assert_ne!(a.arch_digest(), b2.arch_digest());
        assert_eq!(a.arch_digest(), interpret_again(&a));
    }

    fn interpret_again(r: &RefRun) -> u64 {
        // Digest is a pure function of the run.
        r.arch_digest()
    }

    #[test]
    fn branch_and_loop() {
        let mut b = ProgramBuilder::new("loop");
        b.movi(Reg(1), 3);
        let top = b.here();
        b.alu(Reg(2), AluOp::Add, Operand::Reg(Reg(2)), Operand::Imm(10));
        b.alu(Reg(1), AluOp::Sub, Operand::Reg(Reg(1)), Operand::Imm(1));
        b.branch(Reg(1), BranchCond::NotZero, top);
        b.halt();
        let r = interpret(&b.build(), 1000);
        assert!(r.halted);
        assert_eq!(r.regs[2], 30);
    }
}
