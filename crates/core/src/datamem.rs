//! Architectural data memory.
//!
//! The cache hierarchy (`cleanupspec-mem`) decides *timing and side
//! effects*; this module holds the actual data values so that register
//! dataflow — in particular the secret-dependent address computation at the
//! heart of Spectre — is real. Words are 8 bytes. Unwritten words read as a
//! pseudo-random pure function of their address, which lets workloads
//! stream over gigabytes of address space without materializing it.

use cleanupspec_mem::rng::mix64;
use cleanupspec_mem::types::Addr;
use std::collections::HashMap;

/// Sparse word-granular memory with hashed default contents.
#[derive(Clone, Debug, Default)]
pub struct DataMem {
    words: HashMap<u64, u64>,
}

impl DataMem {
    /// Empty memory (all addresses read their hashed default).
    pub fn new() -> Self {
        DataMem::default()
    }

    fn word_index(addr: Addr) -> u64 {
        addr.raw() >> 3
    }

    /// Reads the 8-byte word containing `addr`.
    pub fn read(&self, addr: Addr) -> u64 {
        let w = Self::word_index(addr);
        self.words
            .get(&w)
            .copied()
            .unwrap_or_else(|| mix64(w ^ 0xDA7A_0000_0000_0000))
    }

    /// Writes the 8-byte word containing `addr`.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words.insert(Self::word_index(addr), value);
    }

    /// Number of explicitly written words.
    pub fn written_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates the explicitly written words as `(word_index, value)`.
    /// Word index is `addr >> 3`; order is unspecified.
    pub fn words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter().map(|(&w, &v)| (w, v))
    }

    /// Order-independent digest of the memory image.
    ///
    /// Words whose stored value equals the hashed default are normalized
    /// away, so an image that wrote a word back to its default value hashes
    /// the same as one that never touched it — the architectural contents
    /// are identical. Used by the cross-scheme equivalence oracle.
    pub fn image_digest(&self) -> u64 {
        let mut hs: Vec<u64> = self
            .words
            .iter()
            .filter(|&(&w, &v)| v != mix64(w ^ 0xDA7A_0000_0000_0000))
            .map(|(&w, &v)| mix64(mix64(w ^ 0x1A9E_0000_0000_0000) ^ v))
            .collect();
        hs.sort_unstable();
        hs.into_iter()
            .fold(0x5EED_DA7A_1A9E_0001, |acc, h| mix64(acc ^ h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut m = DataMem::new();
        m.write(Addr::new(0x100), 42);
        assert_eq!(m.read(Addr::new(0x100)), 42);
        // Same word, different byte offset.
        assert_eq!(m.read(Addr::new(0x104)), 42);
    }

    #[test]
    fn default_values_deterministic_and_addr_dependent() {
        let m = DataMem::new();
        assert_eq!(m.read(Addr::new(0x40)), m.read(Addr::new(0x40)));
        assert_ne!(m.read(Addr::new(0x40)), m.read(Addr::new(0x48)));
        assert_eq!(m.written_words(), 0);
    }

    #[test]
    fn writes_do_not_bleed_across_words() {
        let mut m = DataMem::new();
        let before = m.read(Addr::new(0x208));
        m.write(Addr::new(0x200), 7);
        assert_eq!(m.read(Addr::new(0x208)), before);
    }
}
