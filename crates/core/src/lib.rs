//! # cleanupspec-core
//!
//! Out-of-order core substrate for the CleanupSpec reproduction
//! (Saileshwar & Qureshi, MICRO 2019).
//!
//! Models the paper's Table-4 core — 192-entry ROB, 32-entry LQ/SQ,
//! tournament branch predictor with BTB and RAS — over a small micro-ISA,
//! with **real wrong-path execution**: mispredicted branches cause the
//! front end to fetch and execute transient instructions whose loads access
//! the shared cache hierarchy of [`cleanupspec_mem`]. Security policies are
//! plugged in through the [`scheme::SpeculationScheme`] trait; the policies
//! themselves (CleanupSpec, InvisiSpec, non-secure, …) live in the
//! `cleanupspec` crate.
//!
//! ## Example
//!
//! ```
//! use cleanupspec_core::isa::{ProgramBuilder, Reg};
//! let mut b = ProgramBuilder::new("hello");
//! b.movi(Reg(1), 41);
//! b.alu(Reg(1), cleanupspec_core::isa::AluOp::Add,
//!       cleanupspec_core::isa::Operand::Reg(Reg(1)),
//!       cleanupspec_core::isa::Operand::Imm(1));
//! b.halt();
//! let program = b.build();
//! assert_eq!(program.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bpred;
pub mod datamem;
pub mod isa;
pub mod pipeline;
pub mod reference;
pub mod scheme;
pub mod stats;
pub mod system;
pub mod trace;

pub use datamem::DataMem;
pub use isa::{AluOp, BranchCond, Inst, Operand, Pc, Program, ProgramBuilder, Reg};
pub use pipeline::{CoreConfig, Pipeline};
pub use reference::{interpret, CommitRecord, RefRun};
pub use scheme::{
    CommitAction, CommittedLoad, LoadIssue, LoadIssuePolicy, SpeculationScheme, SquashInfo,
    SquashResponse, SquashedLoad, SquashedLoadState,
};
pub use stats::{CoreStats, SquashedClass};
pub use system::{RunLimits, StopReason, System};
pub use trace::{TraceBuffer, TraceEvent, TraceRecord};
