//! The [`SpeculationScheme`] trait: the seam between the out-of-order
//! pipeline (this crate) and the security policies (the `cleanupspec`
//! crate).
//!
//! The pipeline is mechanism: it fetches, speculates, executes wrong paths,
//! and squashes. A `SpeculationScheme` decides policy at the three points
//! the paper identifies:
//!
//! 1. **Load issue** — how a speculative load accesses the cache hierarchy
//!    (normal install for CleanupSpec/non-secure, invisible for InvisiSpec,
//!    GetS-Safe for CleanupSpec's coherence-downgrade delay).
//! 2. **Load commit** — what happens at the visibility point (nothing,
//!    clearing the speculation-window tag, or InvisiSpec's update load).
//! 3. **Squash** — what happens to the cache state changes of squashed
//!    loads (retained, dropped, or undone) and how long the core stalls.

use cleanupspec_mem::error::SimError;
use cleanupspec_mem::hierarchy::{LoadOutcome, MemHierarchy};
use cleanupspec_mem::mshr::{LoadPath, MshrToken, SefeRecord};
use cleanupspec_mem::types::{CoreId, Cycle, LineAddr, LoadId};

/// When loads may be issued to the memory system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadIssuePolicy {
    /// Loads issue as soon as their operands are ready (speculatively).
    Speculative,
    /// Loads issue only once unsquashable (no older unresolved branch) —
    /// the "delay-based" baseline family (Section 7.3.2).
    WhenUnsquashable,
}

/// Parameters of a load being issued.
#[derive(Clone, Copy, Debug)]
pub struct LoadIssue {
    /// Issuing core.
    pub core: CoreId,
    /// Target line.
    pub line: LineAddr,
    /// Issue cycle.
    pub now: Cycle,
    /// Whether the load is still squashable (an older unresolved branch
    /// exists). Under the paper's threat model every such load is unsafe.
    pub is_spec: bool,
}

/// What the scheme wants the pipeline to do when a load retires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitAction {
    /// Retire immediately.
    Proceed,
    /// Stall commit until the given cycle (InvisiSpec's initial-estimate
    /// behaviour: the update load is on the critical path, Section 2.3.1).
    StallUntil(Cycle),
    /// Retire now but keep the load-queue entry occupied until the given
    /// cycle (InvisiSpec's revised behaviour: the update load is off the
    /// critical path but still holds LQ resources, Section 6.5).
    HoldLqUntil(Cycle),
}

/// View of a retiring load given to [`SpeculationScheme::commit_load`].
#[derive(Clone, Copy, Debug)]
pub struct CommittedLoad {
    /// Line the load accessed.
    pub line: LineAddr,
    /// Whether the load was speculative when issued.
    pub issued_spec: bool,
    /// Service path (`None` if the value was forwarded from the store
    /// queue and the cache was never accessed).
    pub path: Option<LoadPath>,
    /// Whether an older load was still pending when this load reached its
    /// visibility point. Under TSO, InvisiSpec must then *validate* the
    /// exposed value before retirement (the update load lands on the
    /// critical path); otherwise the update can be fire-and-forget
    /// ("expose" in InvisiSpec's terms).
    pub needs_validation: bool,
}

/// Execution state of a squashed load at squash time.
#[derive(Clone, Copy, Debug)]
pub enum SquashedLoadState {
    /// The load never issued to the memory system (no side effects).
    NotIssued,
    /// Issued but its response is still in flight (CleanupSpec drops it by
    /// bumping the epoch; insecure modes let it fill as an orphan).
    Inflight {
        /// Service path decided at issue.
        path: LoadPath,
        /// MSHR token, when this load owns an entry.
        token: Option<MshrToken>,
    },
    /// Completed: its side effects are recorded in the SEFE.
    Executed {
        /// Service path.
        path: LoadPath,
        /// Side-effect record to undo.
        sefe: SefeRecord,
    },
}

/// One squashed load, as reported to [`SpeculationScheme::on_squash`].
#[derive(Clone, Copy, Debug)]
pub struct SquashedLoad {
    /// Accessed line (`None` if the address was never computed).
    pub line: Option<LineAddr>,
    /// Completion-order id (SEFE `LoadID`); set for executed loads.
    pub load_id: Option<LoadId>,
    /// State at squash time.
    pub state: SquashedLoadState,
}

/// Context for a squash event.
#[derive(Debug)]
pub struct SquashInfo<'a> {
    /// Core being squashed.
    pub core: CoreId,
    /// Cycle the mis-speculation was detected.
    pub mispredict_at: Cycle,
    /// Cycle `on_squash` is invoked (after any wait for older inflight
    /// loads, per Section 3.4).
    pub now: Cycle,
    /// The squashed loads, oldest first.
    pub loads: &'a [SquashedLoad],
}

/// Scheme response to a squash.
#[derive(Clone, Copy, Debug)]
pub struct SquashResponse {
    /// Cycle at which the front end may resume fetching (>= `now`). The
    /// pipeline applies its own redirect penalty on top.
    pub resume_at: Cycle,
}

/// A speculation-security policy plugged into the pipeline.
///
/// Implementations live in the `cleanupspec` crate: `NonSecure`,
/// `CleanupSpec`, `NaiveInvalidate`, `InvisiSpec` (initial and revised),
/// and `DelayOnMiss`-style baselines.
pub trait SpeculationScheme: std::fmt::Debug {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Deep-copies the scheme, including every internal counter, pending
    /// cleanup deadline, and validation-queue slot, so a cs-snap
    /// [`crate::system::System`] clone resumes with identical policy
    /// decisions.
    fn boxed_clone(&self) -> Box<dyn SpeculationScheme>;

    /// When loads may issue.
    fn issue_policy(&self) -> LoadIssuePolicy {
        LoadIssuePolicy::Speculative
    }

    /// Issues a load to the hierarchy.
    ///
    /// # Errors
    /// Propagates [`SimError::MshrFull`] so the pipeline retries the load
    /// later.
    fn issue_load(
        &mut self,
        mem: &mut MemHierarchy,
        req: LoadIssue,
    ) -> Result<LoadOutcome, SimError>;

    /// Invoked once when a completed speculative load becomes
    /// *unsquashable* (no older unresolved branch) — InvisiSpec's
    /// visibility point. May start an update load; returns the cycle the
    /// update completes, which retirement must not pass. Default: no-op.
    fn on_load_visible(
        &mut self,
        _mem: &mut MemHierarchy,
        _core: CoreId,
        _load: CommittedLoad,
        _now: Cycle,
    ) -> Option<Cycle> {
        None
    }

    /// Invoked when a load reaches its visibility point (retirement).
    fn commit_load(
        &mut self,
        mem: &mut MemHierarchy,
        core: CoreId,
        load: CommittedLoad,
        now: Cycle,
    ) -> CommitAction;

    /// Whether squash handling first waits for older (correct-path)
    /// inflight loads to complete (CleanupSpec, Section 3.4).
    fn waits_for_older_inflight(&self) -> bool {
        false
    }

    /// Whether the pipeline must stall all issue while cleanup runs.
    fn stalls_issue_during_cleanup(&self) -> bool {
        false
    }

    /// Whether speculation-window SEFE-extension messages are sent for
    /// loads that stay speculative beyond the window interval
    /// (Section 3.6). The pipeline charges the traffic.
    fn uses_window_protection(&self) -> bool {
        false
    }

    /// Handles a squash: disposes of the squashed loads' cache-state
    /// changes and reports when the core may resume.
    fn on_squash(&mut self, mem: &mut MemHierarchy, info: SquashInfo<'_>) -> SquashResponse;

    /// Zeroes any scheme-internal counters (cleanup-op tallies, update-load
    /// counts, …) so warmup activity does not leak into measured stats.
    /// Called from `System::reset_stats`. Default: no counters, no-op.
    fn reset_stats(&mut self) {}

    /// Scheme-internal counters as `(name, value)` pairs, for reports and
    /// the warmup-reset regression test. Default: none.
    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

impl Clone for Box<dyn SpeculationScheme> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_action_equality() {
        assert_eq!(CommitAction::Proceed, CommitAction::Proceed);
        assert_ne!(CommitAction::Proceed, CommitAction::StallUntil(3));
        assert_ne!(CommitAction::StallUntil(3), CommitAction::StallUntil(4));
    }

    #[test]
    fn default_trait_knobs() {
        #[derive(Clone, Debug)]
        struct Dummy;
        impl SpeculationScheme for Dummy {
            fn name(&self) -> &'static str {
                "dummy"
            }
            fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
                Box::new(self.clone())
            }
            fn issue_load(
                &mut self,
                _mem: &mut MemHierarchy,
                _req: LoadIssue,
            ) -> Result<LoadOutcome, SimError> {
                unimplemented!()
            }
            fn commit_load(
                &mut self,
                _mem: &mut MemHierarchy,
                _core: CoreId,
                _load: CommittedLoad,
                _now: Cycle,
            ) -> CommitAction {
                CommitAction::Proceed
            }
            fn on_squash(
                &mut self,
                _mem: &mut MemHierarchy,
                info: SquashInfo<'_>,
            ) -> SquashResponse {
                SquashResponse {
                    resume_at: info.now,
                }
            }
        }
        let d = Dummy;
        assert_eq!(d.issue_policy(), LoadIssuePolicy::Speculative);
        assert!(!d.waits_for_older_inflight());
        assert!(!d.stalls_issue_during_cleanup());
        assert!(!d.uses_window_protection());
    }
}
