//! Execution tracing: a bounded ring buffer of pipeline events for
//! debugging simulations and inspecting attack timelines.
//!
//! Tracing is off by default (zero overhead beyond an `Option` check);
//! enable it with [`crate::pipeline::Pipeline::enable_trace`].

use crate::isa::Pc;
use cleanupspec_mem::mshr::LoadPath;
use cleanupspec_mem::types::{Cycle, LineAddr};
use std::collections::VecDeque;
use std::fmt;

/// One traced pipeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Instruction dispatched into the ROB.
    Dispatch {
        /// Sequence number.
        seq: u64,
        /// Fetch PC.
        pc: Pc,
    },
    /// A load issued to the memory hierarchy.
    LoadIssue {
        /// Sequence number.
        seq: u64,
        /// Target line.
        line: LineAddr,
        /// Service path decided at issue.
        path: LoadPath,
        /// Whether it was speculative.
        spec: bool,
    },
    /// Instruction committed (retired).
    Commit {
        /// Sequence number.
        seq: u64,
        /// PC.
        pc: Pc,
    },
    /// A squash removed `squashed` instructions younger than `seq`.
    Squash {
        /// The squash point (the mispredicted branch / faulting load).
        seq: u64,
        /// Number of instructions squashed.
        squashed: u64,
    },
    /// A deferred fault was raised at the ROB head.
    Fault {
        /// The faulting load's sequence number.
        seq: u64,
    },
}

/// A timestamped event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle of the event.
    pub cycle: Cycle,
    /// The event.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] ", self.cycle)?;
        match self.event {
            TraceEvent::Dispatch { seq, pc } => write!(f, "dispatch seq={seq} pc={pc}"),
            TraceEvent::LoadIssue {
                seq,
                line,
                path,
                spec,
            } => write!(
                f,
                "load     seq={seq} line={line} path={path}{}",
                if spec { " (spec)" } else { "" }
            ),
            TraceEvent::Commit { seq, pc } => write!(f, "commit   seq={seq} pc={pc}"),
            TraceEvent::Squash { seq, squashed } => {
                write!(f, "squash   at seq={seq}, {squashed} insts")
            }
            TraceEvent::Fault { seq } => write!(f, "FAULT    seq={seq}"),
        }
    }
}

/// Bounded event buffer (oldest events are dropped when full).
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<TraceRecord>,
    total: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.min(4096)),
            total: 0,
        }
    }

    /// Records an event.
    pub fn push(&mut self, cycle: Cycle, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceRecord { cycle, event });
        self.total += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceRecord> {
        self.events.iter()
    }

    /// Total events ever recorded (including dropped ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Renders the retained events as text, one per line.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for r in &self.events {
            s.push_str(&r.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.push(i, TraceEvent::Dispatch { seq: i, pc: 0 });
        }
        assert_eq!(t.total_recorded(), 5);
        let cycles: Vec<Cycle> = t.events().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn dump_is_line_per_event() {
        let mut t = TraceBuffer::new(10);
        t.push(1, TraceEvent::Dispatch { seq: 1, pc: 7 });
        t.push(
            2,
            TraceEvent::LoadIssue {
                seq: 1,
                line: LineAddr::new(0x40),
                path: LoadPath::Mem,
                spec: true,
            },
        );
        t.push(
            9,
            TraceEvent::Squash {
                seq: 1,
                squashed: 4,
            },
        );
        let d = t.dump();
        assert_eq!(d.lines().count(), 3);
        assert!(d.contains("dispatch seq=1 pc=7"));
        assert!(d.contains("(spec)"));
        assert!(d.contains("squash"));
    }
}
