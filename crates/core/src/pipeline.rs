//! The out-of-order core pipeline.
//!
//! A cycle-stepped model of the Table-4 core: fetch (with tournament
//! branch prediction), dispatch into a 192-entry ROB with 32-entry load and
//! store queues, dataflow issue, execution, in-order commit — and, crucially
//! for this paper, **real wrong-path execution**: after a mispredicted
//! branch the front end keeps fetching and executing down the predicted
//! path, wrong-path loads access (and pollute) the cache hierarchy, and the
//! squash machinery hands the resulting side effects to the active
//! [`SpeculationScheme`] to retain (non-secure), drop (InvisiSpec), or undo
//! (CleanupSpec).

use crate::bpred::TournamentPredictor;
use crate::datamem::DataMem;
use crate::isa::{Inst, Pc, Program, Reg, LINK_REG, NUM_REGS};
use crate::scheme::{
    CommitAction, CommittedLoad, LoadIssue, LoadIssuePolicy, SpeculationScheme, SquashInfo,
    SquashedLoad, SquashedLoadState,
};
use crate::stats::{CoreStats, SquashedClass, StallCause};
use crate::trace::{TraceBuffer, TraceEvent};
use cleanupspec_mem::hierarchy::{MemHierarchy, MissProvenance};
use cleanupspec_mem::mshr::{LoadPath, MshrToken, SefeRecord};
use cleanupspec_mem::stats::MsgClass;
use cleanupspec_mem::types::{Addr, CoreId, Cycle, LineAddr, LoadId};
use cleanupspec_obs::{Observer, PathKind, SimEvent};
use std::collections::VecDeque;
use std::sync::Arc;

/// Core configuration (defaults follow Table 4).
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Reorder-buffer entries (192).
    pub rob_entries: usize,
    /// Load-queue entries (32).
    pub lq_entries: usize,
    /// Store-queue entries (32).
    pub sq_entries: usize,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Front-end refill penalty after a redirect, in cycles.
    pub redirect_penalty: Cycle,
    /// Branch execute latency.
    pub branch_latency: Cycle,
    /// Branch predictor configuration.
    pub bpred: crate::bpred::BpredConfig,
    /// Interval of speculation-window SEFE extension messages (200 cycles,
    /// Section 3.6).
    pub window_extend_interval: Cycle,
    /// Cycles between a faulting load becoming ready to retire and the
    /// deferred permission check actually raising the exception — the race
    /// window Meltdown-class attacks exploit.
    pub fault_check_latency: Cycle,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            rob_entries: 192,
            lq_entries: 32,
            sq_entries: 32,
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            redirect_penalty: 3,
            branch_latency: 1,
            bpred: crate::bpred::BpredConfig::default(),
            window_extend_interval: 200,
            fault_check_latency: 20,
        }
    }
}

/// A source operand captured at dispatch.
#[derive(Clone, Copy, Debug)]
enum Src {
    /// Value known at dispatch (architectural or immediate).
    Ready(u64),
    /// Produced by the in-flight instruction with this sequence number.
    Wait(u64),
}

/// Execution status of a ROB entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Waiting,
    Issued { done_at: Cycle },
    Done,
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: u64,
    pc: Pc,
    inst: Inst,
    status: Status,
    srcs: [Option<Src>; 2],
    result: Option<u64>,
    dst: Option<Reg>,
    // Control-flow bookkeeping.
    pred_taken: bool,
    pred_target: Pc,
    actual_taken: bool,
    actual_target: Pc,
    mispredict_pending: bool,
    lq: Option<usize>,
    sq: Option<usize>,
    commit_ready_at: Option<Cycle>,
    committed_scheme_done: bool,
    /// The load touches a protected range: faults when it reaches commit
    /// (Meltdown-style deferred permission check).
    faulting: bool,
}

/// Load-queue entry state.
#[derive(Clone, Copy, Debug)]
enum LqState {
    NotIssued,
    /// GetS-Safe refusal: waiting to become unsquashable (Section 3.5).
    Deferred {
        line: LineAddr,
    },
    Inflight {
        line: LineAddr,
        token: Option<MshrToken>,
        path: LoadPath,
        issued_spec: bool,
        /// Scheme-overhead attribution of the miss (cycle accounting).
        prov: Option<MissProvenance>,
    },
    Done {
        line: Option<LineAddr>,
        path: Option<LoadPath>,
        sefe: SefeRecord,
        load_id: Option<LoadId>,
        issued_spec: bool,
        completed_at: Cycle,
        /// Completion cycle of the visibility-point update load, if the
        /// scheme started one ([`SpeculationScheme::on_load_visible`]).
        exposed_until: Option<Cycle>,
        /// Whether the visibility hook already ran for this load.
        visible_done: bool,
    },
}

#[derive(Clone, Copy, Debug)]
struct LqEntry {
    seq: u64,
    state: LqState,
}

#[derive(Clone, Copy, Debug)]
struct SqEntry {
    seq: u64,
    addr: Option<Addr>,
    value: Option<u64>,
}

/// Squash-handling phase.
#[derive(Clone, Debug)]
enum SquashPhase {
    /// Normal operation.
    Running,
    /// Waiting for older correct-path inflight loads to complete before
    /// invoking the scheme's cleanup (Section 3.4 / Figure 14).
    WaitInflight {
        mispredict_at: Cycle,
        loads: Vec<SquashedLoad>,
        /// Cleanup episode id opened by the first squash of this phase.
        /// Squashes merging in while waiting share it: they widen one
        /// cleanup invocation, which is what an episode is.
        episode: u64,
        /// Sequence number of the squash that opened the episode (the
        /// "triggering squash" stamped on cleanup events).
        seq: u64,
    },
}

/// One simulated out-of-order core.
///
/// `Clone` deep-copies the full microarchitectural state — ROB, LQ/SQ,
/// registers, predictor tables, in-flight squash phase — forming the
/// per-core half of a cs-snap snapshot. The `Program` stays `Arc`-shared
/// (immutable) and the observer handle is shared with the clone.
#[derive(Clone, Debug)]
pub struct Pipeline {
    core: CoreId,
    cfg: CoreConfig,
    program: Arc<Program>,
    pred: TournamentPredictor,
    regs: [u64; NUM_REGS],
    last_writer: [Option<u64>; NUM_REGS],
    rob: VecDeque<RobEntry>,
    lq: Vec<Option<LqEntry>>,
    sq: Vec<Option<SqEntry>>,
    lq_held: Vec<Cycle>,
    next_seq: u64,
    fetch_pc: Pc,
    fetch_halted: bool,
    halted: bool,
    fetch_stall_until: Cycle,
    /// End of the scheme's post-squash cleanup stall (the slice of
    /// `fetch_stall_until` owed to cleanup rather than the plain redirect
    /// penalty) — cycle accounting charges it to `CleanupInProgress`.
    cleanup_stall_until: Cycle,
    /// A load failed to issue this cycle because the MSHR/SEFE file was
    /// full (reset at the top of every tick; cycle accounting reads it).
    mshr_blocked: bool,
    squash: SquashPhase,
    /// Cleanup episodes opened so far (monotonic; the id of the episode
    /// currently open or most recently closed). Incremented only when a
    /// squash arrives while `Running` — merged squashes share an id.
    episodes: u64,
    /// A fatal (unhandled) fault was raised: halt once its cleanup is done.
    halt_after_squash: bool,
    load_id_ctr: u64,
    stats: CoreStats,
    trace: Option<TraceBuffer>,
    obs: Observer,
}

impl Pipeline {
    /// Creates a core executing `program` from its entry point.
    pub fn new(core: CoreId, cfg: CoreConfig, program: Arc<Program>) -> Self {
        let mut regs = [0u64; NUM_REGS];
        for (r, v) in &program.init_regs {
            regs[r.index()] = *v;
        }
        Pipeline {
            pred: TournamentPredictor::new(cfg.bpred.clone()),
            regs,
            last_writer: [None; NUM_REGS],
            rob: VecDeque::with_capacity(cfg.rob_entries),
            lq: (0..cfg.lq_entries).map(|_| None).collect(),
            sq: (0..cfg.sq_entries).map(|_| None).collect(),
            lq_held: Vec::new(),
            next_seq: 1,
            fetch_pc: program.entry,
            fetch_halted: false,
            halted: false,
            fetch_stall_until: 0,
            cleanup_stall_until: 0,
            mshr_blocked: false,
            squash: SquashPhase::Running,
            episodes: 0,
            halt_after_squash: false,
            load_id_ctr: 0,
            stats: CoreStats::default(),
            trace: None,
            obs: Observer::disabled(),
            core,
            cfg,
            program,
        }
    }

    /// Attaches the event-bus observer (structured [`SimEvent`]s; the
    /// legacy [`TraceBuffer`] keeps working independently).
    pub fn set_observer(&mut self, obs: Observer) {
        self.obs = obs;
    }

    /// Core identifier.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Whether the program has committed its `Halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Core statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Cleanup episodes opened so far (the per-core episode-id counter).
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Overwrites the episode counter (cs-snap checkpoint load; episode
    /// ids must keep climbing from where the snapshot left off so a
    /// restored run re-emits the same ids as the uninterrupted one).
    pub fn set_episodes(&mut self, n: u64) {
        self.episodes = n;
    }

    /// Mutable stats access (the runner stamps total cycles).
    pub fn stats_mut(&mut self) -> &mut CoreStats {
        &mut self.stats
    }

    /// Clears the statistics (end-of-warm-up). Architectural and
    /// microarchitectural state (caches, predictor, queues) is preserved.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    /// Architectural value of a register (for tests and harnesses; only
    /// meaningful once the writer has committed).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Number of live ROB entries (livelock diagnostics).
    pub fn rob_len(&self) -> usize {
        self.rob.len()
    }

    /// `(seq, pc)` of the ROB head instruction, if any (livelock
    /// diagnostics: the instruction the core is stuck behind).
    pub fn rob_head(&self) -> Option<(u64, u64)> {
        self.rob.front().map(|e| (e.seq, e.pc as u64))
    }

    /// Loads currently inflight in the load queue (livelock diagnostics).
    pub fn inflight_loads(&self) -> usize {
        self.lq
            .iter()
            .flatten()
            .filter(|l| matches!(l.state, LqState::Inflight { .. }))
            .count()
    }

    /// Enables event tracing with a ring buffer of `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    #[inline]
    fn emit(&mut self, cycle: Cycle, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(cycle, event);
        }
    }

    /// Advances the core by one cycle against the shared memory system.
    ///
    /// Every call charges exactly one cycle to the top-down CPI stack
    /// ([`CoreStats::cpi_stack`]): the per-core stack sums to the number
    /// of ticks, which the system runner keeps equal to elapsed cycles.
    pub fn tick(
        &mut self,
        scheme: &mut dyn SpeculationScheme,
        mem: &mut MemHierarchy,
        dmem: &mut DataMem,
        now: Cycle,
    ) {
        if self.halted {
            self.stats.cpi_stack.charge(StallCause::Halted);
            return;
        }
        self.mshr_blocked = false;
        self.lq_held.retain(|&c| c > now);
        self.complete(mem, now);
        // Squash handling runs BEFORE the visibility scan: when a branch
        // resolves mispredicted, its wrong-path loads must be squashed in
        // the same cycle — never exposed (they would otherwise appear
        // unsquashable for one cycle).
        self.process_squash(scheme, mem, now);
        self.visibility_scan(scheme, mem, now);
        let committed_before = self.stats.committed_insts;
        self.commit(scheme, mem, dmem, now);
        let committed = self.stats.committed_insts - committed_before;
        let issue_blocked = matches!(self.squash, SquashPhase::WaitInflight { .. })
            && scheme.stalls_issue_during_cleanup();
        if !issue_blocked {
            self.issue(scheme, mem, dmem, now);
        }
        self.fetch(now);
        let cause = self.classify_cycle(now, committed);
        self.stats.cpi_stack.charge(cause);
    }

    /// Charges one cycle to the `Harness` bucket: the system runner calls
    /// this for cycles it advances without ticking the cores (priming,
    /// probing, and draining phases), keeping the CPI-stack total equal to
    /// elapsed cycles.
    pub fn note_harness_cycle(&mut self) {
        self.stats.cpi_stack.charge(StallCause::Harness);
    }

    /// Attributes one committless cycle to the single dominant cause, in
    /// top-down priority order: the squash/cleanup machinery first, then
    /// whatever the ROB head is waiting on.
    fn classify_cycle(&self, now: Cycle, committed: u64) -> StallCause {
        if committed > 0 {
            return StallCause::Commit;
        }
        if matches!(self.squash, SquashPhase::WaitInflight { .. }) {
            return StallCause::WaitInflight;
        }
        let Some(head) = self.rob.front() else {
            // Empty ROB: the front end owns the cycle — either the scheme's
            // post-squash cleanup stall or an ordinary fetch bubble.
            return if now < self.cleanup_stall_until {
                StallCause::CleanupInProgress
            } else {
                StallCause::Frontend
            };
        };
        if head.faulting {
            // Deferred permission check in flight (Meltdown race window).
            return StallCause::Exec;
        }
        if head.status == Status::Done {
            if head.commit_ready_at.is_some_and(|at| now < at) {
                return StallCause::SchemeCommitStall;
            }
            return StallCause::Exec;
        }
        if head.inst.is_load() {
            let lqe = head
                .lq
                .and_then(|li| self.lq[li])
                .filter(|l| l.seq == head.seq);
            return match lqe.map(|l| l.state) {
                Some(LqState::Inflight { prov, path, .. }) => match prov {
                    Some(MissProvenance::TransientInval) => StallCause::TransientInvalidate,
                    Some(MissProvenance::RandomRepl) => StallCause::RandomReplMiss,
                    None => match path {
                        LoadPath::Mem => StallCause::LoadMem,
                        LoadPath::L2Hit | LoadPath::RemoteL1 | LoadPath::DummyMiss => {
                            StallCause::LoadL2
                        }
                        LoadPath::L1Hit => StallCause::Exec,
                    },
                },
                Some(LqState::Deferred { .. }) => StallCause::SchemeDefer,
                _ if self.mshr_blocked => StallCause::SefePressure,
                _ => StallCause::Exec,
            };
        }
        if matches!(head.inst, Inst::Store { .. }) {
            return StallCause::StoreBuffer;
        }
        if self.rob.len() >= self.cfg.rob_entries {
            return StallCause::RobFull;
        }
        StallCause::Exec
    }

    // ------------------------------------------------------------------
    // Completion
    // ------------------------------------------------------------------

    fn complete(&mut self, mem: &mut MemHierarchy, now: Cycle) {
        let head_seq = self.rob.front().map(|e| e.seq).unwrap_or(self.next_seq);
        for i in 0..self.rob.len() {
            let (seq, due, lq_idx, is_control) = {
                let e = &self.rob[i];
                let due = matches!(e.status, Status::Issued { done_at } if done_at <= now);
                (e.seq, due, e.lq, e.inst.is_control())
            };
            if !due {
                continue;
            }
            // Collect the load's SEFE if this entry owns an inflight load.
            if let Some(li) = lq_idx {
                if let Some(lqe) = self.lq[li] {
                    if lqe.seq == seq {
                        if let LqState::Inflight {
                            line,
                            token,
                            path,
                            issued_spec,
                            ..
                        } = lqe.state
                        {
                            let sefe = token.and_then(|t| mem.collect(t)).unwrap_or_default();
                            self.load_id_ctr += 1;
                            self.lq[li] = Some(LqEntry {
                                seq,
                                state: LqState::Done {
                                    line: Some(line),
                                    path: Some(path),
                                    sefe,
                                    load_id: Some(LoadId(self.load_id_ctr)),
                                    issued_spec,
                                    completed_at: now,
                                    exposed_until: None,
                                    visible_done: false,
                                },
                            });
                        }
                    }
                }
            }
            let e = &mut self.rob[i];
            e.status = Status::Done;
            if is_control {
                // Resolve: detect misprediction and train the predictor.
                let mispredicted =
                    e.pred_taken != e.actual_taken || e.pred_target != e.actual_target;
                match e.inst {
                    Inst::Branch { .. } => {
                        self.stats.committed_branches += 0; // counted at commit
                        if mispredicted {
                            self.stats.mispredicts += 1;
                            e.mispredict_pending = true;
                        }
                        let (pc, taken) = (e.pc, e.actual_taken);
                        self.pred.update(pc, taken, mispredicted);
                    }
                    Inst::Ret => {
                        if mispredicted {
                            self.stats.mispredicts += 1;
                            e.mispredict_pending = true;
                        }
                        let (pc, tgt) = (e.pc, e.actual_target);
                        self.pred.btb_update(pc, tgt);
                    }
                    _ => {} // jumps and calls have static targets
                }
            }
            let _ = head_seq;
        }
    }

    /// Fires [`SpeculationScheme::on_load_visible`] for completed loads
    /// that have become unsquashable (InvisiSpec's visibility point).
    fn visibility_scan(
        &mut self,
        scheme: &mut dyn SpeculationScheme,
        mem: &mut MemHierarchy,
        now: Cycle,
    ) {
        for li in 0..self.lq.len() {
            let Some(lqe) = self.lq[li] else { continue };
            let LqState::Done {
                line: Some(line),
                path,
                issued_spec,
                visible_done: false,
                ..
            } = lqe.state
            else {
                continue;
            };
            if self.has_older_unresolved_control(lqe.seq) {
                continue;
            }
            // TSO validation condition: an older load is still pending.
            let needs_validation = self
                .lq
                .iter()
                .flatten()
                .any(|e| e.seq < lqe.seq && !matches!(e.state, LqState::Done { .. }));
            let exposed = scheme.on_load_visible(
                mem,
                self.core,
                CommittedLoad {
                    line,
                    issued_spec,
                    path,
                    needs_validation,
                },
                now,
            );
            if let Some(Some(LqEntry {
                state:
                    LqState::Done {
                        exposed_until,
                        visible_done,
                        ..
                    },
                ..
            })) = self.lq.get_mut(li).map(|s| s.as_mut())
            {
                *exposed_until = exposed;
                *visible_done = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Squash machinery
    // ------------------------------------------------------------------

    fn process_squash(
        &mut self,
        scheme: &mut dyn SpeculationScheme,
        mem: &mut MemHierarchy,
        now: Cycle,
    ) {
        // First: detect newly resolved mispredicts (oldest wins).
        if let Some(pos) = self
            .rob
            .iter()
            .position(|e| e.mispredict_pending && e.status == Status::Done)
        {
            let branch_seq = self.rob[pos].seq;
            let redirect = self.rob[pos].actual_target;
            self.rob[pos].mispredict_pending = false;
            self.stats.squashes += 1;
            let before = self.stats.squashed_insts;
            let new_loads = self.squash_younger(branch_seq);
            let n = self.stats.squashed_insts - before;
            // A squash while Running opens a fresh episode; one that lands
            // while a cleanup is already pending joins (widens) it.
            let episode = match &self.squash {
                SquashPhase::WaitInflight { episode, .. } => *episode,
                SquashPhase::Running => {
                    self.episodes += 1;
                    self.episodes
                }
            };
            self.emit(
                now,
                TraceEvent::Squash {
                    seq: branch_seq,
                    squashed: n,
                },
            );
            self.obs.emit(
                now,
                SimEvent::Squash {
                    core: self.core.index(),
                    seq: branch_seq,
                    squashed: n,
                    episode,
                },
            );
            self.emit_squashed_loads(now, &new_loads, episode);
            self.fetch_pc = redirect;
            self.fetch_halted = false;
            match &mut self.squash {
                SquashPhase::WaitInflight { loads, .. } => {
                    // An older branch mispredicted while we were waiting:
                    // widen the pending squash.
                    loads.extend(new_loads);
                }
                SquashPhase::Running => {
                    self.squash = SquashPhase::WaitInflight {
                        mispredict_at: now,
                        loads: new_loads,
                        episode,
                        seq: branch_seq,
                    };
                }
            }
            // The front end is redirected in any case; the stall length is
            // decided when the scheme's cleanup completes (below).
            self.fetch_stall_until = self.fetch_stall_until.max(now + self.cfg.redirect_penalty);
        }

        // Second: if a squash is pending, run cleanup once older inflight
        // correct-path loads are done (or immediately if the scheme does
        // not wait).
        if let SquashPhase::WaitInflight { mispredict_at, .. } = self.squash {
            let must_wait = scheme.waits_for_older_inflight() && self.any_inflight_load();
            if !must_wait {
                let (loads, episode, seq) =
                    match std::mem::replace(&mut self.squash, SquashPhase::Running) {
                        SquashPhase::WaitInflight {
                            loads,
                            episode,
                            seq,
                            ..
                        } => (loads, episode, seq),
                        SquashPhase::Running => unreachable!(),
                    };
                // Register the episode with the hierarchy before the scheme
                // runs: every cleanup event the undo emits (inval, restore,
                // epoch bump, dropped fill) is stamped with this id.
                mem.begin_cleanup_episode(self.core, episode, seq);
                let resp = scheme.on_squash(
                    mem,
                    SquashInfo {
                        core: self.core,
                        mispredict_at,
                        now,
                        loads: &loads,
                    },
                );
                let resume = resp.resume_at.max(now);
                self.stats.squash_wait_cycles += now - mispredict_at;
                self.stats.squash_cleanup_cycles += resume - now;
                self.stats.cleanup_duration.record(resume - now);
                self.stats.episode_duration.record(resume - mispredict_at);
                self.stats.episode_loads.record(loads.len() as u64);
                self.obs.emit(
                    now,
                    SimEvent::CleanupStart {
                        core: self.core.index(),
                        loads: loads.len() as u64,
                        stall: resume - now,
                        episode,
                    },
                );
                self.obs.emit(
                    resume,
                    SimEvent::CleanupEnd {
                        core: self.core.index(),
                        stall: resume - now,
                        episode,
                    },
                );
                self.fetch_stall_until = self.fetch_stall_until.max(resume);
                self.cleanup_stall_until = self.cleanup_stall_until.max(resume);
                if self.halt_after_squash {
                    self.halted = true;
                }
            }
        }
    }

    /// Emits one [`SimEvent::SquashedLoad`] per squashed load with a known
    /// line (the leakage-audit sink correlates these with cleanup events).
    fn emit_squashed_loads(&mut self, now: Cycle, loads: &[SquashedLoad], episode: u64) {
        if !self.obs.is_enabled() {
            return;
        }
        for l in loads {
            if let Some(line) = l.line {
                self.obs.emit(
                    now,
                    SimEvent::SquashedLoad {
                        core: self.core.index(),
                        line: line.raw(),
                        issued: !matches!(l.state, SquashedLoadState::NotIssued),
                        episode,
                    },
                );
            }
        }
    }

    fn any_inflight_load(&self) -> bool {
        self.lq
            .iter()
            .flatten()
            .any(|e| matches!(e.state, LqState::Inflight { .. }))
    }

    /// Removes all ROB entries younger than `branch_seq`, returning squash
    /// records for their loads.
    fn squash_younger(&mut self, branch_seq: u64) -> Vec<SquashedLoad> {
        let mut loads = Vec::new();
        while let Some(back) = self.rob.back() {
            if back.seq <= branch_seq {
                break;
            }
            let e = self.rob.pop_back().expect("checked non-empty");
            self.stats.squashed_insts += 1;
            if let Some(li) = e.lq {
                if let Some(lqe) = self.lq[li] {
                    if lqe.seq == e.seq {
                        let rec =
                            self.squash_record(&lqe, matches!(e.status, Status::Issued { .. }));
                        loads.push(rec);
                        self.lq[li] = None;
                    }
                }
            }
            if let Some(si) = e.sq {
                if let Some(sqe) = self.sq[si] {
                    if sqe.seq == e.seq {
                        self.sq[si] = None;
                    }
                }
            }
        }
        // Sequence numbers are dense in the ROB (positions are computed as
        // seq offsets), so dispatch resumes right after the branch. Safe:
        // every consumer of a squashed seq was itself squashed.
        self.next_seq = branch_seq + 1;
        // Loads were collected youngest-first; the scheme expects oldest
        // first.
        loads.reverse();
        // Rebuild the rename map from the surviving entries.
        self.last_writer = [None; NUM_REGS];
        for e in &self.rob {
            if let Some(d) = e.dst {
                self.last_writer[d.index()] = Some(e.seq);
            }
        }
        loads
    }

    fn squash_record(&mut self, lqe: &LqEntry, _rob_issued: bool) -> SquashedLoad {
        match lqe.state {
            LqState::NotIssued => {
                self.stats
                    .record_squashed_load(SquashedClass::NotIssued, false);
                SquashedLoad {
                    line: None,
                    load_id: None,
                    state: SquashedLoadState::NotIssued,
                }
            }
            LqState::Deferred { line } => {
                self.stats
                    .record_squashed_load(SquashedClass::NotIssued, false);
                SquashedLoad {
                    line: Some(line),
                    load_id: None,
                    state: SquashedLoadState::NotIssued,
                }
            }
            LqState::Inflight {
                line, token, path, ..
            } => {
                self.stats.record_squashed_load(Self::classify(path), true);
                SquashedLoad {
                    line: Some(line),
                    load_id: None,
                    state: SquashedLoadState::Inflight { path, token },
                }
            }
            LqState::Done {
                line,
                path,
                sefe,
                load_id,
                ..
            } => {
                let class = path.map(Self::classify).unwrap_or(SquashedClass::L1Hit);
                self.stats.record_squashed_load(class, false);
                SquashedLoad {
                    line,
                    load_id,
                    state: SquashedLoadState::Executed {
                        path: path.unwrap_or(LoadPath::L1Hit),
                        sefe,
                    },
                }
            }
        }
    }

    fn classify(path: LoadPath) -> SquashedClass {
        match path {
            LoadPath::L1Hit => SquashedClass::L1Hit,
            LoadPath::L2Hit | LoadPath::RemoteL1 | LoadPath::DummyMiss => SquashedClass::L2Hit,
            LoadPath::Mem => SquashedClass::L2Miss,
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(
        &mut self,
        scheme: &mut dyn SpeculationScheme,
        mem: &mut MemHierarchy,
        dmem: &mut DataMem,
        now: Cycle,
    ) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else {
                return;
            };
            if head.status != Status::Done {
                return;
            }
            if let Some(at) = head.commit_ready_at {
                if now < at {
                    return;
                }
            }
            let mut entry = self.rob.front().expect("checked").clone();
            // Capture the load's line for the commit event before the LQ
            // slot is freed below.
            let committed_line = if self.obs.is_enabled() {
                entry
                    .lq
                    .and_then(|li| self.lq[li])
                    .filter(|l| l.seq == entry.seq)
                    .and_then(|l| match l.state {
                        LqState::Done { line, .. } => line,
                        LqState::Inflight { line, .. } | LqState::Deferred { line } => Some(line),
                        LqState::NotIssued => None,
                    })
            } else {
                None
            };
            // Deferred exception: a faulting load never retires — it (and
            // everything younger) is squashed, and the active scheme
            // cleans up its transient cache changes exactly as for a
            // branch mis-speculation.
            if entry.faulting {
                if entry.commit_ready_at.is_none() {
                    // The permission check runs now; the exception lands
                    // `fault_check_latency` later — dependents execute
                    // transiently in that window (the Meltdown race).
                    self.rob.front_mut().expect("head").commit_ready_at =
                        Some(now + self.cfg.fault_check_latency);
                    return;
                }
                self.raise_fault(now);
                return;
            }
            // Scheme hook + memory side effects.
            match entry.inst {
                Inst::Load { .. } => {
                    let lqe = entry
                        .lq
                        .and_then(|li| self.lq[li])
                        .filter(|l| l.seq == entry.seq);
                    if !entry.committed_scheme_done {
                        let (line, path, issued_spec, completed_at, exposed_until) =
                            match lqe.map(|l| l.state) {
                                Some(LqState::Done {
                                    line,
                                    path,
                                    issued_spec,
                                    completed_at,
                                    exposed_until,
                                    ..
                                }) => (line, path, issued_spec, completed_at, exposed_until),
                                _ => (None, None, false, now, None),
                            };
                        // Retirement may not pass a pending visibility-point
                        // update load (InvisiSpec revised).
                        if let Some(at) = exposed_until {
                            if now < at {
                                self.rob.front_mut().expect("head").commit_ready_at = Some(at);
                                self.stats.commit_stall_cycles += at - now;
                                return;
                            }
                        }
                        if let Some(line) = line {
                            let action = scheme.commit_load(
                                mem,
                                self.core,
                                CommittedLoad {
                                    line,
                                    issued_spec,
                                    path,
                                    needs_validation: false,
                                },
                                now,
                            );
                            // Window-extension messages for long-speculative
                            // loads (Section 3.6).
                            if scheme.uses_window_protection() && path.is_some() {
                                let age = now.saturating_sub(completed_at);
                                let msgs = age / self.cfg.window_extend_interval;
                                if msgs > 0 {
                                    self.stats.window_extend_msgs += msgs;
                                    mem.note_traffic(MsgClass::WindowExtend, msgs);
                                }
                            }
                            match action {
                                CommitAction::Proceed => {}
                                CommitAction::StallUntil(c) => {
                                    self.rob.front_mut().expect("head").commit_ready_at = Some(c);
                                    self.rob.front_mut().expect("head").committed_scheme_done =
                                        true;
                                    if now < c {
                                        self.stats.commit_stall_cycles += c - now;
                                        return;
                                    }
                                }
                                CommitAction::HoldLqUntil(c) => {
                                    if let Some(li) = entry.lq {
                                        self.lq[li] = None;
                                        self.lq_held.push(c);
                                        entry.lq = None;
                                        self.rob.front_mut().expect("head").lq = None;
                                    }
                                }
                            }
                        }
                    }
                    self.stats.committed_loads += 1;
                }
                Inst::Store { .. } => {
                    if let Some(si) = entry.sq {
                        if let Some(sqe) = self.sq[si].filter(|s| s.seq == entry.seq) {
                            let addr = sqe.addr.expect("store issued before commit");
                            dmem.write(addr, sqe.value.expect("store value ready"));
                            mem.store(self.core, addr.line(), now);
                        }
                    }
                    self.stats.committed_stores += 1;
                }
                Inst::Clflush { .. } => {
                    // Delayed until the correct path (Section 3.5, Table 2):
                    // commit is the correct path.
                    if let Some(v) = entry.result {
                        mem.clflush(self.core, Addr::new(v).line(), now);
                    }
                }
                Inst::Branch { .. } => {
                    self.stats.committed_branches += 1;
                }
                Inst::Halt => {
                    self.halted = true;
                }
                _ => {}
            }
            // Architectural register update.
            if let (Some(d), Some(v)) = (entry.dst, entry.result) {
                self.regs[d.index()] = v;
            }
            if let Some(d) = entry.dst {
                if self.last_writer[d.index()] == Some(entry.seq) {
                    self.last_writer[d.index()] = None;
                }
            }
            // Free queues.
            if let Some(li) = entry.lq {
                if self.lq[li].is_some_and(|l| l.seq == entry.seq) {
                    self.lq[li] = None;
                }
            }
            if let Some(si) = entry.sq {
                if self.sq[si].is_some_and(|s| s.seq == entry.seq) {
                    self.sq[si] = None;
                }
            }
            self.emit(
                now,
                TraceEvent::Commit {
                    seq: entry.seq,
                    pc: entry.pc,
                },
            );
            self.obs.emit_with(now, || SimEvent::Commit {
                core: self.core.index(),
                seq: entry.seq,
                pc: entry.pc as u64,
                line: committed_line.map(|l| l.raw()),
            });
            self.rob.pop_front();
            self.stats.committed_insts += 1;
            if self.halted {
                return;
            }
        }
    }

    /// Raises the deferred fault of the ROB head: squashes the head and
    /// everything younger, redirects fetch to the fault handler (or halts
    /// the program), and hands the squashed loads to the scheme's squash
    /// path for cleanup on the next `process_squash`.
    fn raise_fault(&mut self, now: Cycle) {
        let head = self.rob.front().expect("fault needs a head");
        let (head_seq, head_pc) = (head.seq, head.pc);
        self.stats.faults += 1;
        self.stats.squashes += 1;
        self.emit(now, TraceEvent::Fault { seq: head_seq });
        self.obs.emit(
            now,
            SimEvent::Fault {
                core: self.core.index(),
                seq: head_seq,
                pc: head_pc as u64,
            },
        );
        let loads = self.squash_younger(head_seq - 1);
        // A fault while Running opens an episode exactly like a mispredict.
        let episode = match &self.squash {
            SquashPhase::WaitInflight { episode, .. } => *episode,
            SquashPhase::Running => {
                self.episodes += 1;
                self.episodes
            }
        };
        self.emit_squashed_loads(now, &loads, episode);
        match self.program.fault_handler {
            Some(h) => {
                self.fetch_pc = h;
                self.fetch_halted = false;
            }
            None => {
                // Fatal: stop fetching now, halt once the scheme's cleanup
                // of the transient state has completed.
                self.fetch_halted = true;
                self.halt_after_squash = true;
            }
        }
        match &mut self.squash {
            SquashPhase::WaitInflight { loads: l, .. } => l.extend(loads),
            SquashPhase::Running => {
                self.squash = SquashPhase::WaitInflight {
                    mispredict_at: now,
                    loads,
                    episode,
                    seq: head_seq,
                };
            }
        }
        self.fetch_stall_until = self.fetch_stall_until.max(now + self.cfg.redirect_penalty);
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn src_value(&self, src: Src) -> Option<u64> {
        match src {
            Src::Ready(v) => Some(v),
            Src::Wait(seq) => {
                let head = self.rob.front()?.seq;
                if seq < head {
                    // The producer committed; but the consumer captured the
                    // dependency at dispatch, so the architectural file now
                    // holds its value only if no later committed writer
                    // clobbered it — which cannot happen before this entry
                    // commits. Read the producer's register via last_writer
                    // is not possible here; this path is unreachable
                    // because commit clears dependencies through regs.
                    None
                } else {
                    let idx = (seq - head) as usize;
                    let e = self.rob.get(idx)?;
                    debug_assert_eq!(e.seq, seq);
                    if e.status == Status::Done {
                        e.result
                    } else {
                        None
                    }
                }
            }
        }
    }

    /// Resolves a dependency that may have committed: committed producers'
    /// values live in the architectural register file.
    fn src_value_for(&self, src: Src, reg_fallback: Reg) -> Option<u64> {
        match src {
            Src::Ready(v) => Some(v),
            Src::Wait(seq) => {
                let head = self.rob.front().map(|e| e.seq).unwrap_or(self.next_seq);
                if seq < head {
                    Some(self.regs[reg_fallback.index()])
                } else {
                    self.src_value(src)
                }
            }
        }
    }

    /// Whether anything older than `seq` can still squash it: an
    /// unresolved control instruction, or a load that has not yet passed
    /// its (deferred) permission check — the "all transient instructions
    /// are unsafe until they cannot be squashed" threat model of the
    /// paper, which covers both Spectre- and Meltdown-class events.
    fn has_older_unresolved_control(&self, seq: u64) -> bool {
        self.rob.iter().take_while(|e| e.seq < seq).any(|e| {
            (e.inst.is_control() && e.status != Status::Done)
                || (e.inst.is_load() && (e.status == Status::Waiting || e.faulting))
        })
    }

    /// Memory operations may not issue past an incomplete older fence.
    fn has_older_pending_fence(&self, seq: u64) -> bool {
        self.rob
            .iter()
            .take_while(|e| e.seq < seq)
            .any(|e| matches!(e.inst, Inst::Fence) && e.status != Status::Done)
    }

    fn sq_forward(&self, seq: u64, addr: Addr) -> Option<u64> {
        let word = addr.raw() >> 3;
        self.sq
            .iter()
            .flatten()
            .filter(|s| s.seq < seq)
            .filter(|s| s.addr.is_some_and(|a| a.raw() >> 3 == word))
            .max_by_key(|s| s.seq)
            .and_then(|s| s.value)
    }

    /// Conservative memory disambiguation: a load may not issue past an
    /// older store whose address is still unknown (no store-set
    /// speculation — a memory-order mis-speculation would need its own
    /// squash-and-undo path).
    fn has_older_unknown_store(&self, seq: u64) -> bool {
        self.sq
            .iter()
            .flatten()
            .any(|s| s.seq < seq && s.addr.is_none())
    }

    fn issue(
        &mut self,
        scheme: &mut dyn SpeculationScheme,
        mem: &mut MemHierarchy,
        dmem: &mut DataMem,
        now: Cycle,
    ) {
        let mut budget = self.cfg.issue_width;
        let len = self.rob.len();
        for i in 0..len {
            if budget == 0 {
                break;
            }
            let e = &self.rob[i];
            if e.status != Status::Waiting {
                continue;
            }
            let seq = e.seq;
            let inst = e.inst;
            match inst {
                Inst::Nop | Inst::Halt => {
                    self.rob[i].status = Status::Issued { done_at: now + 1 };
                    budget -= 1;
                }
                Inst::Fence => {
                    // Issue only as the oldest instruction.
                    if i == 0 {
                        self.rob[i].status = Status::Issued { done_at: now + 1 };
                        budget -= 1;
                    }
                }
                Inst::Alu { op, latency, .. } => {
                    let (Some(a), Some(b)) = (self.operand(i, 0), self.operand(i, 1)) else {
                        continue;
                    };
                    let e = &mut self.rob[i];
                    e.result = Some(op.apply(a, b));
                    e.status = Status::Issued {
                        done_at: now + latency as Cycle,
                    };
                    budget -= 1;
                }
                Inst::Load { offset, .. } => {
                    if self.has_older_pending_fence(seq) || self.has_older_unknown_store(seq) {
                        continue;
                    }
                    let Some(base) = self.operand(i, 0) else {
                        continue;
                    };
                    let addr = Addr::new(base.wrapping_add(offset as u64));
                    let unsquashable = !self.has_older_unresolved_control(seq);
                    if scheme.issue_policy() == LoadIssuePolicy::WhenUnsquashable && !unsquashable {
                        continue;
                    }
                    // Deferred (GetS-Safe) loads retry only when safe.
                    let deferred_now = self.rob[i]
                        .lq
                        .and_then(|li| self.lq[li])
                        .is_some_and(|l| matches!(l.state, LqState::Deferred { .. }));
                    if deferred_now && !unsquashable {
                        continue;
                    }
                    // Store-to-load forwarding: serviced from the SQ with no
                    // cache access (and therefore no side effects).
                    if let Some(v) = self.sq_forward(seq, addr) {
                        let li = self.rob[i].lq.expect("loads own an LQ slot");
                        self.lq[li] = Some(LqEntry {
                            seq,
                            state: LqState::Done {
                                line: None,
                                path: None,
                                sefe: SefeRecord::default(),
                                load_id: None,
                                issued_spec: false,
                                completed_at: now,
                                exposed_until: None,
                                visible_done: true,
                            },
                        });
                        let e = &mut self.rob[i];
                        e.result = Some(v);
                        e.status = Status::Issued { done_at: now + 1 };
                        self.stats.forwarded_loads += 1;
                        budget -= 1;
                        continue;
                    }
                    let is_spec = !unsquashable;
                    // Meltdown-style race: the permission check is deferred
                    // to commit; the access itself proceeds and its data
                    // flows to dependents transiently.
                    if self.program.is_protected(addr) {
                        self.rob[i].faulting = true;
                    }
                    match scheme.issue_load(
                        mem,
                        LoadIssue {
                            core: self.core,
                            line: addr.line(),
                            now,
                            is_spec,
                        },
                    ) {
                        Ok(out) if out.deferred => {
                            let li = self.rob[i].lq.expect("loads own an LQ slot");
                            if !deferred_now {
                                self.stats.deferred_loads += 1;
                            }
                            self.lq[li] = Some(LqEntry {
                                seq,
                                state: LqState::Deferred { line: addr.line() },
                            });
                            budget -= 1;
                        }
                        Ok(out) => {
                            self.emit(
                                now,
                                TraceEvent::LoadIssue {
                                    seq,
                                    line: addr.line(),
                                    path: out.path,
                                    spec: is_spec,
                                },
                            );
                            self.obs.emit_with(now, || SimEvent::LoadIssue {
                                core: self.core.index(),
                                seq,
                                line: addr.line().raw(),
                                path: PathKind::from(out.path),
                                spec: is_spec,
                                latency: out.complete_at - now,
                            });
                            let li = self.rob[i].lq.expect("loads own an LQ slot");
                            self.lq[li] = Some(LqEntry {
                                seq,
                                state: LqState::Inflight {
                                    line: addr.line(),
                                    token: out.token,
                                    path: out.path,
                                    issued_spec: is_spec,
                                    prov: out.provenance,
                                },
                            });
                            if is_spec {
                                self.stats.spec_issued_loads += 1;
                            }
                            let e = &mut self.rob[i];
                            e.result = Some(dmem.read(addr));
                            e.status = Status::Issued {
                                done_at: out.complete_at,
                            };
                            budget -= 1;
                        }
                        Err(_) => {
                            // MSHRs full: retry next cycle.
                            self.mshr_blocked = true;
                            budget -= 1;
                        }
                    }
                }
                Inst::Store { offset, .. } => {
                    if self.has_older_pending_fence(seq) {
                        continue;
                    }
                    let (Some(base), Some(val)) = (self.operand(i, 0), self.operand(i, 1)) else {
                        continue;
                    };
                    let addr = Addr::new(base.wrapping_add(offset as u64));
                    let si = self.rob[i].sq.expect("stores own an SQ slot");
                    self.sq[si] = Some(SqEntry {
                        seq,
                        addr: Some(addr),
                        value: Some(val),
                    });
                    self.rob[i].status = Status::Issued { done_at: now + 1 };
                    budget -= 1;
                }
                Inst::Branch { cond, target, .. } => {
                    let Some(v) = self.operand(i, 0) else {
                        continue;
                    };
                    let taken = cond.taken(v);
                    let e = &mut self.rob[i];
                    e.actual_taken = taken;
                    e.actual_target = if taken { target } else { e.pc + 1 };
                    e.status = Status::Issued {
                        done_at: now + self.cfg.branch_latency,
                    };
                    budget -= 1;
                }
                Inst::Jump { target } => {
                    let e = &mut self.rob[i];
                    e.actual_taken = true;
                    e.actual_target = target;
                    e.status = Status::Issued { done_at: now + 1 };
                    budget -= 1;
                }
                Inst::Call { target } => {
                    let e = &mut self.rob[i];
                    e.result = Some((e.pc + 1) as u64);
                    e.actual_taken = true;
                    e.actual_target = target;
                    e.status = Status::Issued { done_at: now + 1 };
                    budget -= 1;
                }
                Inst::Ret => {
                    let Some(link) = self.operand(i, 0) else {
                        continue;
                    };
                    let e = &mut self.rob[i];
                    e.actual_taken = true;
                    e.actual_target = link as Pc;
                    e.status = Status::Issued {
                        done_at: now + self.cfg.branch_latency,
                    };
                    budget -= 1;
                }
                Inst::Clflush { offset, .. } => {
                    let Some(base) = self.operand(i, 0) else {
                        continue;
                    };
                    let e = &mut self.rob[i];
                    // Address computed now; the flush itself happens at
                    // commit (delayed to the correct path, Section 3.5).
                    e.result = Some(base.wrapping_add(offset as u64));
                    e.status = Status::Issued { done_at: now + 1 };
                    budget -= 1;
                }
            }
        }
    }

    /// Resolves source operand `k` of ROB entry `i`.
    fn operand(&self, i: usize, k: usize) -> Option<u64> {
        let e = &self.rob[i];
        let src = e.srcs[k]?;
        let fallback = Self::src_reg(e.inst, k);
        match fallback {
            Some(r) => self.src_value_for(src, r),
            None => self.src_value(src),
        }
    }

    fn src_reg(inst: Inst, k: usize) -> Option<Reg> {
        use crate::isa::Operand as Op;
        match (inst, k) {
            (
                Inst::Alu {
                    src1: Op::Reg(r), ..
                },
                0,
            ) => Some(r),
            (
                Inst::Alu {
                    src2: Op::Reg(r), ..
                },
                1,
            ) => Some(r),
            (Inst::Load { base, .. }, 0) => Some(base),
            (Inst::Store { base, .. }, 0) => Some(base),
            (Inst::Store { src, .. }, 1) => Some(src),
            (Inst::Branch { src, .. }, 0) => Some(src),
            (Inst::Ret, 0) => Some(LINK_REG),
            (Inst::Clflush { base, .. }, 0) => Some(base),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Fetch / dispatch
    // ------------------------------------------------------------------

    fn fetch(&mut self, now: Cycle) {
        if now < self.fetch_stall_until {
            self.stats.fetch_stall_cycles += 1;
            return;
        }
        if self.fetch_halted || self.halted {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            let pc = self.fetch_pc;
            let inst = self.program.fetch(pc);
            // Queue slots.
            let lq = if inst.is_load() {
                match self.free_slot(&self.lq) {
                    Some(s) => Some(s),
                    None => break,
                }
            } else {
                None
            };
            let sq = if matches!(inst, Inst::Store { .. }) {
                match self.free_slot_sq() {
                    Some(s) => Some(s),
                    None => break,
                }
            } else {
                None
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            // Dependency capture.
            let srcs = self.capture_srcs(inst);
            // Control-flow prediction and next fetch PC.
            let (pred_taken, pred_target, next_pc, halt_fetch) = match inst {
                Inst::Branch { target, .. } => {
                    let t = self.pred.predict(pc);
                    let tgt = if t { target } else { pc + 1 };
                    (t, tgt, tgt, false)
                }
                Inst::Jump { target } => (true, target, target, false),
                Inst::Call { target } => {
                    self.pred.ras_push(pc + 1);
                    (true, target, target, false)
                }
                Inst::Ret => {
                    let tgt = self
                        .pred
                        .ras_pop()
                        .or_else(|| self.pred.btb_lookup(pc))
                        .unwrap_or(pc + 1);
                    (true, tgt, tgt, false)
                }
                Inst::Halt => (false, pc + 1, pc + 1, true),
                _ => (false, pc + 1, pc + 1, false),
            };
            let dst = match inst {
                Inst::Alu { dst, .. } | Inst::Load { dst, .. } => Some(dst),
                Inst::Call { .. } => Some(LINK_REG),
                _ => None,
            };
            if let Some(li) = lq {
                self.lq[li] = Some(LqEntry {
                    seq,
                    state: LqState::NotIssued,
                });
            }
            if let Some(si) = sq {
                self.sq[si] = Some(SqEntry {
                    seq,
                    addr: None,
                    value: None,
                });
            }
            self.emit(now, TraceEvent::Dispatch { seq, pc });
            self.obs.emit_with(now, || SimEvent::Dispatch {
                core: self.core.index(),
                seq,
                pc: pc as u64,
            });
            self.rob.push_back(RobEntry {
                seq,
                pc,
                inst,
                status: Status::Waiting,
                srcs,
                result: None,
                dst,
                pred_taken,
                pred_target,
                actual_taken: false,
                actual_target: 0,
                mispredict_pending: false,
                lq,
                sq,
                commit_ready_at: None,
                committed_scheme_done: false,
                faulting: false,
            });
            if let Some(d) = dst {
                self.last_writer[d.index()] = Some(seq);
            }
            self.fetch_pc = next_pc;
            if halt_fetch {
                self.fetch_halted = true;
                break;
            }
        }
    }

    fn capture_srcs(&self, inst: Inst) -> [Option<Src>; 2] {
        use crate::isa::Operand as Op;
        let cap_reg = |r: Reg| match self.last_writer[r.index()] {
            Some(seq) => Src::Wait(seq),
            None => Src::Ready(self.regs[r.index()]),
        };
        let cap_op = |o: Op| match o {
            Op::Reg(r) => cap_reg(r),
            Op::Imm(v) => Src::Ready(v as u64),
        };
        match inst {
            Inst::Alu { src1, src2, .. } => [Some(cap_op(src1)), Some(cap_op(src2))],
            Inst::Load { base, .. } => [Some(cap_reg(base)), None],
            Inst::Store { base, src, .. } => [Some(cap_reg(base)), Some(cap_reg(src))],
            Inst::Branch { src, .. } => [Some(cap_reg(src)), None],
            Inst::Ret => [Some(cap_reg(LINK_REG)), None],
            Inst::Clflush { base, .. } => [Some(cap_reg(base)), None],
            _ => [None, None],
        }
    }

    fn free_slot(&self, file: &[Option<LqEntry>]) -> Option<usize> {
        // LQ slots can also be held by InvisiSpec update loads.
        let live = file.iter().filter(|s| s.is_some()).count() + self.lq_held.len();
        if live >= self.cfg.lq_entries {
            return None;
        }
        file.iter().position(|s| s.is_none())
    }

    fn free_slot_sq(&self) -> Option<usize> {
        self.sq.iter().position(|s| s.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, BranchCond, Operand, ProgramBuilder};
    use cleanupspec_mem::error::SimError;
    use cleanupspec_mem::hierarchy::{LoadReq, MemConfig};

    /// Minimal pass-through scheme used to unit-test the pipeline alone.
    #[derive(Clone, Debug)]
    struct Plain;

    impl SpeculationScheme for Plain {
        fn name(&self) -> &'static str {
            "plain"
        }
        fn boxed_clone(&self) -> Box<dyn SpeculationScheme> {
            Box::new(self.clone())
        }
        fn issue_load(
            &mut self,
            mem: &mut MemHierarchy,
            req: LoadIssue,
        ) -> Result<cleanupspec_mem::hierarchy::LoadOutcome, SimError> {
            mem.load(req.core, req.line, req.now, LoadReq::non_spec(LoadId(0)))
        }
        fn commit_load(
            &mut self,
            _mem: &mut MemHierarchy,
            _core: CoreId,
            _load: CommittedLoad,
            _now: Cycle,
        ) -> CommitAction {
            CommitAction::Proceed
        }
        fn on_squash(
            &mut self,
            mem: &mut MemHierarchy,
            info: SquashInfo<'_>,
        ) -> crate::scheme::SquashResponse {
            // Orphan inflight squashed loads like a non-secure core.
            for l in info.loads {
                if let SquashedLoadState::Inflight { token: Some(t), .. } = l.state {
                    let _ = t;
                }
            }
            let _ = mem;
            crate::scheme::SquashResponse {
                resume_at: info.now,
            }
        }
    }

    fn run_program(p: crate::isa::Program, max_cycles: Cycle) -> (Pipeline, MemHierarchy) {
        let mut mem = MemHierarchy::new(MemConfig::default());
        let mut dmem = DataMem::new();
        for (a, v) in &p.init_mem {
            dmem.write(*a, *v);
        }
        let mut pipe = Pipeline::new(CoreId(0), CoreConfig::default(), Arc::new(p));
        let mut scheme = Plain;
        let mut now = 0;
        while !pipe.halted() && now < max_cycles {
            now += 1;
            mem.advance(now);
            pipe.tick(&mut scheme, &mut mem, &mut dmem, now);
        }
        // Drain outstanding fills (e.g. orphaned wrong-path misses).
        mem.advance(now + 1_000);
        pipe.stats_mut().cycles = now;
        (pipe, mem)
    }

    #[test]
    fn straight_line_alu_computes() {
        let mut b = ProgramBuilder::new("alu");
        b.movi(Reg(1), 10);
        b.movi(Reg(2), 32);
        b.alu(
            Reg(3),
            AluOp::Add,
            Operand::Reg(Reg(1)),
            Operand::Reg(Reg(2)),
        );
        b.halt();
        let (pipe, _) = run_program(b.build(), 1000);
        assert!(pipe.halted());
        assert_eq!(pipe.reg(Reg(3)), 42);
        assert_eq!(pipe.stats().committed_insts, 4);
    }

    #[test]
    fn load_reads_initialized_memory() {
        let mut b = ProgramBuilder::new("ld");
        b.movi(Reg(1), 0x1000);
        b.load(Reg(2), Reg(1), 8);
        b.halt();
        b.init_mem(Addr::new(0x1008), 777);
        let (pipe, mem) = run_program(b.build(), 1000);
        assert_eq!(pipe.reg(Reg(2)), 777);
        assert_eq!(mem.stats().total_loads(), 1);
    }

    #[test]
    fn store_then_load_forwards_and_commits() {
        let mut b = ProgramBuilder::new("st-ld");
        b.movi(Reg(1), 0x2000);
        b.movi(Reg(2), 99);
        b.store(Reg(2), Reg(1), 0);
        b.load(Reg(3), Reg(1), 0);
        b.halt();
        let (pipe, _) = run_program(b.build(), 1000);
        assert_eq!(pipe.reg(Reg(3)), 99);
        assert!(pipe.stats().forwarded_loads >= 1, "SQ forwarding used");
        assert_eq!(pipe.stats().committed_stores, 1);
    }

    #[test]
    fn taken_loop_executes_n_times() {
        // r1 = 5; loop: r1 -= 1; branch r1 != 0 -> loop; halt
        let mut b = ProgramBuilder::new("loop");
        b.movi(Reg(1), 5);
        let loop_top = b.here();
        b.alu(Reg(1), AluOp::Sub, Operand::Reg(Reg(1)), Operand::Imm(1));
        b.branch(Reg(1), BranchCond::NotZero, loop_top);
        b.halt();
        let (pipe, _) = run_program(b.build(), 5000);
        assert!(pipe.halted());
        assert_eq!(pipe.reg(Reg(1)), 0);
        assert_eq!(pipe.stats().committed_branches, 5);
        // The final not-taken iteration is typically mispredicted.
        assert!(pipe.stats().mispredicts >= 1);
        assert!(pipe.stats().squashes >= 1);
    }

    #[test]
    fn wrong_path_load_pollutes_cache_with_plain_scheme() {
        // Branch is actually TAKEN (skipping the load) but the predictor
        // starts not-taken, so the load runs transiently on the wrong path
        // and — with a non-secure scheme — stays in the cache.
        let secret_addr = 0x8000u64;
        let mut b = ProgramBuilder::new("wrongpath");
        b.movi(Reg(1), 1); // condition: non-zero -> taken
        b.movi(Reg(2), secret_addr);
        // Give the branch a data dependency so it resolves late enough for
        // the wrong path to issue the load.
        b.alu(Reg(3), AluOp::Mul, Operand::Reg(Reg(1)), Operand::Imm(1));
        b.alu(Reg(3), AluOp::Mul, Operand::Reg(Reg(3)), Operand::Imm(1));
        b.alu(Reg(3), AluOp::Mul, Operand::Reg(Reg(3)), Operand::Imm(1));
        let br = b.branch(Reg(3), BranchCond::NotZero, 0);
        b.load(Reg(4), Reg(2), 0); // wrong path
        let target = b.here();
        b.patch_branch(br, target);
        b.halt();
        let (pipe, mem) = run_program(b.build(), 2000);
        assert!(pipe.halted());
        assert!(pipe.stats().squashes >= 1, "branch mispredicted once");
        assert!(pipe.stats().squashed_insts >= 1);
        // The wrong-path line was fetched into the hierarchy (the Plain
        // scheme retains or at least initiated it).
        let line = Addr::new(secret_addr).line();
        let polluted = mem.l1(CoreId(0)).probe(line).is_some() || mem.l2().probe(line).is_some();
        assert!(polluted, "wrong-path install should be visible (insecure)");
        // And r4 must NOT be architecturally written.
        assert_eq!(pipe.reg(Reg(4)), 0);
    }

    #[test]
    fn call_ret_roundtrip() {
        let mut b = ProgramBuilder::new("callret");
        let call_at = b.call(0);
        b.movi(Reg(2), 7); // executed after return
        b.halt();
        let fun = b.here();
        b.movi(Reg(1), 5);
        b.ret();
        b.patch_branch(call_at, fun);
        let (pipe, _) = run_program(b.build(), 1000);
        assert!(pipe.halted());
        assert_eq!(pipe.reg(Reg(1)), 5);
        assert_eq!(pipe.reg(Reg(2)), 7);
    }

    #[test]
    fn fence_waits_for_oldest() {
        let mut b = ProgramBuilder::new("fence");
        b.movi(Reg(1), 0x3000);
        b.load(Reg(2), Reg(1), 0);
        b.fence();
        b.movi(Reg(3), 1);
        b.halt();
        let (pipe, _) = run_program(b.build(), 2000);
        assert!(pipe.halted());
        assert_eq!(pipe.reg(Reg(3)), 1);
    }

    #[test]
    fn squashed_loads_are_classified() {
        // Misprediction with a wrong-path load that misses: Table 5 classes
        // must be populated.
        let mut b = ProgramBuilder::new("classify");
        b.movi(Reg(1), 1);
        b.movi(Reg(2), 0x9000);
        b.alu(Reg(3), AluOp::Mul, Operand::Reg(Reg(1)), Operand::Imm(1));
        b.alu(Reg(3), AluOp::Mul, Operand::Reg(Reg(3)), Operand::Imm(1));
        let br = b.branch(Reg(3), BranchCond::NotZero, 0);
        b.load(Reg(4), Reg(2), 0);
        b.load(Reg(5), Reg(2), 4096);
        let t = b.here();
        b.patch_branch(br, t);
        b.halt();
        let (pipe, _) = run_program(b.build(), 2000);
        let s = pipe.stats();
        assert!(s.squashed_loads() >= 1, "wrong-path loads recorded");
    }
}
