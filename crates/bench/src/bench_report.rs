//! `BENCH_*.json` schema: the machine-readable regression artifact that
//! `cs-bench` emits and compares.
//!
//! The document is schema-versioned (`"schema": "cs-bench-v1"`) so CI can
//! reject files written by an incompatible harness instead of silently
//! comparing apples to oranges. Per workload×mode it records the
//! simulated outcome (cycles, IPC, slowdown vs the baseline mode, the
//! full CPI stack) and the host-side cost of producing it (wall seconds,
//! simulated kilo-instructions per wall second). A top-level `host`
//! section carries the run's [`MetricsRegistry`].

use crate::attribution::{diff_stacks, top_overheads, StackDelta};
use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::SimReport;
use cleanupspec_obs::{JsonValue, JsonWriter, MetricsRegistry};

/// Schema tag written to and required from every BENCH file.
pub const SCHEMA: &str = "cs-bench-v1";

/// One workload's result under one mode.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Workload name (Table-3 naming).
    pub name: String,
    /// The simulated report.
    pub report: SimReport,
    /// Slowdown vs the same workload under the baseline mode.
    pub slowdown: f64,
    /// Host wall-clock seconds spent simulating this entry.
    pub wall_secs: f64,
}

impl BenchEntry {
    /// Simulated kilo-instructions per host wall second (0 when the wall
    /// clock was too coarse to register).
    pub fn host_kips(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.report.total_insts() as f64 / 1000.0 / self.wall_secs
        }
    }
}

/// All workloads under one mode, plus the attribution diff vs baseline.
#[derive(Clone, Debug)]
pub struct ModeSection {
    /// The security mode.
    pub mode: SecurityMode,
    /// Per-workload entries, in run order.
    pub entries: Vec<BenchEntry>,
    /// Top overhead causes vs the baseline mode (suite-wide CPI-stack
    /// diff); empty for the baseline itself.
    pub attribution: Vec<StackDelta>,
}

/// The full benchmark document.
#[derive(Debug)]
pub struct BenchReport {
    /// Instructions simulated per workload.
    pub insts: u64,
    /// Base seed.
    pub seed: u64,
    /// Name of the baseline mode slowdowns are relative to.
    pub baseline_mode: SecurityMode,
    /// One section per mode, baseline first.
    pub modes: Vec<ModeSection>,
    /// Host-side self-profiling for the whole run.
    pub host: MetricsRegistry,
}

/// Geometric mean of per-workload slowdowns (0.0 for an empty set or any
/// non-positive factor, which would make the mean meaningless).
pub fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        if x <= 0.0 {
            return 0.0;
        }
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

impl ModeSection {
    /// Builds a section from reports paired with their baseline
    /// counterparts (same workload order) and wall-clock timings.
    pub fn build(
        mode: SecurityMode,
        runs: Vec<(String, SimReport, f64)>,
        baseline: &[SimReport],
    ) -> ModeSection {
        let entries: Vec<BenchEntry> = runs
            .into_iter()
            .zip(baseline.iter())
            .map(|((name, report, wall_secs), base)| BenchEntry {
                name,
                slowdown: report.slowdown_vs(base),
                report,
                wall_secs,
            })
            .collect();
        // Suite-wide attribution: diff the aggregate stacks so one noisy
        // workload cannot dominate the "where does the time go" answer.
        // For the baseline mode itself every delta is zero, so
        // top_overheads returns the correct empty set.
        let attribution = if entries.is_empty() {
            Vec::new()
        } else {
            let agg_base = aggregate(baseline.iter());
            let agg_secure = aggregate(entries.iter().map(|e| &e.report));
            top_overheads(&diff_stacks(&agg_base, &agg_secure), 3)
        };
        ModeSection {
            mode,
            entries,
            attribution,
        }
    }

    /// Geometric-mean slowdown across the suite.
    pub fn geomean_slowdown(&self) -> f64 {
        geomean(self.entries.iter().map(|e| e.slowdown))
    }
}

/// Merges a set of reports into one synthetic report whose CPI stack and
/// instruction count are the suite totals (only those fields are
/// meaningful on the result).
fn aggregate<'a>(mut reports: impl Iterator<Item = &'a SimReport>) -> SimReport {
    let mut out = reports.next().expect("non-empty report set").clone();
    for r in reports {
        out.cycles += r.cycles;
        for (i, c) in r.cores.iter().enumerate() {
            out.cores[i].committed_insts += c.committed_insts;
            out.cores[i].cpi_stack.merge(&c.cpi_stack);
        }
    }
    out
}

impl BenchReport {
    /// Renders the document as JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object(None)
            .string("schema", SCHEMA)
            .int("insts", self.insts)
            .int("seed", self.seed)
            .string("baseline_mode", self.baseline_mode.name());
        w.open_object(Some("host"));
        self.host.write_json(&mut w);
        w.close_object();
        w.open_array("modes");
        for m in &self.modes {
            w.open_object(None)
                .string("mode", m.mode.name())
                .float("geomean_slowdown", m.geomean_slowdown());
            w.open_array("workloads");
            for e in &m.entries {
                let stack = e.report.cpi_stack();
                w.open_object(None)
                    .string("name", &e.name)
                    .int("cycles", e.report.cycles)
                    .int("cores", e.report.cores.len() as u64)
                    .int("insts", e.report.total_insts())
                    .float("ipc", e.report.ipc())
                    .float("slowdown", e.slowdown)
                    .float("wall_secs", e.wall_secs)
                    .float("host_kips", e.host_kips());
                w.open_object(Some("cpi_stack"));
                for (cause, cycles) in stack.iter() {
                    w.int(cause.name(), cycles);
                }
                w.int("total", stack.total()).close_object();
                w.close_object();
            }
            w.close_array();
            w.open_array("attribution");
            for d in &m.attribution {
                w.open_object(None)
                    .string("cause", d.cause.name())
                    .int("secure_cycles", d.secure_cycles)
                    .float("base_cpki", d.base_cpki)
                    .float("secure_cpki", d.secure_cpki)
                    .float("delta_cpki", d.delta_cpki)
                    .close_object();
            }
            w.close_array().close_object();
        }
        w.close_array().close_object();
        w.finish()
    }
}

/// Validates a parsed BENCH document: schema tag, required fields, and
/// the cycle-accounting invariant (every workload's CPI stack must sum to
/// `cycles * cores`). Returns a description of the first violation.
pub fn check_document(doc: &JsonValue) -> Result<(), String> {
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("schema mismatch: {other:?}, want {SCHEMA:?}")),
        None => return Err("missing \"schema\" tag".to_string()),
    }
    let modes = doc
        .get("modes")
        .and_then(JsonValue::as_arr)
        .ok_or("missing \"modes\" array")?;
    if modes.is_empty() {
        return Err("empty \"modes\" array".to_string());
    }
    for m in modes {
        let mode = m
            .get("mode")
            .and_then(JsonValue::as_str)
            .ok_or("mode section missing \"mode\"")?;
        let wls = m
            .get("workloads")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("{mode}: missing \"workloads\""))?;
        for wl in wls {
            let name = wl
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{mode}: workload missing \"name\""))?;
            let cycles = wl
                .get("cycles")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{mode}/{name}: missing \"cycles\""))?;
            let cores = wl
                .get("cores")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{mode}/{name}: missing \"cores\""))?;
            for key in ["ipc", "slowdown", "wall_secs", "host_kips"] {
                wl.get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("{mode}/{name}: missing \"{key}\""))?;
            }
            let stack = wl
                .get("cpi_stack")
                .and_then(JsonValue::as_obj)
                .ok_or_else(|| format!("{mode}/{name}: missing \"cpi_stack\""))?;
            let total = stack
                .get("total")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{mode}/{name}: cpi_stack missing \"total\""))?;
            let sum: u64 = stack
                .iter()
                .filter(|(k, _)| k.as_str() != "total")
                .filter_map(|(_, v)| v.as_u64())
                .sum();
            if sum != total {
                return Err(format!(
                    "{mode}/{name}: cpi_stack components sum to {sum}, \"total\" says {total}"
                ));
            }
            if total != cycles * cores {
                return Err(format!(
                    "{mode}/{name}: cpi_stack total {total} != cycles {cycles} x cores {cores}"
                ));
            }
        }
    }
    Ok(())
}

/// One IPC regression found by [`compare_documents`].
#[derive(Clone, Debug)]
pub struct Regression {
    /// Mode name.
    pub mode: String,
    /// Workload name.
    pub workload: String,
    /// Baseline-file IPC.
    pub old_ipc: f64,
    /// New-file IPC.
    pub new_ipc: f64,
}

impl Regression {
    /// Fractional IPC loss, e.g. 0.12 for a 12% drop.
    pub fn loss(&self) -> f64 {
        if self.old_ipc <= 0.0 {
            0.0
        } else {
            1.0 - self.new_ipc / self.old_ipc
        }
    }
}

/// Compares two BENCH documents per mode×workload, returning every entry
/// whose IPC dropped by more than `threshold` (fractional, e.g. 0.10).
/// Entries present in only one document are ignored: the suite may grow.
/// Only IPC is gated — simulated cycle counts are deterministic per seed,
/// so IPC is machine-independent, while wall-clock and KIPS vary by host.
pub fn compare_documents(
    old: &JsonValue,
    new: &JsonValue,
    threshold: f64,
) -> Result<Vec<Regression>, String> {
    check_document(old).map_err(|e| format!("baseline file: {e}"))?;
    check_document(new).map_err(|e| format!("new file: {e}"))?;
    let index = |doc: &JsonValue| -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for m in doc.get("modes").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            let mode = m.get("mode").and_then(JsonValue::as_str).unwrap_or("");
            for wl in m
                .get("workloads")
                .and_then(JsonValue::as_arr)
                .unwrap_or(&[])
            {
                let name = wl.get("name").and_then(JsonValue::as_str).unwrap_or("");
                let ipc = wl.get("ipc").and_then(JsonValue::as_f64).unwrap_or(0.0);
                out.push((mode.to_string(), name.to_string(), ipc));
            }
        }
        out
    };
    let new_idx = index(new);
    let mut regressions = Vec::new();
    for (mode, workload, old_ipc) in index(old) {
        let Some((_, _, new_ipc)) = new_idx
            .iter()
            .find(|(m, w, _)| *m == mode && *w == workload)
        else {
            continue;
        };
        if old_ipc > 0.0 && *new_ipc < old_ipc * (1.0 - threshold) {
            regressions.push(Regression {
                mode,
                workload,
                old_ipc,
                new_ipc: *new_ipc,
            });
        }
    }
    Ok(regressions)
}

/// Re-serializes a BENCH document with every host-varying field removed:
/// the top-level `host` section (wall timings, KIPS, pool counters) and
/// the per-workload `wall_secs`/`host_kips` fields. Everything that
/// remains is derived from seed-deterministic simulation, so two runs of
/// the same suite at *any* thread counts must canonicalize to the same
/// bytes — the property `tests/exec_invariance.rs` and the CI exec job
/// assert. Object keys serialize in `BTreeMap` order, so the output is
/// itself deterministic.
pub fn canonical_json(doc: &JsonValue) -> String {
    fn volatile(key: &str) -> bool {
        matches!(key, "host" | "wall_secs" | "host_kips")
    }
    fn write(v: &JsonValue, out: &mut String) {
        match v {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(f) => {
                // Integral values print without a fraction so a u64 that
                // round-tripped through f64 looks like the original.
                if f.fract() == 0.0 && f.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *f as i64));
                } else {
                    out.push_str(&format!("{f:?}"));
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write(item, out);
                }
                out.push(']');
            }
            JsonValue::Obj(map) => {
                out.push('{');
                let mut first = true;
                for (k, item) in map.iter().filter(|(k, _)| !volatile(k)) {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    write(&JsonValue::Str(k.clone()), out);
                    out.push(':');
                    write(item, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write(doc, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_known_factors() {
        assert!((geomean([1.0, 4.0].into_iter()) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert_eq!(geomean([1.0, 0.0].into_iter()), 0.0);
    }

    fn synthetic_doc(ipc: f64, total_ok: bool) -> String {
        // 2 cores x 100 cycles; stack must sum to 200.
        let commit = if total_ok { 150 } else { 149 };
        format!(
            r#"{{"schema": "cs-bench-v1", "insts": 100, "seed": 1,
               "baseline_mode": "non-secure",
               "host": {{"counters": {{}}, "gauges": {{}}, "timers_secs": {{}}}},
               "modes": [{{"mode": "non-secure", "geomean_slowdown": 1.0,
                 "workloads": [{{"name": "gcc", "cycles": 100, "cores": 2,
                   "insts": 120, "ipc": {ipc}, "slowdown": 1.0,
                   "wall_secs": 0.5, "host_kips": 0.24,
                   "cpi_stack": {{"commit": {commit}, "exec": 50, "total": {}}}}}],
                 "attribution": []}}]}}"#,
            commit + 50
        )
    }

    #[test]
    fn check_accepts_consistent_and_rejects_short_stacks() {
        let good = JsonValue::parse(&synthetic_doc(1.2, true)).unwrap();
        check_document(&good).unwrap();
        let bad = JsonValue::parse(&synthetic_doc(1.2, false)).unwrap();
        let err = check_document(&bad).unwrap_err();
        assert!(err.contains("cpi_stack total"), "{err}");
    }

    #[test]
    fn check_rejects_wrong_schema() {
        let doc = JsonValue::parse(r#"{"schema": "cs-bench-v0", "modes": []}"#).unwrap();
        assert!(check_document(&doc)
            .unwrap_err()
            .contains("schema mismatch"));
    }

    #[test]
    fn compare_flags_only_losses_past_threshold() {
        let old = JsonValue::parse(&synthetic_doc(1.0, true)).unwrap();
        let ok = JsonValue::parse(&synthetic_doc(0.95, true)).unwrap();
        let bad = JsonValue::parse(&synthetic_doc(0.85, true)).unwrap();
        assert!(compare_documents(&old, &ok, 0.10).unwrap().is_empty());
        let regs = compare_documents(&old, &bad, 0.10).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].workload, "gcc");
        assert!((regs[0].loss() - 0.15).abs() < 1e-9);
        // Improvements never flag.
        let faster = JsonValue::parse(&synthetic_doc(2.0, true)).unwrap();
        assert!(compare_documents(&old, &faster, 0.10).unwrap().is_empty());
    }

    #[test]
    fn canonical_form_ignores_host_varying_fields_only() {
        // Same simulated numbers, different wall/host numbers ...
        let a = JsonValue::parse(&synthetic_doc(1.2, true)).unwrap();
        let b_text = synthetic_doc(1.2, true)
            .replace("\"wall_secs\": 0.5", "\"wall_secs\": 9.9")
            .replace("\"host_kips\": 0.24", "\"host_kips\": 777.0")
            .replace(
                "\"host\": {\"counters\": {}, \"gauges\": {}, \"timers_secs\": {}}",
                "\"host\": {\"counters\": {\"exec.tasks\": 12}, \"gauges\": {}, \"timers_secs\": {}}",
            );
        let b = JsonValue::parse(&b_text).unwrap();
        // ... must canonicalize identically,
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert!(!canonical_json(&a).contains("wall_secs"));
        // while a simulated difference must survive canonicalization.
        let c = JsonValue::parse(&synthetic_doc(1.3, true)).unwrap();
        assert_ne!(canonical_json(&a), canonical_json(&c));
    }
}
