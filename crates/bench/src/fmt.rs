//! Plain-text table and bar-chart rendering for the experiment binaries.
//!
//! Every harness prints the same rows/series the paper's table or figure
//! reports, so output can be compared to the paper side by side.

/// Renders an aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders one horizontal ASCII bar of `value` against `max` (40 columns).
pub fn bar(label: &str, value: f64, max: f64) -> String {
    let cols = 40usize;
    let filled = if max > 0.0 {
        ((value / max) * cols as f64)
            .round()
            .clamp(0.0, cols as f64) as usize
    } else {
        0
    };
    format!(
        "{label:>14} |{}{}| {value:.3}",
        "#".repeat(filled),
        " ".repeat(cols - filled)
    )
}

/// Geometric mean of positive values.
///
/// # Panics
/// Panics if `values` is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a slowdown factor as a percentage over baseline (1.05 -> +5.0%).
pub fn slowdown_pct(factor: f64) -> String {
    format!("{:+.1}%", (factor - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("2345"));
    }

    #[test]
    fn bar_clamps() {
        let b = bar("x", 2.0, 1.0);
        assert!(b.contains(&"#".repeat(40)));
        let z = bar("x", 0.0, 1.0);
        assert!(!z.contains('#'));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.051), "5.1%");
        assert_eq!(slowdown_pct(1.051), "+5.1%");
        assert_eq!(slowdown_pct(0.99), "-1.0%");
    }
}
