//! Figure 11 — The Spectre Variant-1 proof-of-concept defense: average
//! reload latency of each `array2` index during the secret-inference phase,
//! under the non-secure baseline and under CleanupSpec (averaged over
//! attack iterations).
//!
//! Paper: on the baseline, the benign (trained) indices 1-5 AND the secret
//! index 50 reload fast; under CleanupSpec only the benign indices do, and
//! the secret's latency is indistinguishable from the other misses.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::table;
use cleanupspec_bench::svg::{maybe_write, LineChart, Series};
use cleanupspec_workloads::attacks::run_spectre_v1;

fn main() {
    let iters: usize = std::env::var("CLEANUPSPEC_ATTACK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    println!("== Figure 11: Spectre V1 PoC, reload latency per array2 index ==");
    println!("   {iters} attack iterations\n");
    let ns = run_spectre_v1(SecurityMode::NonSecure, iters, 0xA77AC);
    let cs = run_spectre_v1(SecurityMode::CleanupSpec, iters, 0xA77AC);
    let mut rows = Vec::new();
    for g in 0..64 {
        let mark = if g as u64 == ns.secret {
            "<= SECRET"
        } else if (1..=5).contains(&g) {
            "(benign)"
        } else {
            ""
        };
        rows.push(vec![
            g.to_string(),
            format!("{:.1}", ns.avg_latency[g]),
            format!("{:.1}", cs.avg_latency[g]),
            mark.to_string(),
        ]);
    }
    println!(
        "{}",
        table(&["index", "non-secure(cyc)", "cleanupspec(cyc)", ""], &rows)
    );
    println!();
    println!(
        "non-secure : fast indices {:?} -> leaked = {}",
        ns.fast_indices,
        ns.leaked()
    );
    println!(
        "cleanupspec: fast indices {:?} -> leaked = {}",
        cs.fast_indices,
        cs.leaked()
    );
    let chart = LineChart {
        title: "Figure 11: Spectre V1 secret-inference reload latency".into(),
        x_label: "array2 index (in multiples of 512)".into(),
        y_label: "avg access latency (cycles)".into(),
        series: vec![
            Series {
                name: "non-secure".into(),
                points: ns
                    .avg_latency
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (i as f64, *l))
                    .collect(),
            },
            Series {
                name: "cleanupspec".into(),
                points: cs
                    .avg_latency
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (i as f64, *l))
                    .collect(),
            },
        ],
    };
    if let Some(p) = maybe_write("fig11_spectre_poc", &chart.render()) {
        println!("\n[svg written to {}]", p.display());
    }
    println!("\npaper: baseline shows low latency for indices 1-5 and the");
    println!("secret (50); CleanupSpec shows low latency ONLY for 1-5.");
}
