//! Ablation study (beyond the paper's tables): slowdown of every
//! implemented mode vs the non-secure baseline, including
//!
//! * the invalidate-only strawman (Section 2.4.1) — fast but insecure;
//! * the delay-on-miss family (Section 7.3.2);
//! * the delay-everything family (NDA/SpecShield-like);
//! * CleanupSpec with a constant-time cleanup stall (the paper's stated
//!   future work in Section 4b).

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{geomean, slowdown_pct, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Ablations: every mode vs non-secure ==");
    println!("   {} instructions per workload\n", cfg.insts);
    // One sweep over the full mode x workload matrix: the work-stealing
    // pool balances all of it instead of |ALL| serial per-mode passes.
    let sweep = Sweep::new().modes(&SecurityMode::ALL).config(&cfg).run();
    sweep.warn_if_incomplete();
    let base = &sweep.mode(SecurityMode::NonSecure).expect("baseline").runs;
    let mut rows = Vec::new();
    for mode in SecurityMode::ALL {
        if mode == SecurityMode::NonSecure {
            continue;
        }
        let rs = &sweep.mode(mode).expect("swept mode").runs;
        let factors: Vec<f64> = base
            .iter()
            .zip(rs.iter())
            .map(|(b, r)| r.report.slowdown_vs(&b.report))
            .collect();
        rows.push(vec![
            mode.name().to_string(),
            slowdown_pct(geomean(&factors)),
            if mode.defends_install_channel() {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            if mode.defends_eviction_channel() {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    println!(
        "{}",
        table(&["mode", "slowdown", "stops F+R", "stops P+P"], &rows)
    );
    println!("\nTakeaways: invalidate-only is as fast as full CleanupSpec but");
    println!("leaves Prime+Probe open; delay-on-miss defends both channels at");
    println!("a moderate cost; the constant-time cleanup variant trades a");
    println!("fixed stall per squash for closing the cleanup-duration channel.");
}
