//! Table 3 — Workload Characteristics.
//!
//! Measures the branch misprediction rate and L1-D miss rate of each
//! synthetic workload on the non-secure baseline and compares them with
//! the paper's Table 3 calibration targets. This is the calibration check
//! that anchors every other experiment.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{pct, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Table 3: workload characteristics (measured vs paper) ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let results = Sweep::new()
        .mode(SecurityMode::NonSecure)
        .config(&cfg)
        .run()
        .into_single_mode();
    let mut rows = Vec::new();
    for (w, r) in &results {
        let s = &r.cores[0];
        rows.push(vec![
            w.name.to_string(),
            pct(s.mispredict_rate()),
            pct(w.paper_mispredict),
            pct(r.mem.l1_miss_rate()),
            pct(w.paper_l1_miss),
            format!("{:.2}", s.ipc()),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "workload",
                "mispred(meas)",
                "mispred(paper)",
                "l1miss(meas)",
                "l1miss(paper)",
                "ipc"
            ],
            &rows
        )
    );
}
