//! Table 6 — Slowdown comparison: CleanupSpec vs both InvisiSpec variants
//! (all normalized to the non-secure baseline), plus the delay-based
//! baseline as an extra reference point.
//! Paper: InvisiSpec initial 67.5%, InvisiSpec revised ~15%,
//! CleanupSpec 5.1%.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{geomean, slowdown_pct, table};
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::Sweep;

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Table 6: CleanupSpec vs InvisiSpec ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let entries = [
        (SecurityMode::InvisiSpecInitial, "67.5%"),
        (SecurityMode::InvisiSpecRevised, "15%"),
        (SecurityMode::CleanupSpec, "5.1%"),
        (SecurityMode::DelaySpeculativeLoads, "(n/a; NDA-like >20%)"),
    ];
    let mut modes = vec![SecurityMode::NonSecure];
    modes.extend(entries.iter().map(|(m, _)| *m));
    let sweep = Sweep::new().modes(&modes).config(&cfg).run();
    sweep.warn_if_incomplete();
    let base = &sweep.mode(SecurityMode::NonSecure).expect("baseline").runs;
    let mut rows = Vec::new();
    for (mode, paper) in entries {
        let rs = &sweep.mode(mode).expect("swept mode").runs;
        let factors: Vec<f64> = base
            .iter()
            .zip(rs.iter())
            .map(|(b, r)| r.report.slowdown_vs(&b.report))
            .collect();
        rows.push(vec![
            mode.name().to_string(),
            slowdown_pct(geomean(&factors)),
            paper.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &["configuration", "slowdown(meas)", "slowdown(paper)"],
            &rows
        )
    );
    println!("\npaper ordering: InvisiSpec-initial >> InvisiSpec-revised >");
    println!("CleanupSpec; the Redo approach pays on every correct-path load,");
    println!("the Undo approach only on squashed L1 misses.");
}
