//! Table 6 — Slowdown comparison: CleanupSpec vs both InvisiSpec variants
//! (all normalized to the non-secure baseline), plus the delay-based
//! baseline as an extra reference point.
//! Paper: InvisiSpec initial 67.5%, InvisiSpec revised ~15%,
//! CleanupSpec 5.1%.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::fmt::{geomean, slowdown_pct, table};
use cleanupspec_bench::runner::{run_all_spec, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    println!("== Table 6: CleanupSpec vs InvisiSpec ==");
    println!("   {} instructions per workload\n", cfg.insts);
    let base = run_all_spec(SecurityMode::NonSecure, &cfg);
    let entries = [
        (SecurityMode::InvisiSpecInitial, "67.5%"),
        (SecurityMode::InvisiSpecRevised, "15%"),
        (SecurityMode::CleanupSpec, "5.1%"),
        (SecurityMode::DelaySpeculativeLoads, "(n/a; NDA-like >20%)"),
    ];
    let mut rows = Vec::new();
    for (mode, paper) in entries {
        let rs = run_all_spec(mode, &cfg);
        let factors: Vec<f64> = base
            .iter()
            .zip(&rs)
            .map(|((_, b), (_, r))| r.slowdown_vs(b))
            .collect();
        rows.push(vec![
            mode.name().to_string(),
            slowdown_pct(geomean(&factors)),
            paper.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &["configuration", "slowdown(meas)", "slowdown(paper)"],
            &rows
        )
    );
    println!("\npaper ordering: InvisiSpec-initial >> InvisiSpec-revised >");
    println!("CleanupSpec; the Redo approach pays on every correct-path load,");
    println!("the Undo approach only on squashed L1 misses.");
}
