//! `cs-bench` — regression harness: runs the workload suite across
//! security modes and emits a schema-versioned `BENCH_*.json` with
//! per-workload cycles, IPC, CPI stacks, slowdown vs NonSecure, and
//! host-side throughput (wall seconds, KIPS, events/sec).
//!
//! ```sh
//! cs-bench --out BENCH_full.json                 # full suite, MAIN modes
//! cs-bench --smoke --out BENCH_smoke.json        # CI-sized subset
//! cs-bench --modes cleanupspec --workloads gcc,mcf --insts 50000
//! cs-bench --check BENCH_smoke.json              # schema + invariant
//! cs-bench --compare OLD.json NEW.json --threshold 0.10
//! ```
//!
//! `--compare` gates on IPC only: simulated cycle counts are
//! deterministic per seed, so IPC is machine-independent, while the host
//! metrics (wall, KIPS) vary by machine and are never gated.
//!
//! The sweep itself runs on the shared `cs-exec` work-stealing pool via
//! [`cleanupspec_bench::suite::run_suite`]; this binary only parses
//! flags, prints the summary, and writes the artifact.

use cleanupspec::modes::SecurityMode;
use cleanupspec_bench::bench_report::{check_document, compare_documents, SCHEMA};
use cleanupspec_bench::cli::CommonCli;
use cleanupspec_bench::fmt::table;
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_bench::suite::{run_suite, smoke_workloads, SuiteOptions};
use cleanupspec_obs::JsonValue;
use cleanupspec_workloads::spec::{SpecWorkload, SPEC_WORKLOADS};
use std::process::ExitCode;

struct Args {
    common: CommonCli,
    modes: Vec<SecurityMode>,
    workloads: Option<Vec<String>>,
    out: String,
    smoke: bool,
    threshold: f64,
    shared_warmup: bool,
    check: Option<String>,
    compare: Option<(String, String)>,
}

fn common_cli() -> CommonCli {
    CommonCli::new()
        .with_insts()
        .with_seed()
        .with_threads()
        .with_ring_capacity()
        .with_checkpoint_dir()
        .with_resume()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-bench [--insts N] [--seed N] [--threads N] [--modes a,b] \
         [--workloads a,b] [--out FILE] [--smoke] [--ring-capacity N] \
         [--shared-warmup] [--checkpoint-dir DIR] [--resume DIR]\n\
         \x20      cs-bench --check FILE\n\
         \x20      cs-bench --compare OLD NEW [--threshold FRAC]"
    );
    eprintln!("{}", common_cli().help());
    eprintln!(
        "modes: {}",
        SecurityMode::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        common: common_cli(),
        modes: SecurityMode::MAIN.to_vec(),
        workloads: None,
        out: String::new(),
        smoke: false,
        threshold: 0.10,
        shared_warmup: false,
        check: None,
        compare: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match args.common.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("cs-bench: {e}");
                return Err(usage());
            }
        }
        match a.as_str() {
            "--threshold" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.threshold = n,
                None => return Err(usage()),
            },
            "--modes" => match it.next() {
                Some(list) => {
                    let mut modes = Vec::new();
                    for name in list.split(',') {
                        match SecurityMode::ALL.into_iter().find(|m| m.name() == name) {
                            Some(m) => modes.push(m),
                            None => {
                                eprintln!("cs-bench: unknown mode {name:?}");
                                return Err(usage());
                            }
                        }
                    }
                    args.modes = modes;
                }
                None => return Err(usage()),
            },
            "--workloads" => match it.next() {
                Some(list) => {
                    args.workloads = Some(list.split(',').map(str::to_string).collect());
                }
                None => return Err(usage()),
            },
            "--out" => match it.next() {
                Some(f) => args.out = f.clone(),
                None => return Err(usage()),
            },
            "--smoke" => args.smoke = true,
            "--shared-warmup" => args.shared_warmup = true,
            "--check" => match it.next() {
                Some(f) => args.check = Some(f.clone()),
                None => return Err(usage()),
            },
            "--compare" => match (it.next(), it.next()) {
                (Some(old), Some(new)) => args.compare = Some((old.clone(), new.clone())),
                _ => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    if args.out.is_empty() {
        args.out = if args.smoke {
            "BENCH_smoke.json".to_string()
        } else {
            "BENCH_full.json".to_string()
        };
    }
    Ok(args)
}

fn load_doc(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &Args) -> ExitCode {
    let mut cfg = ExperimentConfig::default();
    if args.smoke {
        cfg.insts = 20_000;
    }
    if let Some(n) = args.common.insts {
        cfg.insts = n;
    }
    cfg.seed = args.common.seed.unwrap_or(cfg.seed);
    cfg.threads = args.common.threads_or_default();

    let workloads: Vec<SpecWorkload> = match (&args.workloads, args.smoke) {
        (Some(names), _) => {
            let mut ws = Vec::new();
            for n in names {
                match SPEC_WORKLOADS.iter().find(|w| w.name == n.as_str()) {
                    Some(w) => ws.push(*w),
                    None => {
                        eprintln!("cs-bench: unknown workload {n:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ws
        }
        (None, true) => smoke_workloads(),
        (None, false) => SPEC_WORKLOADS.to_vec(),
    };

    let opts = SuiteOptions {
        cfg,
        modes: args.modes.clone(),
        workloads,
        ring_capacity: args.common.ring_capacity_or_default(),
        shared_warmup: args.shared_warmup,
        // `--checkpoint-dir` wins over the environment; `run_suite`
        // disables the cache under --shared-warmup because its warmup
        // protocol differs from the one the cache key describes.
        checkpoint_dir: args.common.checkpoint_dir_or_env(),
        resume_dir: args.common.resume.clone(),
    };
    if let Some(dir) = &args.common.resume {
        if args.shared_warmup {
            eprintln!("cs-bench: --resume cannot be combined with --shared-warmup");
            return ExitCode::FAILURE;
        }
        // Preflight: refuse to mix results with a journal from a
        // different campaign before any simulation starts.
        match cleanupspec_bench::journal::check_resume(dir, &opts.journal_header()) {
            Ok(done) => eprintln!(
                "cs-bench: resuming from {} ({done} completed run(s) journaled)",
                dir.display()
            ),
            Err(e) => {
                eprintln!("cs-bench: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "== cs-bench: {} workloads x {} modes, {} insts each ==",
        opts.workloads.len(),
        opts.modes.len() + usize::from(!opts.modes.contains(&SecurityMode::NonSecure)),
        opts.cfg.insts
    );
    let outcome = run_suite(&opts);

    if args.shared_warmup && outcome.warmup.warmups_run > 0 {
        println!(
            "shared warmup: {} warmup run(s) instead of {} (saved {} re-warm(s), ~{:.2}s)",
            outcome.warmup.warmups_run,
            outcome.warmup.warmups_run + outcome.warmup.warmups_saved,
            outcome.warmup.warmups_saved,
            outcome.warmup.saved_secs_est()
        );
    }
    if outcome.cache_hits > 0 {
        if let Some(dir) = &opts.checkpoint_dir {
            println!(
                "checkpoint cache: {} of {} runs served from {}",
                outcome.cache_hits,
                outcome.modes.len() * opts.workloads.len(),
                dir.display()
            );
        }
    }
    if outcome.resumed > 0 {
        // stderr, like the resume preflight: stdout stays byte-comparable
        // with an uninterrupted run.
        eprintln!(
            "cs-bench: {} of {} runs replayed from the campaign journal",
            outcome.resumed,
            outcome.modes.len() * opts.workloads.len()
        );
    }

    // Human-readable summary before the artifact: slowdown per mode and
    // where the secure modes spend their extra time.
    let mut rows = Vec::new();
    for s in &outcome.report.modes {
        let attribution = s
            .attribution
            .iter()
            .map(|d| format!("{} +{:.1}", d.cause.name(), d.delta_cpki))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(vec![
            s.mode.name().to_string(),
            format!("{:.3}", s.geomean_slowdown()),
            if attribution.is_empty() {
                "-".to_string()
            } else {
                attribution
            },
        ]);
    }
    println!(
        "{}",
        table(
            &["mode", "geomean slowdown", "top overheads (delta CPKI)"],
            &rows
        )
    );
    let (events, dropped) = outcome.events;
    println!(
        "host: {:.1}s wall, {:.0} KIPS, {:.0} events/s ({} dropped at ring capacity {}), \
         {} task(s) stolen across {} worker(s)",
        outcome.wall_secs,
        outcome.report.host.gauge("sim_kips"),
        outcome.report.host.gauge("events_per_sec"),
        dropped,
        opts.ring_capacity,
        outcome.exec.tasks_stolen,
        outcome.exec.threads
    );
    let _ = events;

    let json = outcome.report.to_json();
    // Self-check the artifact before writing: a BENCH file that fails its
    // own schema or cycle-accounting invariant must never reach CI.
    let doc = match JsonValue::parse(&json) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cs-bench: internal error: emitted invalid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check_document(&doc) {
        eprintln!("cs-bench: internal error: emitted document fails check: {e}");
        return ExitCode::FAILURE;
    }
    // Write through the hardened artifact store: unique tmp + fsync +
    // rename plus a checksum sidecar, so a crash mid-write can never
    // leave a torn BENCH document for CI to choke on.
    let out_path = std::path::Path::new(&args.out);
    let out_dir = match out_path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    let out_name = out_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| args.out.clone());
    let store = cleanupspec_bench::store::shared_dir_store(out_dir);
    use cleanupspec_bench::store::ArtifactStore as _;
    if let Err(e) = store.put(&out_name, json.as_bytes()) {
        eprintln!("cs-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    if !store.persistent() {
        // The store degraded to memory: the suite finished and the
        // summary above is valid, but the artifact is not on disk —
        // that is a failure for a file-emitting run.
        eprintln!(
            "cs-bench: cannot write {}: output directory is unwritable \
             (results shown above are complete)",
            args.out
        );
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({} bytes, schema {SCHEMA})", args.out, json.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return e,
    };

    if let Some(path) = &args.check {
        return match load_doc(path).and_then(|d| check_document(&d)) {
            Ok(()) => {
                println!("{path}: ok (schema {SCHEMA}, CPI stacks sum to cycles)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cs-bench: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some((old_path, new_path)) = &args.compare {
        let docs = load_doc(old_path).and_then(|o| load_doc(new_path).map(|n| (o, n)));
        let (old, new) = match docs {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cs-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let regressions = match compare_documents(&old, &new, args.threshold) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cs-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        if regressions.is_empty() {
            println!(
                "no IPC regressions over {:.0}% ({old_path} -> {new_path})",
                args.threshold * 100.0
            );
            return ExitCode::SUCCESS;
        }
        let rows: Vec<Vec<String>> = regressions
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    r.workload.clone(),
                    format!("{:.3}", r.old_ipc),
                    format!("{:.3}", r.new_ipc),
                    format!("-{:.1}%", r.loss() * 100.0),
                ]
            })
            .collect();
        eprintln!(
            "cs-bench: {} IPC regression(s) over {:.0}%:",
            regressions.len(),
            args.threshold * 100.0
        );
        eprintln!(
            "{}",
            table(&["mode", "workload", "old ipc", "new ipc", "loss"], &rows)
        );
        return ExitCode::FAILURE;
    }

    run(&args)
}
