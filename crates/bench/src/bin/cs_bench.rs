//! `cs-bench` — regression harness: runs the workload suite across
//! security modes and emits a schema-versioned `BENCH_*.json` with
//! per-workload cycles, IPC, CPI stacks, slowdown vs NonSecure, and
//! host-side throughput (wall seconds, KIPS, events/sec).
//!
//! ```sh
//! cs-bench --out BENCH_full.json                 # full suite, MAIN modes
//! cs-bench --smoke --out BENCH_smoke.json        # CI-sized subset
//! cs-bench --modes cleanupspec --workloads gcc,mcf --insts 50000
//! cs-bench --check BENCH_smoke.json              # schema + invariant
//! cs-bench --compare OLD.json NEW.json --threshold 0.10
//! ```
//!
//! `--compare` gates on IPC only: simulated cycle counts are
//! deterministic per seed, so IPC is machine-independent, while the host
//! metrics (wall, KIPS) vary by machine and are never gated.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, SimReport};
use cleanupspec_bench::bench_report::{
    check_document, compare_documents, BenchReport, ModeSection, SCHEMA,
};
use cleanupspec_bench::fmt::table;
use cleanupspec_bench::runner::{
    checkpoint_dir_from_env, checkpoint_key, load_checkpoint, store_checkpoint, warmup_insts,
    ExperimentConfig,
};
use cleanupspec_mem::MemConfig;
use cleanupspec_obs::{JsonValue, MetricsRegistry, RingSink, Shared};
use cleanupspec_workloads::spec::{SpecWorkload, SPEC_WORKLOADS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// CI-sized subset: one workload per behavior class (high-MLP, memory
/// bound, squash heavy, compute bound, mixed).
const SMOKE_WORKLOADS: [&str; 5] = ["gcc", "mcf", "lbm", "astar", "milc"];

struct Args {
    insts: Option<u64>,
    seed: Option<u64>,
    threads: Option<usize>,
    modes: Vec<SecurityMode>,
    workloads: Option<Vec<String>>,
    out: String,
    smoke: bool,
    ring_capacity: usize,
    threshold: f64,
    shared_warmup: bool,
    checkpoint_dir: Option<PathBuf>,
    check: Option<String>,
    compare: Option<(String, String)>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-bench [--insts N] [--seed N] [--threads N] [--modes a,b] \
         [--workloads a,b] [--out FILE] [--smoke] [--ring-capacity N] \
         [--shared-warmup] [--checkpoint-dir DIR]\n\
         \x20      cs-bench --check FILE\n\
         \x20      cs-bench --compare OLD NEW [--threshold FRAC]"
    );
    eprintln!(
        "modes: {}",
        SecurityMode::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        insts: None,
        seed: None,
        threads: None,
        modes: SecurityMode::MAIN.to_vec(),
        workloads: None,
        out: String::new(),
        smoke: false,
        ring_capacity: 100_000,
        threshold: 0.10,
        shared_warmup: false,
        checkpoint_dir: None,
        check: None,
        compare: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--insts" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.insts = Some(n),
                None => return Err(usage()),
            },
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.seed = Some(n),
                None => return Err(usage()),
            },
            "--threads" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.threads = Some(n),
                None => return Err(usage()),
            },
            "--ring-capacity" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.ring_capacity = n,
                None => return Err(usage()),
            },
            "--threshold" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.threshold = n,
                None => return Err(usage()),
            },
            "--modes" => match it.next() {
                Some(list) => {
                    let mut modes = Vec::new();
                    for name in list.split(',') {
                        match SecurityMode::ALL.into_iter().find(|m| m.name() == name) {
                            Some(m) => modes.push(m),
                            None => {
                                eprintln!("cs-bench: unknown mode {name:?}");
                                return Err(usage());
                            }
                        }
                    }
                    args.modes = modes;
                }
                None => return Err(usage()),
            },
            "--workloads" => match it.next() {
                Some(list) => {
                    args.workloads = Some(list.split(',').map(str::to_string).collect());
                }
                None => return Err(usage()),
            },
            "--out" => match it.next() {
                Some(f) => args.out = f.clone(),
                None => return Err(usage()),
            },
            "--smoke" => args.smoke = true,
            "--shared-warmup" => args.shared_warmup = true,
            "--checkpoint-dir" => match it.next() {
                Some(d) => args.checkpoint_dir = Some(PathBuf::from(d)),
                None => return Err(usage()),
            },
            "--check" => match it.next() {
                Some(f) => args.check = Some(f.clone()),
                None => return Err(usage()),
            },
            "--compare" => match (it.next(), it.next()) {
                (Some(old), Some(new)) => args.compare = Some((old.clone(), new.clone())),
                _ => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    if args.out.is_empty() {
        args.out = if args.smoke {
            "BENCH_smoke.json".to_string()
        } else {
            "BENCH_full.json".to_string()
        };
    }
    Ok(args)
}

fn load_doc(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Prints the standard early-stop warning for a truncated report.
fn warn_if_truncated(name: &str, mode: SecurityMode, report: &SimReport) {
    if let Some(stop) = report.stop.as_ref().filter(|s| !s.is_success()) {
        eprintln!(
            "warning: {name} under {} stopped early ({stop}); report is truncated",
            mode.name()
        );
    }
}

/// One workload×mode run with an events ring attached, timed on the host
/// wall clock. Returns (report, wall_secs, events_recorded,
/// events_dropped, served_from_checkpoint). A checkpoint hit skips the
/// simulation entirely, so its wall time is the file read and its event
/// counts are zero.
fn run_one(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
    ring_capacity: usize,
    checkpoint_dir: Option<&Path>,
) -> (SimReport, f64, u64, u64, bool) {
    let key = checkpoint_key(w, mode, cfg);
    if let Some(dir) = checkpoint_dir {
        let start = Instant::now();
        if let Some(report) = load_checkpoint(dir, &key) {
            return (report, start.elapsed().as_secs_f64(), 0, 0, true);
        }
    }
    let seed = cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name);
    let ring = Shared::new(RingSink::new(ring_capacity));
    let mut sim = SimBuilder::new(mode)
        .program(w.build(seed))
        .seed(seed)
        .sink(Box::new(ring.clone()))
        .build();
    let start = Instant::now();
    sim.run_with_warmup(warmup_insts(cfg.insts), cfg.insts);
    let wall = start.elapsed().as_secs_f64();
    sim.finish_observer();
    let report = sim.report();
    warn_if_truncated(w.name, mode, &report);
    if let Some(dir) = checkpoint_dir {
        store_checkpoint(dir, &key, &report);
    }
    let (recorded, dropped) = ring.with(|s| (s.total_recorded(), s.dropped()));
    (report, wall, recorded, dropped, false)
}

/// One row of a mode sweep: (workload name, report, wall seconds, events
/// recorded, events dropped).
type RunRow = (String, SimReport, f64, u64, u64);

/// Runs `workloads` under `mode` in parallel chunks (same scheme as
/// `runner::run_selected_spec`), preserving order. A panicking workload
/// costs its own slot, not the sweep: survivors are returned along with
/// the names of workloads that panicked.
fn run_mode(
    workloads: &[SpecWorkload],
    mode: SecurityMode,
    cfg: &ExperimentConfig,
    ring_capacity: usize,
    checkpoint_dir: Option<&Path>,
) -> (Vec<RunRow>, Vec<String>, u64) {
    let chunk = workloads.len().div_ceil(cfg.threads.max(1));
    let mut out: Vec<Option<Option<(RunRow, bool)>>> = vec![None; workloads.len()];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (ci, ws) in workloads.chunks(chunk).enumerate() {
            let cfg = *cfg;
            handles.push((
                ci * chunk,
                s.spawn(move || {
                    ws.iter()
                        .map(|w| {
                            catch_unwind(AssertUnwindSafe(|| {
                                let (r, wall, rec, drop, cached) =
                                    run_one(w, mode, &cfg, ring_capacity, checkpoint_dir);
                                ((w.name.to_string(), r, wall, rec, drop), cached)
                            }))
                            .ok()
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (base, h) in handles {
            for (i, r) in h
                .join()
                .expect("worker harness panicked")
                .into_iter()
                .enumerate()
            {
                out[base + i] = Some(r);
            }
        }
    });
    let mut rows = Vec::new();
    let mut failed = Vec::new();
    let mut cache_hits = 0;
    for (slot, w) in out.into_iter().zip(workloads) {
        match slot.expect("all slots filled") {
            Some((row, cached)) => {
                rows.push(row);
                cache_hits += u64::from(cached);
            }
            None => failed.push(w.name.to_string()),
        }
    }
    (rows, failed, cache_hits)
}

/// Host-side accounting for `--shared-warmup`.
#[derive(Clone, Copy, Debug, Default)]
struct WarmupShareStats {
    /// Warmup phases actually simulated.
    warmups_run: u64,
    /// Warmup phases skipped because a class-mate's snapshot was forked.
    warmups_saved: u64,
    /// Wall seconds spent inside warmup simulation.
    warmup_wall: f64,
}

impl WarmupShareStats {
    fn merge(&mut self, other: WarmupShareStats) {
        self.warmups_run += other.warmups_run;
        self.warmups_saved += other.warmups_saved;
        self.warmup_wall += other.warmup_wall;
    }
}

/// Runs every mode for one workload, warming once per hardware
/// equivalence class and forking the warmed cs-snap snapshot per mode.
/// Returns one row per mode, in `modes` order.
///
/// Methodology caveat (also in EXPERIMENTS.md): the shared warmup phase
/// executes under the class representative's *scheme*, so modes whose
/// scheme shapes warmup-era cache contents (e.g. InvisiSpec) measure
/// from a slightly different warm state than an unshared run. Results
/// are deterministic and comparable across modes, but not bit-identical
/// to the default protocol — which is why this is opt-in and the CI
/// baseline is recorded without it.
fn run_workload_shared(
    w: &SpecWorkload,
    modes: &[SecurityMode],
    cfg: &ExperimentConfig,
    ring_capacity: usize,
) -> (Vec<RunRow>, WarmupShareStats) {
    let seed = cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name);
    let warmup = warmup_insts(cfg.insts);
    let classes = SecurityMode::mem_config_classes(modes, &MemConfig::default());
    let mut stats = WarmupShareStats::default();
    let mut rows: Vec<(SecurityMode, RunRow)> = Vec::new();
    for class in &classes {
        let rep = class[0];
        let warm_start = Instant::now();
        let mut warm = SimBuilder::new(rep)
            .program(w.build(seed))
            .seed(seed)
            .build();
        let warm_stop = warm.run_insts(warmup);
        stats.warmup_wall += warm_start.elapsed().as_secs_f64();
        stats.warmups_run += 1;
        if !warm_stop.is_success() {
            // A truncated warmup cannot seed forks; fall back to the
            // unshared protocol so each mode reports its own stop reason.
            eprintln!(
                "warning: shared warmup of {} under {} stopped early ({warm_stop}); \
                 falling back to per-mode warmup for this class",
                w.name,
                rep.name()
            );
            for &m in class {
                let (r, wall, rec, drop, _) = run_one(w, m, cfg, ring_capacity, None);
                rows.push((m, (w.name.to_string(), r, wall, rec, drop)));
                stats.warmups_run += 1;
            }
            continue;
        }
        stats.warmups_saved += class.len() as u64 - 1;
        let snap = warm.snapshot();
        for &m in class {
            let ring = Shared::new(RingSink::new(ring_capacity));
            let start = Instant::now();
            let mut fork = snap.fork_for_mode(m);
            fork.set_sinks(vec![Box::new(ring.clone())]);
            fork.run_measure(cfg.insts);
            let wall = start.elapsed().as_secs_f64();
            fork.finish_observer();
            let report = fork.report();
            warn_if_truncated(w.name, m, &report);
            let (rec, drop) = ring.with(|s| (s.total_recorded(), s.dropped()));
            rows.push((m, (w.name.to_string(), report, wall, rec, drop)));
        }
    }
    // Classes interleave the mode order; restore it.
    let ordered = modes
        .iter()
        .map(|m| {
            let i = rows
                .iter()
                .position(|(rm, _)| rm == m)
                .expect("every mode ran exactly once");
            rows.remove(i).1
        })
        .collect();
    (ordered, stats)
}

/// One workload's shared-warmup outcome: `None` when its simulation
/// panicked, otherwise the per-mode rows plus warmup-savings stats.
type SharedOutcome = Option<(Vec<RunRow>, WarmupShareStats)>;

/// The `--shared-warmup` sweep: workloads in parallel, all modes per
/// workload on one thread (forked from at most one warm snapshot per
/// hardware class). Returns rows transposed to `[mode][workload]` plus
/// the names of workloads whose simulation panicked.
fn run_suite_shared(
    workloads: &[SpecWorkload],
    modes: &[SecurityMode],
    cfg: &ExperimentConfig,
    ring_capacity: usize,
) -> (Vec<Vec<RunRow>>, Vec<String>, WarmupShareStats) {
    let chunk = workloads.len().div_ceil(cfg.threads.max(1));
    let mut out: Vec<Option<SharedOutcome>> = vec![None; workloads.len()];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (ci, ws) in workloads.chunks(chunk).enumerate() {
            let cfg = *cfg;
            handles.push((
                ci * chunk,
                s.spawn(move || {
                    ws.iter()
                        .map(|w| {
                            catch_unwind(AssertUnwindSafe(|| {
                                run_workload_shared(w, modes, &cfg, ring_capacity)
                            }))
                            .ok()
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (base, h) in handles {
            for (i, r) in h
                .join()
                .expect("worker harness panicked")
                .into_iter()
                .enumerate()
            {
                out[base + i] = Some(r);
            }
        }
    });
    let mut stats = WarmupShareStats::default();
    let mut per_workload: Vec<Vec<RunRow>> = Vec::new();
    let mut failed = Vec::new();
    for (slot, w) in out.into_iter().zip(workloads) {
        match slot.expect("all slots filled") {
            Some((rows, s)) => {
                stats.merge(s);
                per_workload.push(rows);
            }
            None => failed.push(w.name.to_string()),
        }
    }
    // Transpose [workload][mode] -> [mode][workload].
    let per_mode = (0..modes.len())
        .map(|mi| per_workload.iter().map(|rows| rows[mi].clone()).collect())
        .collect();
    (per_mode, failed, stats)
}

fn run_suite(args: &Args) -> ExitCode {
    let mut cfg = ExperimentConfig::default();
    if args.smoke {
        cfg.insts = 20_000;
    }
    if let Some(n) = args.insts {
        cfg.insts = n;
    }
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    if let Some(t) = args.threads {
        cfg.threads = t;
    }

    let workloads: Vec<SpecWorkload> = match (&args.workloads, args.smoke) {
        (Some(names), _) => {
            let mut ws = Vec::new();
            for n in names {
                match SPEC_WORKLOADS.iter().find(|w| w.name == n.as_str()) {
                    Some(w) => ws.push(*w),
                    None => {
                        eprintln!("cs-bench: unknown workload {n:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ws
        }
        (None, true) => SPEC_WORKLOADS
            .iter()
            .filter(|w| SMOKE_WORKLOADS.contains(&w.name))
            .copied()
            .collect(),
        (None, false) => SPEC_WORKLOADS.to_vec(),
    };

    // Slowdowns are relative to NonSecure; run it first even if the
    // requested mode list omits it.
    let baseline_mode = SecurityMode::NonSecure;
    let mut modes = args.modes.clone();
    modes.retain(|m| *m != baseline_mode);
    modes.insert(0, baseline_mode);

    println!(
        "== cs-bench: {} workloads x {} modes, {} insts each ==",
        workloads.len(),
        modes.len(),
        cfg.insts
    );

    // `--checkpoint-dir` wins over the environment; `--shared-warmup`
    // disables the cache because its warmup protocol differs from the
    // one the cache key describes.
    let checkpoint_dir = args
        .checkpoint_dir
        .clone()
        .or_else(checkpoint_dir_from_env)
        .filter(|_| !args.shared_warmup);

    let mut host = MetricsRegistry::new();
    let suite_start = Instant::now();

    // Collect rows per mode (same order as `modes`), either by forking
    // shared warm snapshots or by independent per-mode runs.
    let mut mode_rows: Vec<Vec<RunRow>> = Vec::new();
    if args.shared_warmup {
        let (rows, failed, wstats) = run_suite_shared(&workloads, &modes, &cfg, args.ring_capacity);
        if !failed.is_empty() {
            eprintln!(
                "warning: {} workload(s) panicked and were dropped from the sweep: {}",
                failed.len(),
                failed.join(", ")
            );
        }
        host.add_timing("warmup.shared", wstats.warmup_wall);
        host.add("warmup_runs", wstats.warmups_run);
        host.add("warmup_saved_runs", wstats.warmups_saved);
        if wstats.warmups_run > 0 {
            let saved_est =
                wstats.warmup_wall / wstats.warmups_run as f64 * wstats.warmups_saved as f64;
            host.set_gauge("warmup_secs_saved_est", saved_est);
            println!(
                "shared warmup: {} warmup run(s) instead of {} (saved {} re-warm(s), ~{:.2}s)",
                wstats.warmups_run,
                wstats.warmups_run + wstats.warmups_saved,
                wstats.warmups_saved,
                saved_est
            );
        }
        for (mi, mode) in modes.iter().enumerate() {
            host.add_timing(
                &format!("mode.{}", mode.name()),
                rows[mi].iter().map(|(_, _, wall, _, _)| wall).sum(),
            );
        }
        mode_rows = rows;
    } else {
        for mode in &modes {
            let mode_start = Instant::now();
            let (rows, failed, cache_hits) = run_mode(
                &workloads,
                *mode,
                &cfg,
                args.ring_capacity,
                checkpoint_dir.as_deref(),
            );
            host.add_timing(
                &format!("mode.{}", mode.name()),
                mode_start.elapsed().as_secs_f64(),
            );
            host.add("checkpoint_hits", cache_hits);
            if !failed.is_empty() {
                eprintln!(
                    "warning: {} workload(s) panicked under {} and were dropped: {}",
                    failed.len(),
                    mode.name(),
                    failed.join(", ")
                );
            }
            mode_rows.push(rows);
        }
        if let Some(dir) = &checkpoint_dir {
            let hits = host.counter("checkpoint_hits");
            if hits > 0 {
                println!(
                    "checkpoint cache: {hits} of {} runs served from {}",
                    modes.len() * workloads.len(),
                    dir.display()
                );
            }
        }
    }

    // Build sections, pairing each run with its baseline *by name*: a
    // workload that survived only some modes must not shift the
    // positional alignment of everything after it.
    let mut sections: Vec<ModeSection> = Vec::new();
    let mut baseline_named: Vec<(String, SimReport)> = Vec::new();
    let (mut total_insts, mut total_events, mut total_dropped) = (0u64, 0u64, 0u64);
    for (mi, mode) in modes.iter().enumerate() {
        let mut entries = Vec::new();
        for (name, report, wall, recorded, dropped) in mode_rows[mi].drain(..) {
            total_insts += report.total_insts();
            total_events += recorded;
            total_dropped += dropped;
            host.add("workloads_run", 1);
            entries.push((name, report, wall));
        }
        if *mode == baseline_mode {
            baseline_named = entries
                .iter()
                .map(|(n, r, _)| (n.clone(), r.clone()))
                .collect();
        }
        let mut aligned_base = Vec::new();
        entries.retain(
            |(name, _, _)| match baseline_named.iter().find(|(bn, _)| bn == name) {
                Some((_, base)) => {
                    aligned_base.push(base.clone());
                    true
                }
                None => {
                    eprintln!(
                        "warning: dropping {name} under {}: no {} baseline to compare against",
                        mode.name(),
                        baseline_mode.name()
                    );
                    false
                }
            },
        );
        sections.push(ModeSection::build(*mode, entries, &aligned_base));
    }
    let suite_wall = suite_start.elapsed().as_secs_f64();
    host.add_timing("suite", suite_wall);
    host.add("events_recorded", total_events);
    host.add("events_dropped", total_dropped);
    host.set_gauge("ring_capacity", args.ring_capacity as f64);
    if suite_wall > 0.0 {
        host.set_gauge("sim_kips", total_insts as f64 / 1000.0 / suite_wall);
        host.set_gauge("events_per_sec", total_events as f64 / suite_wall);
    }

    // Human-readable summary before the artifact: slowdown per mode and
    // where the secure modes spend their extra time.
    let mut rows = Vec::new();
    for s in &sections {
        let attribution = s
            .attribution
            .iter()
            .map(|d| format!("{} +{:.1}", d.cause.name(), d.delta_cpki))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(vec![
            s.mode.name().to_string(),
            format!("{:.3}", s.geomean_slowdown()),
            if attribution.is_empty() {
                "-".to_string()
            } else {
                attribution
            },
        ]);
    }
    println!(
        "{}",
        table(
            &["mode", "geomean slowdown", "top overheads (delta CPKI)"],
            &rows
        )
    );
    println!(
        "host: {:.1}s wall, {:.0} KIPS, {:.0} events/s ({} dropped at ring capacity {})",
        suite_wall,
        host.gauge("sim_kips"),
        host.gauge("events_per_sec"),
        total_dropped,
        args.ring_capacity
    );

    let report = BenchReport {
        insts: cfg.insts,
        seed: cfg.seed,
        baseline_mode,
        modes: sections,
        host,
    };
    let json = report.to_json();
    // Self-check the artifact before writing: a BENCH file that fails its
    // own schema or cycle-accounting invariant must never reach CI.
    let doc = match JsonValue::parse(&json) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cs-bench: internal error: emitted invalid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check_document(&doc) {
        eprintln!("cs-bench: internal error: emitted document fails check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cs-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({} bytes, schema {SCHEMA})", args.out, json.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return e,
    };

    if let Some(path) = &args.check {
        return match load_doc(path).and_then(|d| check_document(&d)) {
            Ok(()) => {
                println!("{path}: ok (schema {SCHEMA}, CPI stacks sum to cycles)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cs-bench: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some((old_path, new_path)) = &args.compare {
        let docs = load_doc(old_path).and_then(|o| load_doc(new_path).map(|n| (o, n)));
        let (old, new) = match docs {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cs-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let regressions = match compare_documents(&old, &new, args.threshold) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cs-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        if regressions.is_empty() {
            println!(
                "no IPC regressions over {:.0}% ({old_path} -> {new_path})",
                args.threshold * 100.0
            );
            return ExitCode::SUCCESS;
        }
        let rows: Vec<Vec<String>> = regressions
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    r.workload.clone(),
                    format!("{:.3}", r.old_ipc),
                    format!("{:.3}", r.new_ipc),
                    format!("-{:.1}%", r.loss() * 100.0),
                ]
            })
            .collect();
        eprintln!(
            "cs-bench: {} IPC regression(s) over {:.0}%:",
            regressions.len(),
            args.threshold * 100.0
        );
        eprintln!(
            "{}",
            table(&["mode", "workload", "old ipc", "new ipc", "loss"], &rows)
        );
        return ExitCode::FAILURE;
    }

    run_suite(&args)
}
