//! `cs-bench` — regression harness: runs the workload suite across
//! security modes and emits a schema-versioned `BENCH_*.json` with
//! per-workload cycles, IPC, CPI stacks, slowdown vs NonSecure, and
//! host-side throughput (wall seconds, KIPS, events/sec).
//!
//! ```sh
//! cs-bench --out BENCH_full.json                 # full suite, MAIN modes
//! cs-bench --smoke --out BENCH_smoke.json        # CI-sized subset
//! cs-bench --modes cleanupspec --workloads gcc,mcf --insts 50000
//! cs-bench --check BENCH_smoke.json              # schema + invariant
//! cs-bench --compare OLD.json NEW.json --threshold 0.10
//! ```
//!
//! `--compare` gates on IPC only: simulated cycle counts are
//! deterministic per seed, so IPC is machine-independent, while the host
//! metrics (wall, KIPS) vary by machine and are never gated.

use cleanupspec::modes::SecurityMode;
use cleanupspec::sim::{SimBuilder, SimReport};
use cleanupspec_bench::bench_report::{
    check_document, compare_documents, BenchReport, ModeSection, SCHEMA,
};
use cleanupspec_bench::fmt::table;
use cleanupspec_bench::runner::ExperimentConfig;
use cleanupspec_obs::{JsonValue, MetricsRegistry, RingSink, Shared};
use cleanupspec_workloads::spec::{SpecWorkload, SPEC_WORKLOADS};
use std::process::ExitCode;
use std::time::Instant;

/// CI-sized subset: one workload per behavior class (high-MLP, memory
/// bound, squash heavy, compute bound, mixed).
const SMOKE_WORKLOADS: [&str; 5] = ["gcc", "mcf", "lbm", "astar", "milc"];

struct Args {
    insts: Option<u64>,
    seed: Option<u64>,
    threads: Option<usize>,
    modes: Vec<SecurityMode>,
    workloads: Option<Vec<String>>,
    out: String,
    smoke: bool,
    ring_capacity: usize,
    threshold: f64,
    check: Option<String>,
    compare: Option<(String, String)>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-bench [--insts N] [--seed N] [--threads N] [--modes a,b] \
         [--workloads a,b] [--out FILE] [--smoke] [--ring-capacity N]\n\
         \x20      cs-bench --check FILE\n\
         \x20      cs-bench --compare OLD NEW [--threshold FRAC]"
    );
    eprintln!(
        "modes: {}",
        SecurityMode::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        insts: None,
        seed: None,
        threads: None,
        modes: SecurityMode::MAIN.to_vec(),
        workloads: None,
        out: String::new(),
        smoke: false,
        ring_capacity: 100_000,
        threshold: 0.10,
        check: None,
        compare: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--insts" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.insts = Some(n),
                None => return Err(usage()),
            },
            "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.seed = Some(n),
                None => return Err(usage()),
            },
            "--threads" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.threads = Some(n),
                None => return Err(usage()),
            },
            "--ring-capacity" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.ring_capacity = n,
                None => return Err(usage()),
            },
            "--threshold" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.threshold = n,
                None => return Err(usage()),
            },
            "--modes" => match it.next() {
                Some(list) => {
                    let mut modes = Vec::new();
                    for name in list.split(',') {
                        match SecurityMode::ALL.into_iter().find(|m| m.name() == name) {
                            Some(m) => modes.push(m),
                            None => {
                                eprintln!("cs-bench: unknown mode {name:?}");
                                return Err(usage());
                            }
                        }
                    }
                    args.modes = modes;
                }
                None => return Err(usage()),
            },
            "--workloads" => match it.next() {
                Some(list) => {
                    args.workloads = Some(list.split(',').map(str::to_string).collect());
                }
                None => return Err(usage()),
            },
            "--out" => match it.next() {
                Some(f) => args.out = f.clone(),
                None => return Err(usage()),
            },
            "--smoke" => args.smoke = true,
            "--check" => match it.next() {
                Some(f) => args.check = Some(f.clone()),
                None => return Err(usage()),
            },
            "--compare" => match (it.next(), it.next()) {
                (Some(old), Some(new)) => args.compare = Some((old.clone(), new.clone())),
                _ => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    if args.out.is_empty() {
        args.out = if args.smoke {
            "BENCH_smoke.json".to_string()
        } else {
            "BENCH_full.json".to_string()
        };
    }
    Ok(args)
}

fn load_doc(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// One workload×mode run with an events ring attached, timed on the host
/// wall clock. Returns (report, wall_secs, events_recorded, events_dropped).
fn run_one(
    w: &SpecWorkload,
    mode: SecurityMode,
    cfg: &ExperimentConfig,
    ring_capacity: usize,
) -> (SimReport, f64, u64, u64) {
    let seed = cfg.seed ^ cleanupspec_mem::rng::mix_str(w.name);
    let ring = Shared::new(RingSink::new(ring_capacity));
    let mut sim = SimBuilder::new(mode)
        .program(w.build(seed))
        .seed(seed)
        .sink(Box::new(ring.clone()))
        .build();
    let warmup = (cfg.insts / 4).clamp(10_000, 100_000);
    let start = Instant::now();
    sim.run_with_warmup(warmup, cfg.insts);
    let wall = start.elapsed().as_secs_f64();
    sim.finish_observer();
    let report = sim.report();
    if let Some(stop) = report.stop.as_ref().filter(|s| !s.is_success()) {
        eprintln!(
            "warning: {} under {} stopped early ({stop}); report is truncated",
            w.name,
            mode.name()
        );
    }
    let (recorded, dropped) = ring.with(|s| (s.total_recorded(), s.dropped()));
    (report, wall, recorded, dropped)
}

/// One row of a mode sweep: (workload name, report, wall seconds, events
/// recorded, events dropped).
type RunRow = (String, SimReport, f64, u64, u64);

/// Runs `workloads` under `mode` in parallel chunks (same scheme as
/// `runner::run_selected_spec`), preserving order.
fn run_mode(
    workloads: &[SpecWorkload],
    mode: SecurityMode,
    cfg: &ExperimentConfig,
    ring_capacity: usize,
) -> Vec<RunRow> {
    let chunk = workloads.len().div_ceil(cfg.threads.max(1));
    let mut out: Vec<Option<RunRow>> = vec![None; workloads.len()];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (ci, ws) in workloads.chunks(chunk).enumerate() {
            let cfg = *cfg;
            handles.push((
                ci * chunk,
                s.spawn(move || {
                    ws.iter()
                        .map(|w| {
                            let (r, wall, rec, drop) = run_one(w, mode, &cfg, ring_capacity);
                            (w.name.to_string(), r, wall, rec, drop)
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (base, h) in handles {
            for (i, r) in h.join().expect("worker panicked").into_iter().enumerate() {
                out[base + i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

fn run_suite(args: &Args) -> ExitCode {
    let mut cfg = ExperimentConfig::default();
    if args.smoke {
        cfg.insts = 20_000;
    }
    if let Some(n) = args.insts {
        cfg.insts = n;
    }
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    if let Some(t) = args.threads {
        cfg.threads = t;
    }

    let workloads: Vec<SpecWorkload> = match (&args.workloads, args.smoke) {
        (Some(names), _) => {
            let mut ws = Vec::new();
            for n in names {
                match SPEC_WORKLOADS.iter().find(|w| w.name == n.as_str()) {
                    Some(w) => ws.push(*w),
                    None => {
                        eprintln!("cs-bench: unknown workload {n:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ws
        }
        (None, true) => SPEC_WORKLOADS
            .iter()
            .filter(|w| SMOKE_WORKLOADS.contains(&w.name))
            .copied()
            .collect(),
        (None, false) => SPEC_WORKLOADS.to_vec(),
    };

    // Slowdowns are relative to NonSecure; run it first even if the
    // requested mode list omits it.
    let baseline_mode = SecurityMode::NonSecure;
    let mut modes = args.modes.clone();
    modes.retain(|m| *m != baseline_mode);
    modes.insert(0, baseline_mode);

    println!(
        "== cs-bench: {} workloads x {} modes, {} insts each ==",
        workloads.len(),
        modes.len(),
        cfg.insts
    );

    let mut host = MetricsRegistry::new();
    let suite_start = Instant::now();
    let mut sections: Vec<ModeSection> = Vec::new();
    let mut baseline_reports: Vec<SimReport> = Vec::new();
    let (mut total_insts, mut total_events, mut total_dropped) = (0u64, 0u64, 0u64);
    for mode in &modes {
        let mode_start = Instant::now();
        let runs = run_mode(&workloads, *mode, &cfg, args.ring_capacity);
        host.add_timing(
            &format!("mode.{}", mode.name()),
            mode_start.elapsed().as_secs_f64(),
        );
        let mut entries = Vec::new();
        for (name, report, wall, recorded, dropped) in runs {
            total_insts += report.total_insts();
            total_events += recorded;
            total_dropped += dropped;
            host.add("workloads_run", 1);
            entries.push((name, report, wall));
        }
        if *mode == baseline_mode {
            baseline_reports = entries.iter().map(|(_, r, _)| r.clone()).collect();
        }
        sections.push(ModeSection::build(*mode, entries, &baseline_reports));
    }
    let suite_wall = suite_start.elapsed().as_secs_f64();
    host.add_timing("suite", suite_wall);
    host.add("events_recorded", total_events);
    host.add("events_dropped", total_dropped);
    host.set_gauge("ring_capacity", args.ring_capacity as f64);
    if suite_wall > 0.0 {
        host.set_gauge("sim_kips", total_insts as f64 / 1000.0 / suite_wall);
        host.set_gauge("events_per_sec", total_events as f64 / suite_wall);
    }

    // Human-readable summary before the artifact: slowdown per mode and
    // where the secure modes spend their extra time.
    let mut rows = Vec::new();
    for s in &sections {
        let attribution = s
            .attribution
            .iter()
            .map(|d| format!("{} +{:.1}", d.cause.name(), d.delta_cpki))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(vec![
            s.mode.name().to_string(),
            format!("{:.3}", s.geomean_slowdown()),
            if attribution.is_empty() {
                "-".to_string()
            } else {
                attribution
            },
        ]);
    }
    println!(
        "{}",
        table(
            &["mode", "geomean slowdown", "top overheads (delta CPKI)"],
            &rows
        )
    );
    println!(
        "host: {:.1}s wall, {:.0} KIPS, {:.0} events/s ({} dropped at ring capacity {})",
        suite_wall,
        host.gauge("sim_kips"),
        host.gauge("events_per_sec"),
        total_dropped,
        args.ring_capacity
    );

    let report = BenchReport {
        insts: cfg.insts,
        seed: cfg.seed,
        baseline_mode,
        modes: sections,
        host,
    };
    let json = report.to_json();
    // Self-check the artifact before writing: a BENCH file that fails its
    // own schema or cycle-accounting invariant must never reach CI.
    let doc = match JsonValue::parse(&json) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cs-bench: internal error: emitted invalid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = check_document(&doc) {
        eprintln!("cs-bench: internal error: emitted document fails check: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cs-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({} bytes, schema {SCHEMA})", args.out, json.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return e,
    };

    if let Some(path) = &args.check {
        return match load_doc(path).and_then(|d| check_document(&d)) {
            Ok(()) => {
                println!("{path}: ok (schema {SCHEMA}, CPI stacks sum to cycles)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cs-bench: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some((old_path, new_path)) = &args.compare {
        let docs = load_doc(old_path).and_then(|o| load_doc(new_path).map(|n| (o, n)));
        let (old, new) = match docs {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cs-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let regressions = match compare_documents(&old, &new, args.threshold) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cs-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        if regressions.is_empty() {
            println!(
                "no IPC regressions over {:.0}% ({old_path} -> {new_path})",
                args.threshold * 100.0
            );
            return ExitCode::SUCCESS;
        }
        let rows: Vec<Vec<String>> = regressions
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    r.workload.clone(),
                    format!("{:.3}", r.old_ipc),
                    format!("{:.3}", r.new_ipc),
                    format!("-{:.1}%", r.loss() * 100.0),
                ]
            })
            .collect();
        eprintln!(
            "cs-bench: {} IPC regression(s) over {:.0}%:",
            regressions.len(),
            args.threshold * 100.0
        );
        eprintln!(
            "{}",
            table(&["mode", "workload", "old ipc", "new ipc", "loss"], &rows)
        );
        return ExitCode::FAILURE;
    }

    run_suite(&args)
}
