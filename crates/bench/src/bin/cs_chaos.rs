//! `cs-chaos` — systematic fault injection against the CleanupSpec engine.
//!
//! ```sh
//! cs-chaos --matrix                         # fault-detection matrix, all 8 classes
//! cs-chaos --matrix --max-seeds 128         # widen the per-fault seed scan
//! cs-chaos --list-faults                    # print the fault taxonomy
//! cs-chaos --fault drop-sefe-entry --seeds 32 --artifacts out/  # one-fault campaign
//! cs-chaos --seeds 64 --panic-at 7 --artifacts out/  # crash-isolation self-test
//! cs-chaos --replay 0x2a --fault double-undo # probe one seed verbosely
//! ```
//!
//! The matrix drives every [`FaultKind`] until it fires and is flagged by
//! at least one detector (the three cs-smith oracles, the forward-progress
//! watchdog, or the dual-run victim witness). Exit status: 0 when the
//! mode's expectation holds (matrix: all faults detected; fault campaign:
//! at least one seed flagged; clean campaign: no violations and — with
//! `--panic-at` — the planted panic isolated), 1 otherwise, 2 usage.

use cleanupspec_bench::chaos::{
    detection_matrix, probe_fault, render_matrix, run_chaos_campaign, ChaosOpts,
};
use cleanupspec_bench::cli::{parse_u64, CommonCli};
use cleanupspec_mem::fault::FaultKind;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    matrix: bool,
    list_faults: bool,
    fault: Option<FaultKind>,
    seeds: u64,
    start: u64,
    max_seeds: u64,
    replay: Option<u64>,
    artifacts: Option<PathBuf>,
    shrink: bool,
    panic_at: Option<u64>,
}

fn common_cli() -> CommonCli {
    CommonCli::new().with_seeds().with_start()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cs-chaos --matrix [--start N] [--max-seeds N]\n\
         \x20      cs-chaos --list-faults\n\
         \x20      cs-chaos [--fault NAME] [--seeds N] [--start N] [--artifacts DIR]\n\
         \x20               [--shrink] [--panic-at SEED]\n\
         \x20      cs-chaos --replay SEED [--fault NAME]"
    );
    eprintln!("{}", common_cli().help());
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut common = common_cli();
    let mut args = Args {
        matrix: false,
        list_faults: false,
        fault: None,
        seeds: 32,
        start: 0,
        max_seeds: 256,
        replay: None,
        artifacts: None,
        shrink: false,
        panic_at: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match common.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("cs-chaos: {e}");
                return Err(usage());
            }
        }
        match a.as_str() {
            "--matrix" => args.matrix = true,
            "--list-faults" => args.list_faults = true,
            "--shrink" => args.shrink = true,
            "--fault" => match it.next().and_then(|v| FaultKind::parse(v)) {
                Some(k) => args.fault = Some(k),
                None => {
                    eprintln!("unknown fault; try --list-faults");
                    return Err(usage());
                }
            },
            "--max-seeds" => match it.next().and_then(|v| parse_u64(v)) {
                Some(n) => args.max_seeds = n,
                None => return Err(usage()),
            },
            "--replay" => match it.next().and_then(|v| parse_u64(v)) {
                Some(n) => args.replay = Some(n),
                None => return Err(usage()),
            },
            "--panic-at" => match it.next().and_then(|v| parse_u64(v)) {
                Some(n) => args.panic_at = Some(n),
                None => return Err(usage()),
            },
            "--artifacts" => match it.next() {
                Some(p) => args.artifacts = Some(PathBuf::from(p)),
                None => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    args.seeds = common.seeds_or(32);
    args.start = common.start_or_default();
    Ok(args)
}

fn list_faults() -> ExitCode {
    println!("{:<30} description", "fault");
    for k in FaultKind::ALL {
        println!("{:<30} {}", k.name(), k.description());
    }
    ExitCode::SUCCESS
}

fn matrix(args: &Args) -> ExitCode {
    let rows = detection_matrix(args.start, args.max_seeds);
    print!("{}", render_matrix(&rows));
    if rows.iter().all(|r| r.detected()) {
        println!("every fault class is caught by at least one detector");
        ExitCode::SUCCESS
    } else {
        for r in rows.iter().filter(|r| !r.detected()) {
            eprintln!(
                "UNDETECTED: {} survived {} seed(s) — a real bug of this class would ship",
                r.kind.name(),
                r.seeds_scanned
            );
        }
        ExitCode::FAILURE
    }
}

fn replay(seed: u64, fault: Option<FaultKind>) -> ExitCode {
    match fault {
        Some(kind) => {
            let p = probe_fault(kind, seed);
            println!(
                "seed {seed:#x} fault {}: {} opportunit(ies), {} fire(s)",
                kind.name(),
                p.opportunities,
                p.fires
            );
            for v in &p.violations {
                println!("  {v}");
            }
            if p.detected() {
                println!("DETECTED by: {}", p.detectors.join(", "));
                ExitCode::SUCCESS
            } else if p.fires == 0 {
                println!("fault never fired on this seed (try another)");
                ExitCode::FAILURE
            } else {
                println!("NOT DETECTED");
                ExitCode::FAILURE
            }
        }
        None => match cleanupspec_bench::run_seed(seed) {
            cleanupspec_bench::SeedVerdict::Pass { squashes } => {
                println!("seed {seed:#x}: PASS ({squashes} squashes)");
                ExitCode::SUCCESS
            }
            cleanupspec_bench::SeedVerdict::Fail(vs) => {
                for v in &vs {
                    println!("FAIL {v}");
                }
                ExitCode::FAILURE
            }
        },
    }
}

fn campaign(args: &Args) -> ExitCode {
    let opts = ChaosOpts {
        start: args.start,
        count: args.seeds,
        fault: args.fault,
        artifact_dir: args.artifacts.clone(),
        shrink: args.shrink,
        panic_at: args.panic_at,
    };
    let sum = run_chaos_campaign(&opts);
    println!(
        "cs-chaos: {} seed(s), {} pass, {} fail, {} panic(s){}",
        sum.seeds,
        sum.passes,
        sum.failures,
        sum.panics,
        args.fault
            .map(|k| format!(" [fault: {}]", k.name()))
            .unwrap_or_default()
    );
    for line in &sum.triage {
        println!("  {line}");
    }
    for a in &sum.artifacts {
        println!("  artifacts: {}", a.display());
    }
    if let Some(seed) = args.panic_at {
        // Isolation self-test: the planted panic must be *recorded*, and
        // the campaign must have run every seed after it.
        let isolated = sum.panics >= 1 && sum.seeds == args.seeds;
        let artifact_ok = args.artifacts.is_none() || !sum.artifacts.is_empty();
        if isolated && artifact_ok {
            println!("planted panic at seed {seed:#x} was isolated and recorded");
            return ExitCode::SUCCESS;
        }
        eprintln!("planted panic at seed {seed:#x} was NOT handled (isolation broken)");
        return ExitCode::FAILURE;
    }
    match args.fault {
        // A fault campaign succeeds when the oracles caught the fault
        // somewhere (witness-only faults are a matrix concern).
        Some(_) => {
            if sum.failures > 0 {
                ExitCode::SUCCESS
            } else {
                eprintln!("fault was never flagged — oracles may be toothless for it");
                ExitCode::FAILURE
            }
        }
        // A clean campaign succeeds when nothing failed or crashed.
        None => {
            if sum.failures == 0 && sum.panics == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(c) => return c,
    };
    if args.list_faults {
        return list_faults();
    }
    if args.matrix {
        return matrix(&args);
    }
    if let Some(seed) = args.replay {
        return replay(seed, args.fault);
    }
    campaign(&args)
}
